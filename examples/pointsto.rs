//! Whole-program analysis demo: the five interrelated analyses of the
//! paper's Fig. 2 on a synthetic `javac`-scale program, with the
//! hand-coded BDD baseline cross-check.
//!
//! Run with `cargo run --release --example pointsto`.

use jedd::analyses::pointsto::CallGraphMode;
use jedd::analyses::synth::Benchmark;
use jedd::analyses::{baseline_bdd, callgraph, driver, facts::Facts, hierarchy, pointsto, sideeffect};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Benchmark::Javac.generate();
    println!("program: {}", program.summary());

    // Run all five analyses through the relational layer.
    let start = Instant::now();
    let f = Facts::load(&program)?;
    let h = hierarchy::compute(&f)?;
    let pt = pointsto::analyze(&f, CallGraphMode::OnTheFly)?;
    let cg = callgraph::build(&f, &pt.cg)?;
    let se = sideeffect::compute(&f, &pt.pt, &cg.edges)?;
    let took = start.elapsed();

    println!("\nJedd relational analyses ({took:.2?}):");
    println!("  subtypeOf:    {:6} tuples", h.subtype_of.size());
    println!("  pt:           {:6} tuples ({} BDD nodes)", pt.pt.size(), pt.pt.node_count());
    println!("  fieldPt:      {:6} tuples", pt.field_pt.size());
    println!("  call targets: {:6} tuples", pt.cg.size());
    println!("  cg edges:     {:6} tuples", cg.edges.size());
    println!("  reachable:    {:6} methods", cg.reachable.size());
    println!("  reads*:       {:6} tuples", se.reads_star.size());
    println!("  writes*:      {:6} tuples", se.writes_star.size());
    println!("  outer iterations: {}", pt.iterations);
    println!(
        "  automatic replaces inserted by the relational layer: {}",
        f.u.stats().auto_replaces
    );

    // Cross-check against the hand-coded direct-BDD implementation.
    let start = Instant::now();
    let raw = baseline_bdd::analyze(&program);
    let raw_took = start.elapsed();
    let rel_pairs: Vec<(u64, u64)> = pt.pt.tuples().into_iter().map(|t| (t[0], t[1])).collect();
    assert_eq!(raw.pt_pairs(), rel_pairs, "hand-coded and relational agree");
    println!("\nhand-coded BDD baseline agrees exactly ({raw_took:.2?}).");

    // And the same through the mini-Jedd language.
    let start = Instant::now();
    let exec = driver::run_jedd(&program)?;
    println!(
        "mini-Jedd program through jeddc agrees: pt = {} tuples ({:.2?})",
        exec.tuples("pt")?.len(),
        start.elapsed()
    );
    Ok(())
}
