//! Quickstart: the paper's running example (Figures 3 and 4) — resolving
//! virtual method calls with relations over BDDs.
//!
//! Run with `cargo run --example quickstart`.

use jedd::core::{Relation, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Declarations (paper Fig. 3). -------------------------------
    let u = Universe::new();
    let type_dom = u.add_domain_with_elements("Type", &["A", "B"]);
    let sig_dom = u.add_domain_with_elements("Signature", &["foo()", "bar()"]);
    let method_dom = u.add_domain_with_elements("Method", &["A.foo()", "B.bar()"]);

    let t1 = u.add_physical_domain("T1", 2);
    let s1 = u.add_physical_domain("S1", 2);
    let t2 = u.add_physical_domain("T2", 2);
    let m1 = u.add_physical_domain("M1", 2);
    let t3 = u.add_physical_domain("T3", 2);

    let rectype = u.add_attribute("rectype", type_dom);
    let signature = u.add_attribute("signature", sig_dom);
    let tgttype = u.add_attribute("tgttype", type_dom);
    let method = u.add_attribute("method", method_dom);
    let ty = u.add_attribute("type", type_dom);
    let subtype = u.add_attribute("subtype", type_dom);
    let supertype = u.add_attribute("supertype", type_dom);

    // implementsMethod = {(A, foo(), A.foo()), (B, bar(), B.bar())}.
    let declares_method = Relation::from_tuples(
        &u,
        &[(ty, t2), (signature, s1), (method, m1)],
        &[vec![0, 0, 0], vec![1, 1, 1]],
    )?;
    // receiverTypes: receiver B at two call sites (Fig. 4(a)).
    let receiver_types = Relation::from_tuples(
        &u,
        &[(rectype, t1), (signature, s1)],
        &[vec![1, 0], vec![1, 1]],
    )?;
    // extend: B extends A (Fig. 4(d)).
    let extend = Relation::from_tuples(&u, &[(subtype, t2), (supertype, t3)], &[vec![1, 0]])?;

    println!("receiverTypes =\n{}\n", receiver_types.display_tuples());
    println!("declaresMethod =\n{}\n", declares_method.display_tuples());
    println!("extend =\n{}\n", extend.display_tuples());

    // --- The resolve loop (paper Fig. 4, lines 3-11). ----------------
    // Line 3: copy the receiver type into the walk cursor.
    let mut to_resolve = receiver_types.copy(rectype, rectype, tgttype, Some(t2))?;
    let mut answer = Relation::empty(
        &u,
        &[(rectype, t1), (signature, s1), (tgttype, t2), (method, m1)],
    )?;
    let mut iteration = 0;
    loop {
        iteration += 1;
        // Lines 6-7: find classes declaring the signature.
        let resolved =
            to_resolve.join(&[tgttype, signature], &declares_method, &[ty, signature])?;
        println!("iteration {iteration}: resolved =\n{}\n", resolved.display_tuples());
        // Line 8.
        answer = answer.union(&resolved)?;
        // Line 9.
        to_resolve = to_resolve.minus(&resolved.project_away(&[method])?)?;
        // Line 10: walk to the superclass.
        to_resolve = to_resolve
            .compose(&[tgttype], &extend, &[subtype])?
            .rename(supertype, tgttype)?;
        // Line 11.
        if to_resolve.is_empty() {
            break;
        }
    }

    println!("answer =\n{}", answer.display_tuples());
    assert_eq!(answer.size(), 2);
    println!("\nBoth calls on a B receiver resolved: foo() -> A.foo(), bar() -> B.bar()");
    Ok(())
}
