//! Resource-governor demo: budgets, graceful degradation, cancellation
//! and fault injection, all through the public `jedd` facade.
//!
//! Run with `cargo run --release --example budget`.

use jedd::analyses::{driver, synth::Benchmark};
use jedd::core::{Budget, CancelToken, FailPlan, JeddError, Relation, Universe};
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Benchmark::Javac.generate();
    println!("program: {}", program.summary());

    // 1. Unbudgeted run: everything stays on BDDs.
    let full = driver::run(&program)?;
    println!("\nunbudgeted run: degraded phases = {:?}", full.degraded_phases);
    println!("  pt: {} tuples, reads*: {} tuples", full.points_to.pt.size(), full.side_effects.reads_star.size());

    // 2. A starved budget: every phase exhausts its step budget, the
    //    driver degrades to the explicit-set implementations, and the
    //    results are identical.
    let starved = driver::run_with_budget(&program, Budget::unlimited().with_max_steps(10))?;
    println!("\nstarved run (10 steps/op): degraded phases = {:?}", starved.degraded_phases);
    let a: BTreeSet<_> = full.points_to.pt.tuples().into_iter().collect();
    let b: BTreeSet<_> = starved.points_to.pt.tuples().into_iter().collect();
    println!("  pt identical to unbudgeted run: {}", a == b);
    let a: BTreeSet<_> = full.side_effects.reads_star.tuples().into_iter().collect();
    let b: BTreeSet<_> = starved.side_effects.reads_star.tuples().into_iter().collect();
    println!("  reads* identical to unbudgeted run: {}", a == b);

    // 3. Cancellation is not degradable: a cancelled run aborts.
    let token = CancelToken::new();
    token.cancel();
    match driver::run_with_budget(&program, Budget::unlimited().with_cancel(token)) {
        Err(JeddError::ResourceExhausted { op, cause, .. }) => {
            println!("\ncancelled run aborted in `{op}`: {cause}")
        }
        Err(e) => println!("\ncancelled run failed differently: {e}"),
        Ok(_) => println!("\ncancelled run finished before the first probe"),
    }

    // 4. A node-limited universe: the error carries the kernel counters,
    //    including the GC and reorder retries of the recovery ladder.
    let u = Universe::new();
    let d = u.add_domain("D", 1 << 10);
    let pds = u.add_physical_domains_interleaved(&["A", "B"], 10);
    let x = u.add_attribute("x", d);
    let y = u.add_attribute("y", d);
    let schema = [(x, pds[0]), (y, pds[1])];
    u.set_budget(Budget::unlimited().with_max_live_nodes(24));
    let tuples: Vec<Vec<u64>> = (0..256).map(|i| vec![i, (i * 37) % 1024]).collect();
    match Relation::from_tuples(&u, &schema, &tuples) {
        Err(e) => println!("\nnode-starved build failed as expected:\n  {e}"),
        Ok(_) => println!("\nnode-starved build unexpectedly succeeded"),
    }

    // 5. Fault injection: a planned allocation failure makes one op fail;
    //    clearing the plan shows the kernel survived it unharmed.
    u.set_budget(Budget::unlimited());
    u.set_fail_plan(Some(FailPlan::fail_alloc_at(5)));
    let injected = Relation::from_tuples(&u, &schema, &tuples);
    println!("\nwith injected allocation fault: {}", match &injected {
        Err(e) => format!("failed: {e}"),
        Ok(_) => "unexpectedly succeeded".into(),
    });
    u.set_fail_plan(None);
    let r = Relation::from_tuples(&u, &schema, &tuples)?;
    println!("after clearing the plan the same build succeeds: {} tuples", r.size());

    Ok(())
}
