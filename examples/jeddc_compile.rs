//! The jeddc translator end to end: compile the paper's Fig. 4 program
//! written in mini-Jedd, show the physical-domain assignment statistics
//! and the generated code, then execute it on the paper's example data.
//!
//! Run with `cargo run --example jeddc_compile`.

use jedd::jeddc::{self, Executor};

const FIG4: &str = "
    domain Type { A, B };
    domain Signature { foo, bar };
    domain Method { A.foo, B.bar };

    attribute rectype : Type;
    attribute tgttype : Type;
    attribute type : Type;
    attribute subtype : Type;
    attribute supertype : Type;
    attribute signature : Signature;
    attribute method : Method;

    physdom T1, S1, T2, M1, T3;

    relation <rectype:T1, signature:S1> receiverTypes;
    relation <type, signature, method> declaresMethod;
    relation <subtype:T2, supertype:T3> extend;
    relation <rectype, signature, tgttype, method> answer;

    rule resolve {
        <rectype, signature, tgttype> toResolve =
            (rectype => rectype tgttype) receiverTypes;
        do {
            <rectype:T1, signature:S1, tgttype:T2, method:M1> resolved =
                toResolve {tgttype, signature} >< declaresMethod {type, signature};
            answer |= resolved;
            toResolve -= (method=>) resolved;
            toResolve = (supertype=>tgttype) (toResolve {tgttype} <> extend {subtype});
        } while (toResolve != 0B);
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- compiling the paper's Fig. 4 program ----------------------");
    let compiled = jeddc::compile(FIG4)?;
    let st = compiled.assignment.stats;
    println!("expressions: {}   attribute occurrences: {}", st.exprs, st.attrs);
    println!(
        "constraints: {} conflict, {} equality, {} assignment",
        st.conflict, st.equality, st.assignment
    );
    println!(
        "SAT: {} vars, {} clauses, {} literals, {} flow paths, {:.1} ms",
        st.sat_vars,
        st.sat_clauses,
        st.sat_literals,
        st.flow_paths,
        st.solve_seconds * 1000.0
    );

    println!("\n--- generated code --------------------------------------------");
    println!("{}", jeddc::emit_java_like(&compiled));

    println!("--- executing on the paper's example data ---------------------");
    let mut exec = Executor::new(&compiled)?;
    exec.set_input("receiverTypes", &[vec![1, 0], vec![1, 1]])?; // B calls foo, bar
    exec.set_input("declaresMethod", &[vec![0, 0, 0], vec![1, 1, 1]])?;
    exec.set_input("extend", &[vec![1, 0]])?; // B extends A
    exec.run("resolve")?;
    println!("answer tuples (rectype, signature, tgttype, method):");
    for t in exec.tuples("answer")? {
        println!("  {t:?}");
    }
    println!("\nreplaces executed by the assignment: {}", exec.replaces);
    Ok(())
}
