//! The Jedd profiler (paper §4.3): records every relational operation
//! during a points-to run and writes the browsable HTML report (the
//! paper's SQL + CGI views as a static page with SVG shape charts).
//!
//! Run with `cargo run --release --example profiling`; the report lands in
//! `target/jedd-profile.html`.

use jedd::analyses::pointsto::{self, CallGraphMode};
use jedd::analyses::{facts::Facts, synth::Benchmark};
use jedd::runtime::{render_html_with_kernel, render_sql, Profiler};
use std::rc::Rc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Benchmark::Compress.generate();
    println!("profiling points-to on: {}", program.summary());

    let f = Facts::load(&program)?;
    let profiler = Rc::new(Profiler::with_shapes());
    f.u.set_profiler(Some(profiler.clone()));

    let result = pointsto::analyze(&f, CallGraphMode::OnTheFly)?;
    println!("pt = {} tuples, {} events recorded", result.pt.size(), profiler.len());

    println!("\nTop operations by total time:");
    for row in profiler.summary().into_iter().take(10) {
        println!(
            "  {:>10} at {:<10} x{:<5} {:>9.1} µs  (max result {} nodes)",
            row.op,
            row.site,
            row.count,
            row.total_nanos as f64 / 1000.0,
            row.max_result_nodes
        );
    }

    let kernel = f.u.bdd_manager().kernel_stats();
    let html = render_html_with_kernel(&profiler, Some(&kernel));
    let path = "target/jedd-profile.html";
    std::fs::write(path, html)?;
    println!("\nbrowsable report written to {path}");

    // The paper's §4.3 SQL dump, loadable into any database.
    let sql_path = "target/jedd-profile.sql";
    std::fs::write(sql_path, render_sql(&profiler))?;
    println!("SQL dump written to {sql_path}");

    // Dynamic variable reordering after the run (automating the ordering
    // tuning the profiler is designed to guide).
    let (before, after) = f.u.reorder_sift();
    println!("\nsifting the final BDDs: {before} nodes -> {after}");
    println!("pt still has {} tuples after reordering", result.pt.size());
    Ok(())
}
