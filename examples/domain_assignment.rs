//! The SAT-based physical-domain assignment (paper §3.3), including the
//! §3.3.3 error-reporting walkthrough: an unsatisfiable assignment, the
//! paper's exact conflict message, and the suggested fix.
//!
//! Run with `cargo run --example domain_assignment`.

use jedd::jeddc;

const BROKEN: &str = "
    domain Type { A };
    domain Signature { s };
    attribute rectype : Type;
    attribute tgttype : Type;
    attribute subtype : Type;
    attribute supertype : Type;
    attribute signature : Signature;
    physdom T1, T2, S1;
    relation <rectype:T1, signature:S1, tgttype:T2> toResolve;
    relation <supertype:T1, subtype:T2> extend;
    relation <rectype, signature, supertype> result;
    rule resolveStep {
        result = toResolve {tgttype} <> extend {subtype};
    }
";

const FIXED: &str = "
    domain Type { A };
    domain Signature { s };
    attribute rectype : Type;
    attribute tgttype : Type;
    attribute subtype : Type;
    attribute supertype : Type;
    attribute signature : Signature;
    physdom T1, T2, S1, T3;
    relation <rectype:T1, signature:S1, tgttype:T2> toResolve;
    relation <supertype:T1, subtype:T2> extend;
    relation <rectype, signature, supertype:T3> result;
    rule resolveStep {
        result = toResolve {tgttype} <> extend {subtype};
    }
";

fn main() {
    println!("--- The paper's §3.3.3 example -------------------------------");
    println!("{BROKEN}");
    println!("jeddc says:\n");
    match jeddc::compile(BROKEN) {
        Ok(_) => unreachable!("the example must fail"),
        Err(e) => println!("    {e}\n"),
    }
    println!("The result of the compose has attributes rectype, signature and");
    println!("supertype, but only T1 is available for both rectype and supertype.");
    println!("The unsatisfiable core of the SAT instance pinpoints the conflict.\n");

    println!("--- The paper's fix: assign supertype to a new domain T3 -----");
    let compiled = jeddc::compile(FIXED).expect("the fix compiles");
    let st = compiled.assignment.stats;
    println!(
        "compiled: {} expressions, {} attribute occurrences, {} physical domains",
        st.exprs, st.attrs, st.physdoms
    );
    println!(
        "SAT instance: {} variables, {} clauses, {} literals, solved in {:.1} ms",
        st.sat_vars,
        st.sat_clauses,
        st.sat_literals,
        st.solve_seconds * 1000.0
    );
    println!("\nGenerated code (with every physical domain spelled out):\n");
    println!("{}", jeddc::emit_java_like(&compiled));
}
