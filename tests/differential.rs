//! Differential fuzzer: random relational programs evaluated on three
//! independent backends — the production BDD-backed [`Relation`], a ZDD
//! encoding driven through `ZddManager`'s family algebra, and a plain
//! `BTreeSet` oracle — must produce identical tuple sets after every
//! operation. Every case also runs with chain-reduced kernels (CBDD
//! relations against a CZDD family), so all four decision-diagram kinds
//! are checked against the same oracle.
//!
//! Each case builds a fresh universe (one domain of 6 objects encoded in
//! 3 bits, five attributes over it) and applies a random sequence of
//! union / intersect / minus / project / rename / join / compose steps to
//! a pool of relations. Because the domain size (6) is not a power of
//! two, the invalid-code space of the binary encoding is exercised too.
//!
//! 256 cases run by default; set `JEDD_FUZZ_CASES` to scale up or down.

use jedd::bdd::rng::XorShift64Star;
use jedd::bdd::{ZddId, ZddManager};
use jedd::core::{AttrId, Backend, PhysDomId, Relation, Universe};
use std::collections::BTreeSet;

const NATTRS: usize = 5;
const DOM: u64 = 6;
const BITS: usize = 3;

/// One shared evaluation context per fuzz case.
struct World {
    u: Universe,
    attrs: Vec<AttrId>,
    phys: Vec<PhysDomId>,
    z: ZddManager,
}

impl World {
    /// `chained` selects chain-reduced kernels on both sides: the
    /// relation universe runs on a CBDD manager and the family algebra on
    /// a CZDD manager. The relational and family APIs are identical, so
    /// every fuzz step below is backend-agnostic. `page_cache` puts the
    /// relation universe on the disk-backed pager with that
    /// resident-frame budget (the ZDD family and the oracle stay
    /// resident, so they cross-check the paged kernel from outside it).
    fn new_with(chained: bool, page_cache: Option<usize>) -> World {
        let backend = if chained { Backend::Cbdd } else { Backend::Bdd };
        let u = match page_cache {
            Some(frames) => Universe::new_paged_with_backend(backend, frames),
            None => Universe::new_with_backend(backend),
        };
        let d = u.add_domain("obj", DOM);
        let attrs: Vec<AttrId> = (0..NATTRS)
            .map(|i| u.add_attribute(&format!("a{i}"), d))
            .collect();
        let phys: Vec<PhysDomId> = (0..NATTRS)
            .map(|i| u.add_physical_domain(&format!("p{i}"), BITS))
            .collect();
        // Test-sized relations sit far below the production cutoff; lower
        // it so runs with JEDD_THREADS > 1 also exercise the parallel
        // apply path through the differential check.
        u.bdd_manager().set_par_cutoff(64);
        if page_cache.is_some() {
            // Pre-grow the arena past several pager blocks with a
            // throwaway dense BDD, then collect it: the freed slots are
            // reused across blocks, so the fuzz's small relations scatter
            // over the file and a tiny resident budget actually pages.
            let mgr = u.bdd_manager();
            let bits: Vec<u32> = (0..(NATTRS * BITS) as u32).collect();
            let mut warm_rng = XorShift64Star::new(0xfeed);
            let mut acc = mgr.constant_false();
            for _ in 0..160 {
                acc = acc.or(&mgr.encode_value(&bits, warm_rng.gen_range(0..1 << 15)));
            }
            drop(acc);
            mgr.gc();
        }
        let z = if chained {
            ZddManager::new_chained(NATTRS * BITS)
        } else {
            ZddManager::new(NATTRS * BITS)
        };
        World { u, attrs, phys, z }
    }
}

/// Attribute `i` owns ZDD variables `3i..3i+2`, most significant first —
/// mirroring the bit order of `ZddManager::encode_tuple`.
fn zvar(attr: usize, bit: usize) -> u32 {
    (attr * BITS + bit) as u32
}

fn bit_set(value: u64, bit: usize) -> bool {
    (value >> (BITS - 1 - bit)) & 1 == 1
}

/// The ZDD set encoding one tuple over the (sorted) attribute indices.
fn row_vars(attrs: &[usize], row: &[u64]) -> Vec<u32> {
    let mut vars = Vec::new();
    for (k, &a) in attrs.iter().enumerate() {
        for j in 0..BITS {
            if bit_set(row[k], j) {
                vars.push(zvar(a, j));
            }
        }
    }
    vars
}

/// Decodes one ZDD set back into a tuple, checking no stray variables
/// outside the schema leaked into the family.
fn decode(attrs: &[usize], set: &[u32]) -> Vec<u64> {
    for &v in set {
        let a = v as usize / BITS;
        assert!(attrs.contains(&a), "ZDD set mentions out-of-schema var {v}");
    }
    attrs
        .iter()
        .map(|&a| {
            let mut value = 0u64;
            for j in 0..BITS {
                if set.contains(&zvar(a, j)) {
                    value |= 1 << (BITS - 1 - j);
                }
            }
            value
        })
        .collect()
}

/// One relation held by all three backends at once: the production BDD
/// relation, the ZDD family, and the oracle row set. `attrs` is the
/// sorted list of attribute indices (the column order of `rows` and of
/// `Relation::tuples`).
struct Rel3 {
    rel: Relation,
    zdd: ZddId,
    attrs: Vec<usize>,
    rows: BTreeSet<Vec<u64>>,
}

/// The cross-backend assertion: all three agree tuple-for-tuple.
fn check(w: &World, r: &Rel3, ctx: &str) {
    let expect: Vec<Vec<u64>> = r.rows.iter().cloned().collect();
    let mut got_bdd = r.rel.tuples();
    got_bdd.sort();
    got_bdd.dedup();
    assert_eq!(got_bdd, expect, "BDD backend diverged from oracle: {ctx}");
    let mut got_zdd: Vec<Vec<u64>> = w
        .z
        .sets(r.zdd)
        .iter()
        .map(|s| decode(&r.attrs, s))
        .collect();
    got_zdd.sort();
    got_zdd.dedup();
    assert_eq!(got_zdd, expect, "ZDD backend diverged from oracle: {ctx}");
}

fn make_base(w: &World, rng: &mut XorShift64Star, want: Option<Vec<usize>>) -> Rel3 {
    let attrs = want.unwrap_or_else(|| {
        let mut idx: Vec<usize> = (0..NATTRS).collect();
        // Partial Fisher-Yates: the first `k` entries become the schema.
        for i in 0..NATTRS - 1 {
            let j = i + rng.gen_index(0..NATTRS - i);
            idx.swap(i, j);
        }
        let k = rng.gen_index(2..5);
        let mut s = idx[..k].to_vec();
        s.sort_unstable();
        s
    });
    let nrows = rng.gen_index(0..11);
    let mut rows: BTreeSet<Vec<u64>> = BTreeSet::new();
    for _ in 0..nrows {
        rows.insert((0..attrs.len()).map(|_| rng.gen_range(0..DOM)).collect());
    }
    let schema: Vec<(AttrId, PhysDomId)> =
        attrs.iter().map(|&i| (w.attrs[i], w.phys[i])).collect();
    let tuples: Vec<Vec<u64>> = rows.iter().cloned().collect();
    let rel = Relation::from_tuples(&w.u, &schema, &tuples).expect("valid base relation");
    let sets: Vec<Vec<u32>> = rows.iter().map(|t| row_vars(&attrs, t)).collect();
    let zdd = w.z.family(&sets);
    let r = Rel3 { rel, zdd, attrs, rows };
    check(w, &r, "base relation");
    r
}

fn set_op(w: &World, a: &Rel3, b: &Rel3, kind: usize) -> Rel3 {
    assert_eq!(a.attrs, b.attrs);
    let (rel, zdd, rows) = match kind {
        0 => (
            a.rel.union(&b.rel),
            w.z.union(a.zdd, b.zdd),
            a.rows.union(&b.rows).cloned().collect(),
        ),
        1 => (
            a.rel.intersect(&b.rel),
            w.z.intersect(a.zdd, b.zdd),
            a.rows.intersection(&b.rows).cloned().collect(),
        ),
        _ => (
            a.rel.minus(&b.rel),
            w.z.diff(a.zdd, b.zdd),
            a.rows.difference(&b.rows).cloned().collect(),
        ),
    };
    Rel3 {
        rel: rel.expect("set op on same-schema operands"),
        zdd,
        attrs: a.attrs.clone(),
        rows,
    }
}

fn project(w: &World, a: &Rel3, col: usize) -> Rel3 {
    let away = a.attrs[col];
    let rel = a.rel.project_away(&[w.attrs[away]]).expect("attr present");
    let mut zdd = a.zdd;
    for j in 0..BITS {
        zdd = w.z.abstract_var(zdd, zvar(away, j));
    }
    let attrs: Vec<usize> = a.attrs.iter().copied().filter(|&x| x != away).collect();
    let rows: BTreeSet<Vec<u64>> = a
        .rows
        .iter()
        .map(|t| {
            t.iter()
                .enumerate()
                .filter(|&(k, _)| k != col)
                .map(|(_, &v)| v)
                .collect()
        })
        .collect();
    Rel3 { rel, zdd, attrs, rows }
}

fn rename(w: &World, a: &Rel3, col: usize, to: usize) -> Rel3 {
    let from = a.attrs[col];
    let rel = a.rel.rename(w.attrs[from], w.attrs[to]).expect("free target attr");
    // Per-bit variable substitution: sets without the bit pass through,
    // sets with it have the bit moved to the target variable.
    let mut zdd = a.zdd;
    for j in 0..BITS {
        let keep = w.z.subset0(zdd, zvar(from, j));
        let moved = w.z.change(w.z.subset1(zdd, zvar(from, j)), zvar(to, j));
        zdd = w.z.union(keep, moved);
    }
    let mut attrs: Vec<usize> = a.attrs.iter().map(|&x| if x == from { to } else { x }).collect();
    attrs.sort_unstable();
    let rows: BTreeSet<Vec<u64>> = a
        .rows
        .iter()
        .map(|t| {
            // Re-emit the tuple in the new sorted column order.
            let named: Vec<(usize, u64)> = a
                .attrs
                .iter()
                .zip(t.iter())
                .map(|(&x, &v)| (if x == from { to } else { x }, v))
                .collect();
            attrs
                .iter()
                .map(|&x| named.iter().find(|&&(n, _)| n == x).expect("present").1)
                .collect()
        })
        .collect();
    Rel3 { rel, zdd, attrs, rows }
}

/// Join on the shared attributes (compose additionally projects them
/// away). The ZDD side enumerates the left family and, per left tuple,
/// carves the matching right sets out with `subset0`/`subset1` chains
/// before re-inserting the left tuple's variables with `change`.
fn combine(w: &World, l: &Rel3, r: &Rel3, compose: bool) -> Rel3 {
    let shared: Vec<usize> = l.attrs.iter().copied().filter(|x| r.attrs.contains(x)).collect();
    assert!(!shared.is_empty());
    let ids: Vec<AttrId> = shared.iter().map(|&i| w.attrs[i]).collect();
    let rel = if compose {
        l.rel.compose(&ids, &r.rel, &ids)
    } else {
        l.rel.join(&ids, &r.rel, &ids)
    }
    .expect("combinable pair");

    let mut zdd = ZddId::EMPTY;
    for set in w.z.sets(l.zdd) {
        let tup = decode(&l.attrs, &set);
        let mut sel = r.zdd;
        for &s in &shared {
            let v = tup[l.attrs.iter().position(|&x| x == s).expect("shared")];
            for j in 0..BITS {
                sel = if bit_set(v, j) {
                    w.z.subset1(sel, zvar(s, j))
                } else {
                    w.z.subset0(sel, zvar(s, j))
                };
            }
        }
        // `sel` now holds only right-side remainder variables; re-insert
        // the whole left tuple (its variables are disjoint from them).
        for &v in &set {
            sel = w.z.change(sel, v);
        }
        zdd = w.z.union(zdd, sel);
    }

    let mut attrs: Vec<usize> = l.attrs.iter().chain(r.attrs.iter()).copied().collect();
    attrs.sort_unstable();
    attrs.dedup();
    if compose {
        attrs.retain(|x| !shared.contains(x));
        for &s in &shared {
            for j in 0..BITS {
                zdd = w.z.abstract_var(zdd, zvar(s, j));
            }
        }
    }
    let mut rows: BTreeSet<Vec<u64>> = BTreeSet::new();
    for lt in &l.rows {
        'rt: for rt in &r.rows {
            for &s in &shared {
                let lv = lt[l.attrs.iter().position(|&x| x == s).expect("shared")];
                let rv = rt[r.attrs.iter().position(|&x| x == s).expect("shared")];
                if lv != rv {
                    continue 'rt;
                }
            }
            let value = |x: usize| -> u64 {
                if let Some(k) = l.attrs.iter().position(|&a| a == x) {
                    lt[k]
                } else {
                    rt[r.attrs.iter().position(|&a| a == x).expect("from right")]
                }
            };
            rows.insert(attrs.iter().map(|&x| value(x)).collect());
        }
    }
    Rel3 { rel, zdd, attrs, rows }
}

/// Per-case knobs: an explicit worker-thread count (`None` keeps the
/// `JEDD_THREADS` default), mid-run kernel churn — a GC and a sifting
/// reorder between steps, so the differential check also covers the
/// parallel kernel's interaction with arena compaction and variable
/// moves — and an optional pager resident-frame budget for the relation
/// universe (`Some(0)` = paged but unbounded).
#[derive(Clone, Copy, Default)]
struct CaseOpts {
    threads: Option<usize>,
    churn: bool,
    chained: bool,
    page_cache: Option<usize>,
    /// Override of the universe's parallel engagement cutoff (the world
    /// default is 64). The scheduled-replay mode drops it to 2 so even
    /// fuzz-sized operands reach the parallel engine under the model
    /// scheduler.
    par_cutoff: Option<usize>,
}

fn run_case(seed: u64) {
    run_case_with(seed, CaseOpts::default());
}

/// Returns the universe manager's final kernel stats so paged sweeps can
/// assert the cache actually thrashed.
fn run_case_with(seed: u64, opts: CaseOpts) -> jedd::bdd::KernelStats {
    let w = World::new_with(opts.chained, opts.page_cache);
    if let Some(t) = opts.threads {
        w.u.bdd_manager().set_threads(t);
    }
    if let Some(c) = opts.par_cutoff {
        w.u.bdd_manager().set_par_cutoff(c);
    }
    let mut rng = XorShift64Star::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let mut pool: Vec<Rel3> = (0..3).map(|_| make_base(&w, &mut rng, None)).collect();
    for step in 0..8 {
        if opts.churn {
            // Kernel churn between relational steps: a full collection
            // every step and a sifting reorder every third step. Neither
            // may change any relation's tuples.
            let mgr = w.u.bdd_manager();
            mgr.gc();
            if step % 3 == 2 {
                mgr.reorder_sift();
            }
            for (i, r) in pool.iter().enumerate() {
                check(&w, r, &format!("seed {seed} step {step}: pool[{i}] after gc/reorder"));
            }
        }
        let kind = rng.gen_index(0..7);
        let next = match kind {
            0..=2 => {
                // union / intersect / minus need identical attribute
                // sets: reuse a pool partner when one exists, otherwise
                // synthesize a fresh right-hand side.
                let a = rng.gen_index(0..pool.len());
                let partner = pool
                    .iter()
                    .enumerate()
                    .filter(|&(i, p)| i != a && p.attrs == pool[a].attrs)
                    .map(|(i, _)| i)
                    .next();
                let fresh;
                let b = match partner {
                    Some(i) => &pool[i],
                    None => {
                        fresh = make_base(&w, &mut rng, Some(pool[a].attrs.clone()));
                        &fresh
                    }
                };
                set_op(&w, &pool[a], b, kind)
            }
            3 => {
                let wide: Vec<usize> = (0..pool.len()).filter(|&i| pool[i].attrs.len() >= 2).collect();
                if wide.is_empty() {
                    make_base(&w, &mut rng, None)
                } else {
                    let a = wide[rng.gen_index(0..wide.len())];
                    let col = rng.gen_index(0..pool[a].attrs.len());
                    project(&w, &pool[a], col)
                }
            }
            4 => {
                let narrow: Vec<usize> =
                    (0..pool.len()).filter(|&i| pool[i].attrs.len() < NATTRS).collect();
                if narrow.is_empty() {
                    make_base(&w, &mut rng, None)
                } else {
                    let a = narrow[rng.gen_index(0..narrow.len())];
                    let free: Vec<usize> =
                        (0..NATTRS).filter(|x| !pool[a].attrs.contains(x)).collect();
                    let col = rng.gen_index(0..pool[a].attrs.len());
                    let to = free[rng.gen_index(0..free.len())];
                    rename(&w, &pool[a], col, to)
                }
            }
            _ => {
                // join / compose need a pair overlapping on at least one
                // attribute; compose additionally needs the result schema
                // to stay nonempty.
                let mut pairs: Vec<(usize, usize)> = Vec::new();
                for i in 0..pool.len() {
                    for j in 0..pool.len() {
                        if i != j && pool[i].attrs.iter().any(|x| pool[j].attrs.contains(x)) {
                            pairs.push((i, j));
                        }
                    }
                }
                if pairs.is_empty() {
                    make_base(&w, &mut rng, None)
                } else {
                    let (i, j) = pairs[rng.gen_index(0..pairs.len())];
                    let shared: Vec<usize> = pool[i]
                        .attrs
                        .iter()
                        .copied()
                        .filter(|x| pool[j].attrs.contains(x))
                        .collect();
                    let kept = pool[i].attrs.len() + pool[j].attrs.len() - 2 * shared.len();
                    let compose = kind == 6 && kept > 0;
                    combine(&w, &pool[i], &pool[j], compose)
                }
            }
        };
        check(&w, &next, &format!("seed {seed} step {step} kind {kind}"));
        pool.push(next);
        if pool.len() > 10 {
            pool.remove(0);
        }
    }
    w.u.bdd_manager().kernel_stats()
}

#[test]
fn differential_fuzz_bdd_zdd_sets() {
    let cases: u64 = std::env::var("JEDD_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    for case in 0..cases {
        run_case(case);
    }
}

/// The shared-table kernel sweep: the same seeds re-run at worker-thread
/// counts 1, 2, 4 and 8 with mid-run GC and reorder churn. The oracle
/// comparison inside `check` is what enforces the determinism contract —
/// identical tuples at every thread count — and the churn exercises the
/// quiesced safepoints (collection and sifting never run concurrently
/// with workers, so both must be invisible to every backend).
#[test]
fn differential_fuzz_thread_sweep_with_churn() {
    let cases: u64 = std::env::var("JEDD_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: u64| (n / 8).max(2))
        .unwrap_or(12);
    for &threads in &[1usize, 2, 4, 8] {
        for case in 0..cases {
            run_case_with(
                case,
                CaseOpts {
                    threads: Some(threads),
                    churn: true,
                    chained: false,
                    page_cache: None,
                    par_cutoff: None,
                },
            );
        }
    }
}

/// The chain-reduced kinds against the same oracle: CBDD relations and a
/// CZDD family replay the same seeds as the plain run. Since the plain
/// run checks BDD/ZDD against the identical oracle rows, passing both
/// suites is a four-way differential across every decision-diagram kind.
#[test]
fn differential_fuzz_cbdd_czdd_sets() {
    let cases: u64 = std::env::var("JEDD_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    for case in 0..cases {
        run_case_with(
            case,
            CaseOpts {
                chained: true,
                ..CaseOpts::default()
            },
        );
    }
}

/// The paged worlds: the same seeds re-run with the relation universe on
/// the disk-backed pager at a thrashing budget (2 frames), a medium one
/// (16), and paged-but-unbounded (0) — each for both the plain and the
/// chain-reduced backend, with GC/reorder churn throughout. The ZDD
/// family and the `BTreeSet` oracle stay fully resident, so every check
/// compares a paged kernel against two resident witnesses; the contract
/// is tuple-identical results at any cache size. The tiny budget must
/// actually page (summed fault count over the sweep is pinned non-zero).
#[test]
fn differential_fuzz_paged_worlds() {
    let cases: u64 = std::env::var("JEDD_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: u64| (n / 8).max(2))
        .unwrap_or(10);
    for &chained in &[false, true] {
        let mut tiny_faults = 0u64;
        for &frames in &[2usize, 16, 0] {
            for case in 0..cases {
                let stats = run_case_with(
                    case,
                    CaseOpts {
                        churn: true,
                        chained,
                        page_cache: Some(frames),
                        ..CaseOpts::default()
                    },
                );
                assert_eq!(
                    stats.page_faults, stats.page_reads,
                    "every fault is exactly one block read"
                );
                assert!(stats.page_evictions <= stats.page_writes);
                if frames == 2 {
                    tiny_faults += stats.page_faults;
                }
            }
        }
        assert!(
            tiny_faults > 0,
            "chained={chained}: a 2-frame budget never paged — the paged \
             world is not actually exercising the pager"
        );
    }
}

/// The thread sweep under chain-reduced kernels. Chained managers keep
/// the parallel apply path off internally and degrade sifting to a
/// collection, so what this enforces is exactly that: explicit thread
/// counts and mid-run churn must be invisible no-ops — identical tuples
/// at every thread count, with GC/reorder calls interleaved throughout.
#[test]
fn differential_fuzz_chained_thread_sweep_with_churn() {
    let cases: u64 = std::env::var("JEDD_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: u64| (n / 8).max(2))
        .unwrap_or(12);
    for &threads in &[1usize, 2, 4, 8] {
        for case in 0..cases {
            run_case_with(
                case,
                CaseOpts {
                    threads: Some(threads),
                    churn: true,
                    chained: true,
                    page_cache: None,
                    par_cutoff: None,
                },
            );
        }
    }
}

/// `JEDD_SCHED` mode: one thread-sweep case replayed under the
/// `jedd-sync` deterministic scheduler. `JEDD_SCHED=<seed>` (plus the
/// optional `JEDD_SCHED_*` knobs) picks the schedule stream; without it
/// a fixed default seed is used. Two runs of the same configuration must
/// be bit-for-bit identical — the same number of schedules with the same
/// per-schedule decision fingerprints — which is what makes a failing
/// seed from CI replayable at a desk.
#[cfg(feature = "model")]
#[test]
fn differential_fuzz_scheduled_replay_is_bit_identical() {
    use jedd::sync::model::{check, Config};
    let cfg = Config::from_env().unwrap_or_else(|| Config::random(42, 4));
    let sweep = || {
        check(cfg.clone(), || {
            run_case_with(
                0,
                CaseOpts {
                    threads: Some(2),
                    churn: false,
                    chained: false,
                    page_cache: None,
                    par_cutoff: Some(2),
                },
            );
        })
    };
    let first = sweep();
    let second = sweep();
    first.assert_clean();
    assert_eq!(first.schedules, second.schedules, "schedule counts diverged");
    assert_eq!(
        first.fingerprints, second.fingerprints,
        "same JEDD_SCHED seed must replay the same schedules bit-for-bit"
    );
    let distinct: std::collections::BTreeSet<u64> = first.fingerprints.iter().copied().collect();
    assert!(
        distinct.len() > 1,
        "every schedule hashed identically — the case produced no scheduling \
         decisions, so the sweep checked nothing"
    );
}
