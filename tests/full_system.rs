//! Cross-crate integration: the whole system assembled through the facade
//! crate — kernel, relational layer, translator, runtime and analyses.

use jedd::analyses::pointsto::CallGraphMode;
use jedd::analyses::synth::Benchmark;
use jedd::analyses::{baseline_sets, driver, facts::Facts, pointsto};
use jedd::core::{Relation, Universe};
use jedd::runtime::{render_html, Profiler, RelationContainer};
use std::rc::Rc;

#[test]
fn facade_reexports_work() {
    let mgr = jedd::bdd::BddManager::new(4);
    assert!(mgr.constant_true().is_true());
    let mut solver = jedd::sat::Solver::new();
    let v = solver.new_var();
    solver.add_clause(&[v.positive()]);
    assert_eq!(solver.solve(), jedd::sat::SatOutcome::Sat);
}

#[test]
fn profiled_whole_program_run_with_html_report() {
    let p = Benchmark::Tiny.generate();
    let f = Facts::load(&p).unwrap();
    let profiler = Rc::new(Profiler::with_shapes());
    f.u.set_profiler(Some(profiler.clone()));
    let r = pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap();
    assert!(r.pt.size() > 0);
    assert!(!profiler.is_empty());
    let html = render_html(&profiler);
    assert!(html.contains("compose"));
    assert!(html.contains("<svg"));
    // The profiled run still computes the right answer.
    let sets = baseline_sets::points_to(&p);
    assert_eq!(r.pt.size() as usize, sets.pt.len());
}

#[test]
fn containers_release_analysis_intermediates() {
    let p = Benchmark::Tiny.generate();
    let f = Facts::load(&p).unwrap();
    let mgr = f.u.bdd_manager();
    let c = RelationContainer::new("pt");
    let r = pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap();
    c.assign(r.pt.clone());
    drop(r);
    mgr.gc();
    let with_value = mgr.live_nodes();
    c.kill();
    mgr.gc();
    assert!(mgr.live_nodes() <= with_value);
}

#[test]
fn language_and_library_agree_end_to_end() {
    // The strongest cross-crate property: the analyses written in the
    // mini-Jedd language, compiled by jeddc (SAT domain assignment and
    // all), compute the same points-to relation as the Rust relational
    // API version and the explicit-set baseline.
    let p = Benchmark::Tiny.generate();

    let f = Facts::load(&p).unwrap();
    let rel = pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap();
    let rel_pt: Vec<Vec<u64>> = rel.pt.tuples();

    let exec = driver::run_jedd(&p).unwrap();
    let lang_pt = exec.tuples("pt").unwrap();

    assert_eq!(rel_pt, lang_pt);
}

#[test]
fn dynamic_relations_share_one_universe_across_uses() {
    // Build relations, profile them, and check universe statistics add up.
    let u = Universe::new();
    let d = u.add_domain("D", 16);
    let pds = u.add_physical_domains_interleaved(&["P", "Q"], 4);
    let a = u.add_attribute("a", d);
    let b = u.add_attribute("b", d);
    let r = Relation::from_tuples(
        &u,
        &[(a, pds[0]), (b, pds[1])],
        &[vec![1, 2], vec![3, 4], vec![5, 6]],
    )
    .unwrap();
    let ops_before = u.stats().relational_ops;
    let _ = r.union(&r).unwrap();
    let _ = r.project_away(&[b]).unwrap();
    assert!(u.stats().relational_ops >= ops_before + 2);
}
