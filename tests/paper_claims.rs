//! Executable checks of the paper's qualitative claims, table shapes and
//! worked examples (the per-experiment index lives in DESIGN.md; measured
//! numbers are recorded in EXPERIMENTS.md).

use jedd::analyses::jedd_src;
use jedd::jeddc;

/// §2.2.1: "The == and != operators ... an operation that takes only
/// constant time in BDDs." Canonical hash-consing means equal relations
/// share one node id.
#[test]
fn claim_equality_is_canonical_node_comparison() {
    let mgr = jedd::bdd::BddManager::new(16);
    let mut a = mgr.constant_false();
    let mut b = mgr.constant_false();
    // Build the same set by different op orders.
    for i in (0..16u64).step_by(2) {
        let bits: Vec<u32> = (0..16).collect();
        a = a.or(&mgr.encode_value(&bits, i * 17 % 65536));
    }
    for i in (0..16u64).step_by(2).collect::<Vec<_>>().into_iter().rev() {
        let bits: Vec<u32> = (0..16).collect();
        b = b.or(&mgr.encode_value(&bits, i * 17 % 65536));
    }
    assert_eq!(a.raw_id(), b.raw_id(), "same set, same canonical node");
}

/// §3.3.2 Table 1 shape: the combined problem dominates every module, and
/// all solve within seconds.
#[test]
fn claim_table1_shape() {
    let rows = jedd_bench::table1_rows();
    let combined = rows.last().unwrap();
    for (name, s) in &rows[..rows.len() - 1] {
        assert!(combined.1.sat_clauses >= s.sat_clauses, "{name}");
        assert!(
            s.solve_seconds < 30.0,
            "{name} solved too slowly: {}",
            s.solve_seconds
        );
    }
    assert!(
        combined.1.solve_seconds < 60.0,
        "combined must solve in reasonable time (paper: 4.6 s)"
    );
}

/// §5 code size: the relational sources are a small fraction of the
/// explicit-set implementation (paper: 124 vs 803 lines for side effects).
#[test]
fn claim_loc_ratio() {
    let jedd_loc: usize = jedd_src::loc_counts()
        .iter()
        .filter(|(name, _)| !name.starts_with("prelude"))
        .map(|&(_, n)| n)
        .sum();
    // The explicit-set baseline, non-comment non-test lines.
    let baseline_src = include_str!("../crates/analyses/src/baseline_sets.rs");
    let mut in_tests = false;
    let baseline_loc = baseline_src
        .lines()
        .map(str::trim)
        .filter(|l| {
            if l.starts_with("#[cfg(test)]") {
                in_tests = true;
            }
            !in_tests && !l.is_empty() && !l.starts_with("//")
        })
        .count();
    assert!(
        jedd_loc * 2 < baseline_loc * 3,
        "relational code ({jedd_loc}) should be well under the explicit-set \
         implementation ({baseline_loc})"
    );
}

/// §3.3.3: the error message format, verbatim.
#[test]
fn claim_error_message_format() {
    let src = "
        domain Type { A };
        attribute rectype : Type;
        attribute tgttype : Type;
        attribute subtype : Type;
        attribute supertype : Type;
        physdom T1, T2;
        relation <rectype:T1, tgttype:T2> toResolve;
        relation <supertype:T1, subtype:T2> extend;
        relation <rectype, supertype> result;
        rule bad { result = toResolve {tgttype} <> extend {subtype}; }
    ";
    let err = jeddc::compile(src).unwrap_err();
    let msg = err.to_string();
    assert!(msg.starts_with("Conflict between "), "{msg}");
    assert!(msg.contains(" at Test.jedd:"), "{msg}");
    assert!(msg.contains("over physical domain "), "{msg}");
}

/// §4.1: the algorithms run unmodified on multiple backends — here, the
/// same tuple set stored through the BDD and ZDD kernels has identical
/// membership.
#[test]
fn claim_backend_agreement() {
    use jedd::bdd::{BddManager, ZddManager};
    let bits: Vec<u32> = (0..10).collect();
    let tuples: Vec<u64> = (0..100u64).map(|i| (i * 37) % 1024).collect();
    let mgr = BddManager::new(10);
    let mut bdd = mgr.constant_false();
    for &t in &tuples {
        bdd = bdd.or(&mgr.encode_value(&bits, t));
    }
    let z = ZddManager::new(10);
    let mut zdd = jedd::bdd::ZddId::EMPTY;
    for &t in &tuples {
        zdd = z.union(zdd, z.encode_tuple(&[(&bits, t)]));
    }
    let distinct = tuples.iter().collect::<std::collections::BTreeSet<_>>().len() as f64;
    assert_eq!(bdd.satcount_over(&bits), distinct);
    assert_eq!(z.count(zdd), distinct);
}

/// Fig. 1 pipeline: .jedd source -> jeddc (parse, check, assign, codegen)
/// -> executable artefact -> runtime with profiler.
#[test]
fn claim_figure1_pipeline() {
    let src = format!("{}\n{}", jedd_src::PRELUDE, jedd_src::HIERARCHY);
    let compiled = jeddc::compile(&src).expect("front-end + assignment");
    let java = jeddc::emit_java_like(&compiled);
    assert!(java.contains("JeddProgram"), "code generation");
    let mut exec = jeddc::Executor::new(&compiled).expect("runtime");
    for d in ["Type", "Signature", "Method", "Field", "Var", "Obj", "Site", "ParamIdx"] {
        exec.bind_domain_size(d, 4).unwrap();
    }
    exec.set_input("extend", &[vec![1, 0], vec![2, 1]]).unwrap();
    exec.set_input(
        "typeIdentity",
        &(0..4u64).map(|t| vec![t, t]).collect::<Vec<_>>(),
    )
    .unwrap();
    exec.run("hierarchy").unwrap();
    let closure = exec.tuples("subtypeOf").unwrap();
    assert!(closure.contains(&vec![2, 0]), "2 <: 1 <: 0 closes");
}
