#!/usr/bin/env sh
# Offline CI: build, test, lint. No network access is required (the
# workspace has no external dependencies).
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (workspace)"
cargo test --workspace --offline -q

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> OK"
