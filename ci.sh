#!/usr/bin/env sh
# Offline CI: build, test, lint. No network access is required (the
# workspace has no external dependencies).
#
# Usage: ci.sh [--stress] [--crash] [--paged] [--model]
#   --stress  additionally run the #[ignore] concurrency stress tests
#             (4 workers hammering mk/apply through GC safepoints).
#   --crash   additionally run a bounded slice of the fault-injection
#             crash/resume matrix (kill mid-snapshot/mid-rename/mid-log,
#             resume, assert tuple-identical results). Bound the number
#             of matrix cases with JEDD_CRASH_CASES (default 10 here;
#             the full matrix runs in the regular test suite).
#   --paged   additionally run the disk-backed pager suites: the
#             paged-vs-resident differential fuzz worlds, the
#             Table-2 analyses under a tiny JEDD_PAGE_CACHE budget
#             (asserting page_faults > 0 and tuple identity), the
#             kill-mid-eviction crash/resume path, and the
#             paged_capacity bench.
#   --model   additionally run the full deterministic model-checking
#             sweep (jedd-sync scheduler): every model suite at worker
#             counts 2 and 4 under PCT priority preemption, the
#             bounded-exhaustive DFS protocols, and a JEDD_SCHED-seeded
#             replay of the differential fuzzer and budget-trip parity.
#             Every run also executes a short smoke slice of these
#             suites; --model is the wide sweep.
set -eu

cd "$(dirname "$0")"

STRESS=0
CRASH=0
PAGED=0
MODEL=0
for arg in "$@"; do
    case "$arg" in
        --stress) STRESS=1 ;;
        --crash) CRASH=1 ;;
        --paged) PAGED=1 ;;
        --model) MODEL=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

# The synchronization seam is load-bearing for everything the model
# scheduler proves, so its lint runs first and unconditionally.
echo "==> seam lint (crates/bdd must sync through jedd-sync)"
tools/seam_lint.sh --self-test
tools/seam_lint.sh

echo "==> cargo build --release"
# --workspace so member binaries (the jeddc CLI used by the lint stage
# below) are built too; the root manifest is a package + workspace, and a
# bare `cargo build` would only build the facade crate.
cargo build --release --workspace --offline

# The whole suite runs three times: once on the sequential kernel, once
# with 4 workers and once with 8 workers on the shared-table parallel
# kernel (cutoff lowered so test-sized operands actually engage it; the
# effective worker count is clamped to the hardware, so oversubscribed
# counts exercise the clamp path). The differential fuzzer in
# tests/differential.rs and the JEDD_THREADS=1,2,4,8 determinism test in
# crates/analyses are part of every pass.
echo "==> cargo test (workspace, JEDD_THREADS=1)"
JEDD_THREADS=1 cargo test --workspace --offline -q

echo "==> cargo test (workspace, JEDD_THREADS=4)"
JEDD_THREADS=4 JEDD_PAR_CUTOFF=64 cargo test --workspace --offline -q

echo "==> cargo test (workspace, JEDD_THREADS=8)"
JEDD_THREADS=8 JEDD_PAR_CUTOFF=64 cargo test --workspace --offline -q

# A fourth pass on the chain-reduced kernel: JEDD_CHAIN=1 flips every
# env-default universe to the CBDD backend (ZDD managers built by the
# suites stay plain unless constructed chained), so the entire workspace
# suite re-runs with chain nodes in the arena. Chained managers keep the
# parallel path off and degrade reordering to collection by design; the
# suites assert that contract rather than fight it.
echo "==> cargo test (workspace, JEDD_CHAIN=1)"
JEDD_CHAIN=1 cargo test --workspace --offline -q

# The extended differential fuzzer: more cases than the in-pass default,
# on the sequential kernel and with 4 workers. Each run covers all four
# decision-diagram kinds (BDD/ZDD and, via the chained suites, CBDD/CZDD)
# against the BTreeSet oracle, including the thread sweeps with mid-run
# GC/reorder churn. Bound with JEDD_FUZZ_CASES.
echo "==> extended differential fuzzer (JEDD_FUZZ_CASES=${JEDD_FUZZ_CASES:-512})"
JEDD_FUZZ_CASES="${JEDD_FUZZ_CASES:-512}" JEDD_THREADS=1 \
    cargo test --offline -q --test differential
JEDD_FUZZ_CASES="${JEDD_FUZZ_CASES:-512}" JEDD_THREADS=4 JEDD_PAR_CUTOFF=64 \
    cargo test --offline -q --test differential

# Order-search smoke: the kernel's chain suite includes the order lab's
# search (sifting + window-3 + hot-window restarts) on a pessimal order;
# JEDD_ORDER_SEARCH_ROUNDS bounds the restart count so CI stays cheap.
echo "==> order-search smoke (JEDD_ORDER_SEARCH_ROUNDS=${JEDD_ORDER_SEARCH_ROUNDS:-1})"
JEDD_ORDER_SEARCH_ROUNDS="${JEDD_ORDER_SEARCH_ROUNDS:-1}" \
    cargo test -p jedd-bdd --test chain --offline -q
JEDD_ORDER_SEARCH_ROUNDS="${JEDD_ORDER_SEARCH_ROUNDS:-1}" \
    cargo test -p jedd-analyses --test learned_order --offline -q

# Model-checking smoke slice, every run: the jedd-sync scheduler's own
# protocol suites (race detector, lock-order cycles, DFS lost-update)
# plus the kernel's bounded-exhaustive model checks at 2 threads. The
# wide sweep lives behind --model.
echo "==> model-check smoke (jedd-sync + kernel model suites)"
cargo test -p jedd-sync --features model --offline -q
cargo test -p jedd-bdd --features model --test model_check --offline -q
cargo test -p jedd-bdd --features model --lib --offline -q model_tests

if [ "$MODEL" = 1 ]; then
    echo "==> model sweep (PCT, threads {2,4}; exhaustive tiny protocols)"
    # The kernel suites internally sweep threads 2 and 4 under PCT and
    # run the DFS-exhaustive protocols.
    cargo test -p jedd-bdd --features model --test model_check --offline -q
    cargo test -p jedd-bdd --features model --lib --offline -q model_tests
    JEDD_SCHED="${JEDD_SCHED:-2}" JEDD_SCHED_STRATEGY=pct \
        cargo test --features model --offline -q --test differential \
        differential_fuzz_scheduled_replay_is_bit_identical
    JEDD_SCHED="${JEDD_SCHED:-2}" JEDD_SCHED_STRATEGY=pct \
        cargo test -p jedd-analyses --features model --offline -q --test budget_parity \
        budget_trip_parity_replays_bit_identically_under_jedd_sched
fi

if [ "$STRESS" = 1 ]; then
    echo "==> stress tests (ignored set)"
    JEDD_THREADS=4 cargo test --workspace --offline -q -- --ignored
fi

if [ "$CRASH" = 1 ]; then
    echo "==> crash/resume smoke (JEDD_CRASH_CASES=${JEDD_CRASH_CASES:-10})"
    JEDD_CRASH_CASES="${JEDD_CRASH_CASES:-10}" \
        cargo test -p jedd-analyses --test crash_resume --offline -q
fi

if [ "$PAGED" = 1 ]; then
    echo "==> paged kernel (pager unit/property tests)"
    cargo test -p jedd-bdd --test pager --offline -q
    echo "==> paged kernel (differential fuzz worlds)"
    # The paged fuzz worlds run tiny/medium/unbounded frame budgets on
    # both the plain and the chain-reduced backend against the resident
    # world and the BTreeSet oracle, with GC churn mid-case.
    cargo test --offline -q --test differential differential_fuzz_paged_worlds
    echo "==> paged kernel (analyses paged-vs-resident contract)"
    cargo test -p jedd-analyses --test paged --offline -q
    # The env seam: JEDD_PAGE_CACHE turns every env-default universe
    # into a paged one; the ignored test asserts it faults under the
    # budget and still matches a resident run tuple-for-tuple.
    JEDD_PAGE_CACHE=4 \
        cargo test -p jedd-analyses --test paged --offline -q -- --ignored
    echo "==> paged kernel (kill-mid-eviction crash/resume)"
    cargo test -p jedd-analyses --test crash_resume --offline -q \
        paged_run_killed_mid_eviction_resumes_tuple_identical
fi

echo "==> jeddc --lint --deny warnings (embedded analysis corpus)"
# The five Table-1 module combinations (mirroring jedd_src::modules())
# must be lint-clean: jeddlint gating its own shipped analyses keeps the
# corpus honest about dead stores, redundant ops and forced replaces.
JEDDC=target/release/jeddc
SRC=crates/analyses/jedd-src
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/vcr.jedd"
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/hierarchy.jedd"
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/pointsto.jedd"
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/sideeffect.jedd" "$SRC/callgraph.jedd"
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/callgraph.jedd"

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings
# jeddc is the user-facing compiler crate; its API docs are load-bearing,
# so missing docs are a hard error there (warn-level elsewhere).
cargo clippy -p jeddc --offline -- -D warnings -D missing-docs

echo "==> bench smoke (BENCH_kernel.json)"
# Few-sample bench runs double as integration tests of the kernel's
# replace path and cache counters; headline numbers land in
# BENCH_kernel.json via the in-tree JSON reporter. Every section of this
# run carries the same JEDD_BENCH_RUN stamp, and the reporter prunes any
# group stamped by an earlier run — so groups from renamed or retired
# benchmarks (e.g. the old parallel_apply shape) cannot linger in the
# report and skew trajectory tooling.
rm -f BENCH_kernel.json
JEDD_BENCH_RUN="$(date +%s)-$$"
export JEDD_BENCH_RUN
JEDD_BENCH_SAMPLES=3 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench replace_cost --offline
JEDD_BENCH_SAMPLES=3 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench pointsto_overhead --offline
# The fixpoint bench asserts naive/semi-naive agreement tuple-for-tuple
# and that semi-naive never takes more rounds, so a delta-engine
# regression fails CI here.
JEDD_BENCH_SAMPLES=3 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench fixpoint_seminaive --offline
# The shared-table kernel bench validates thread-count-independence of
# the fixpoint and records per-thread-count (1/2/4/8) wall clocks plus
# the 1-vs-4 ratio. The >= 1.5x speedup gate arms itself
# (jedd_bench::speedup_gate: >= 4 CPUs, or a JEDD_BENCH_GATE=1/0
# override) and records gate_armed/gate_reason in the JSON report, so a
# disarmed single-CPU run is visible rather than silently green.
JEDD_BENCH_SAMPLES=1 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench kernel_shared_table --offline
# The chain-reduction bench runs every Table-2 analysis on the plain and
# the chain-reduced kernel, asserts tuple identity and that the best
# chained node count never loses to the best plain one, and times the
# order lab's cold search against a persisted-order warm start (which
# must perform zero sifting sweeps and beat the cold run).
JEDD_BENCH_SAMPLES=1 JEDD_ORDER_SEARCH_ROUNDS="${JEDD_ORDER_SEARCH_ROUNDS:-1}" \
    JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench chain_reduction --offline
# sifting and var_order report their ablation numbers through the same
# stamped JSON so the order-lab trajectory is tracked run over run.
JEDD_BENCH_SAMPLES=1 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench sifting --offline
JEDD_BENCH_SAMPLES=1 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench var_order --offline
# The paged-capacity bench validates the disk-backed pager's headline
# claim in every CI run: the points-to analysis completes under a
# 4-frame resident budget (1024 node slots, far below its live working
# set), faults pages, and lands tuple-identical to the resident run.
# Wall clocks and page-fault/eviction counters join the report.
JEDD_BENCH_SAMPLES=1 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench paged_capacity --offline
test -s BENCH_kernel.json

echo "==> OK"
