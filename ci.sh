#!/usr/bin/env sh
# Offline CI: build, test, lint. No network access is required (the
# workspace has no external dependencies).
#
# Usage: ci.sh [--stress] [--crash]
#   --stress  additionally run the #[ignore] concurrency stress tests
#             (4 workers hammering mk/apply through GC safepoints).
#   --crash   additionally run a bounded slice of the fault-injection
#             crash/resume matrix (kill mid-snapshot/mid-rename/mid-log,
#             resume, assert tuple-identical results). Bound the number
#             of matrix cases with JEDD_CRASH_CASES (default 10 here;
#             the full matrix runs in the regular test suite).
set -eu

cd "$(dirname "$0")"

STRESS=0
CRASH=0
for arg in "$@"; do
    case "$arg" in
        --stress) STRESS=1 ;;
        --crash) CRASH=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
# --workspace so member binaries (the jeddc CLI used by the lint stage
# below) are built too; the root manifest is a package + workspace, and a
# bare `cargo build` would only build the facade crate.
cargo build --release --workspace --offline

# The whole suite runs three times: once on the sequential kernel, once
# with 4 workers and once with 8 workers on the shared-table parallel
# kernel (cutoff lowered so test-sized operands actually engage it; the
# effective worker count is clamped to the hardware, so oversubscribed
# counts exercise the clamp path). The differential fuzzer in
# tests/differential.rs and the JEDD_THREADS=1,2,4,8 determinism test in
# crates/analyses are part of every pass.
echo "==> cargo test (workspace, JEDD_THREADS=1)"
JEDD_THREADS=1 cargo test --workspace --offline -q

echo "==> cargo test (workspace, JEDD_THREADS=4)"
JEDD_THREADS=4 JEDD_PAR_CUTOFF=64 cargo test --workspace --offline -q

echo "==> cargo test (workspace, JEDD_THREADS=8)"
JEDD_THREADS=8 JEDD_PAR_CUTOFF=64 cargo test --workspace --offline -q

if [ "$STRESS" = 1 ]; then
    echo "==> stress tests (ignored set)"
    JEDD_THREADS=4 cargo test --workspace --offline -q -- --ignored
fi

if [ "$CRASH" = 1 ]; then
    echo "==> crash/resume smoke (JEDD_CRASH_CASES=${JEDD_CRASH_CASES:-10})"
    JEDD_CRASH_CASES="${JEDD_CRASH_CASES:-10}" \
        cargo test -p jedd-analyses --test crash_resume --offline -q
fi

echo "==> jeddc --lint --deny warnings (embedded analysis corpus)"
# The five Table-1 module combinations (mirroring jedd_src::modules())
# must be lint-clean: jeddlint gating its own shipped analyses keeps the
# corpus honest about dead stores, redundant ops and forced replaces.
JEDDC=target/release/jeddc
SRC=crates/analyses/jedd-src
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/vcr.jedd"
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/hierarchy.jedd"
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/pointsto.jedd"
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/sideeffect.jedd" "$SRC/callgraph.jedd"
"$JEDDC" --lint --deny warnings "$SRC/prelude.jedd" "$SRC/callgraph.jedd"

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings
# jeddc is the user-facing compiler crate; its API docs are load-bearing,
# so missing docs are a hard error there (warn-level elsewhere).
cargo clippy -p jeddc --offline -- -D warnings -D missing-docs

echo "==> bench smoke (BENCH_kernel.json)"
# Few-sample bench runs double as integration tests of the kernel's
# replace path and cache counters; headline numbers land in
# BENCH_kernel.json via the in-tree JSON reporter. Every section of this
# run carries the same JEDD_BENCH_RUN stamp, and the reporter prunes any
# group stamped by an earlier run — so groups from renamed or retired
# benchmarks (e.g. the old parallel_apply shape) cannot linger in the
# report and skew trajectory tooling.
rm -f BENCH_kernel.json
JEDD_BENCH_RUN="$(date +%s)-$$"
export JEDD_BENCH_RUN
JEDD_BENCH_SAMPLES=3 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench replace_cost --offline
JEDD_BENCH_SAMPLES=3 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench pointsto_overhead --offline
# The fixpoint bench asserts naive/semi-naive agreement tuple-for-tuple
# and that semi-naive never takes more rounds, so a delta-engine
# regression fails CI here.
JEDD_BENCH_SAMPLES=3 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench fixpoint_seminaive --offline
# The shared-table kernel bench validates thread-count-independence of
# the fixpoint and records per-thread-count (1/2/4/8) wall clocks plus
# the 1-vs-4 ratio. The >= 1.5x speedup gate arms itself
# (jedd_bench::speedup_gate: >= 4 CPUs, or a JEDD_BENCH_GATE=1/0
# override) and records gate_armed/gate_reason in the JSON report, so a
# disarmed single-CPU run is visible rather than silently green.
JEDD_BENCH_SAMPLES=1 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench kernel_shared_table --offline
test -s BENCH_kernel.json

echo "==> OK"
