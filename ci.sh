#!/usr/bin/env sh
# Offline CI: build, test, lint. No network access is required (the
# workspace has no external dependencies).
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (workspace)"
cargo test --workspace --offline -q

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> bench smoke (BENCH_kernel.json)"
# Few-sample bench runs double as integration tests of the kernel's
# replace path and cache counters; headline numbers land in
# BENCH_kernel.json via the in-tree JSON reporter.
rm -f BENCH_kernel.json
JEDD_BENCH_SAMPLES=3 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench replace_cost --offline
JEDD_BENCH_SAMPLES=3 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench pointsto_overhead --offline
# The fixpoint bench asserts naive/semi-naive agreement tuple-for-tuple
# and that semi-naive never takes more rounds, so a delta-engine
# regression fails CI here.
JEDD_BENCH_SAMPLES=3 JEDD_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p jedd-bench --bench fixpoint_seminaive --offline
test -s BENCH_kernel.json

echo "==> OK"
