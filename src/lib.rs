//! Facade crate re-exporting the whole Jedd-rs system.
pub use jedd_analyses as analyses;
pub use jedd_bdd as bdd;
pub use jedd_core as core;
pub use jedd_runtime as runtime;
pub use jedd_store as store;
pub use jedd_sync as sync;
pub use jedd_sat as sat;
pub use jeddc;
