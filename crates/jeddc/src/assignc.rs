//! Building the physical-domain-assignment problem from a typed program
//! (paper §3.3.2) and running it, including the automatic pinning loop
//! that plays the programmer's role in the paper's workflow (§5: "we
//! assigned just enough attributes to physical domains to allow the
//! physical domain assignment algorithm to assign the rest").

use crate::check::{AttrIdx, PdIdx, TCond, TExpr, TExprId, TExprKind, TStmt, TypedProgram, VarIdx};
use crate::diag::Pos;
use jedd_core::assign::{
    AssignError, AssignmentProblem, AssignmentStats, ExprId as PExprId, OccId, PhysId, Solution,
    SourcePos,
};
use std::collections::HashMap;

/// One replace operation the physical-domain assignment forces: all the
/// broken assignment edges between one (source expression, destination
/// expression) pair, which the executor performs as a single
/// `with_assignment` call at run time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForcedReplace {
    /// Label of the expression the value flows out of.
    pub from_label: String,
    /// Position of the source expression.
    pub from_pos: Pos,
    /// Label of the expression (or `relation <name>` declaration, or
    /// `Compare_expression`) the value flows into.
    pub to_label: String,
    /// Position of the destination expression.
    pub to_pos: Pos,
    /// `(attribute, from physdom, to physdom)` names per broken edge.
    pub moves: Vec<(String, String, String)>,
}

/// The computed attribute → physical-domain assignment for every
/// expression node and variable.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    /// Physical domain of each (expression, attribute) occurrence.
    pub expr_pd: HashMap<(TExprId, AttrIdx), PdIdx>,
    /// Physical domain of each compared-pair occurrence of a join/compose
    /// (keyed by pair index).
    pub cmp_pd: HashMap<(TExprId, usize), PdIdx>,
    /// Physical domain of each (variable, attribute).
    pub var_pd: HashMap<(VarIdx, AttrIdx), PdIdx>,
    /// Names of physical domains, including any auto-created `_A*` pins;
    /// indices beyond the program's declared physdoms are auto pins.
    pub physdom_names: Vec<String>,
    /// Interleave group per physdom (extends the declared groups with
    /// `None` for auto pins).
    pub physdom_groups: Vec<Option<u32>>,
    /// Table-1 statistics from the final successful solve.
    pub stats: AssignmentStats,
    /// Number of auto-pinned physical domains (0 when the program's own
    /// specifications sufficed).
    pub auto_pins: usize,
    /// The replace operations this assignment forces (broken assignment
    /// edges, grouped per site), for the replace-cost lint.
    pub forced: Vec<ForcedReplace>,
    /// The solved constraint problem, kept so the replace-cost advisory
    /// can re-pin a declaration and re-solve.
    pub problem: Option<AssignmentProblem>,
    /// The solution the runtime executes.
    pub solution: Option<Solution>,
    /// Problem occurrence of each (variable, attribute) declaration —
    /// the handles the advisory re-pins.
    pub var_occ: HashMap<(VarIdx, AttrIdx), OccId>,
}

struct Builder<'a> {
    prog: &'a TypedProgram,
    problem: AssignmentProblem,
    /// Problem physdom handles, aligned with program physdom indices
    /// (auto pins appended).
    phys: Vec<PhysId>,
    expr_occ: HashMap<(TExprId, AttrIdx), OccId>,
    cmp_occ: HashMap<(TExprId, usize), OccId>,
    var_occ: HashMap<(VarIdx, AttrIdx), OccId>,
    /// Problem expr of each variable declaration.
    var_expr: HashMap<VarIdx, PExprId>,
    /// Mirrors of the problem's edge and specification lists (the
    /// jedd-core problem does not expose them for reading).
    equality_edges: Vec<(OccId, OccId)>,
    assignment_edges: Vec<(OccId, OccId)>,
    specified: Vec<(OccId, PhysId)>,
}

fn to_pos(p: crate::diag::Pos) -> SourcePos {
    SourcePos {
        line: p.line,
        col: p.col,
    }
}

fn from_spos(p: SourcePos) -> Pos {
    Pos {
        line: p.line,
        col: p.col,
    }
}

impl<'a> Builder<'a> {
    fn new(prog: &'a TypedProgram) -> Builder<'a> {
        let mut problem = AssignmentProblem::new();
        let phys: Vec<PhysId> = prog
            .physdoms
            .iter()
            .map(|p| problem.add_physdom(&p.name))
            .collect();
        Builder {
            prog,
            problem,
            phys,
            expr_occ: HashMap::new(),
            cmp_occ: HashMap::new(),
            var_occ: HashMap::new(),
            var_expr: HashMap::new(),
            equality_edges: Vec::new(),
            assignment_edges: Vec::new(),
            specified: Vec::new(),
        }
    }

    fn eq_edge(&mut self, a: OccId, b: OccId) {
        self.problem.add_equality(a, b);
        self.equality_edges.push((a, b));
    }

    fn as_edge(&mut self, a: OccId, b: OccId) {
        self.problem.add_assignment(a, b);
        self.assignment_edges.push((a, b));
    }

    fn spec(&mut self, occ: OccId, p: PhysId) {
        self.problem.specify(occ, p);
        self.specified.push((occ, p));
    }

    fn build(&mut self) {
        // Variable declarations become problem expressions carrying the
        // declaration-site specifications.
        for (vi, v) in self.prog.vars.iter().enumerate() {
            let vi = vi as VarIdx;
            let e = self
                .problem
                .add_expr(&format!("relation {}", v.name), to_pos(v.pos));
            self.var_expr.insert(vi, e);
            for &(a, pd) in &v.schema {
                let name = self.prog.attributes[a as usize].name.clone();
                let occ = self.problem.add_occurrence(e, &name);
                self.var_occ.insert((vi, a), occ);
                if let Some(p) = pd {
                    let ph = self.phys[p as usize];
                    self.spec(occ, ph);
                }
            }
        }
        let rules: Vec<_> = self.prog.rules.iter().collect();
        for r in rules {
            self.build_block(&r.body);
        }
    }

    fn build_block(&mut self, body: &[TStmt]) {
        for s in body {
            match s {
                TStmt::Local { var, init, .. } => {
                    if let Some(e) = init {
                        self.build_expr(e);
                        self.connect_store(e, *var);
                    }
                }
                TStmt::Assign { var, expr, .. } => {
                    self.build_expr(expr);
                    self.connect_store(expr, *var);
                }
                TStmt::DoWhile { body, cond } => {
                    self.build_block(body);
                    self.build_cond(cond);
                }
                TStmt::While { cond, body } => {
                    self.build_cond(cond);
                    self.build_block(body);
                }
                TStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.build_cond(cond);
                    self.build_block(then_body);
                    self.build_block(else_body);
                }
            }
        }
    }

    /// Storing an expression into a variable wraps it in a dummy replace:
    /// assignment edges from the expression's attributes to the variable's.
    fn connect_store(&mut self, e: &TExpr, var: VarIdx) {
        for &a in &e.schema {
            let from = self.expr_occ[&(e.id, a)];
            let to = self.var_occ[&(var, a)];
            self.as_edge(from, to);
        }
    }

    /// A comparison requires its operands in the same physical domains:
    /// both sides get assignment edges into a compare node.
    fn build_cond(&mut self, c: &TCond) {
        self.build_expr(&c.left);
        self.build_expr(&c.right);
        let e = self
            .problem
            .add_expr("Compare_expression", to_pos(c.left.pos));
        for &a in &c.left.schema {
            let name = self.prog.attributes[a as usize].name.clone();
            let occ = self.problem.add_occurrence(e, &name);
            let l = self.expr_occ[&(c.left.id, a)];
            let r = self.expr_occ[&(c.right.id, a)];
            self.as_edge(l, occ);
            self.as_edge(r, occ);
        }
    }

    /// Registers an expression node in the problem: one occurrence per
    /// schema attribute (plus merged compared occurrences for join and
    /// compose), with the operation's equality/assignment edges.
    fn build_expr(&mut self, e: &TExpr) {
        let pe = self.problem.add_expr(e.label, to_pos(e.pos));
        for &a in &e.schema {
            let name = self.prog.attributes[a as usize].name.clone();
            let occ = self.problem.add_occurrence(pe, &name);
            self.expr_occ.insert((e.id, a), occ);
        }
        match &e.kind {
            TExprKind::Var(v) => {
                // A use shares the variable container's assignment.
                for &a in &e.schema {
                    let use_occ = self.expr_occ[&(e.id, a)];
                    let decl_occ = self.var_occ[&(*v, a)];
                    self.eq_edge(use_occ, decl_occ);
                }
            }
            TExprKind::Empty | TExprKind::Full => {
                // Constants adapt freely; their occurrences are constrained
                // only through the context edges added by the parent.
            }
            TExprKind::Literal(fields) => {
                for &(_, a, pd) in fields {
                    if let Some(p) = pd {
                        let occ = self.expr_occ[&(e.id, a)];
                        let ph = self.phys[p as usize];
                        self.spec(occ, ph);
                    }
                }
            }
            TExprKind::Replace {
                operand,
                projects,
                renames,
                copies,
            } => {
                self.build_expr(operand);
                // Kept attributes flow through a breakable boundary.
                for &a in &operand.schema {
                    if projects.contains(&a)
                        || renames.iter().any(|&(f, _)| f == a)
                        || copies.iter().any(|&(f, _, _)| f == a)
                    {
                        continue;
                    }
                    let from = self.expr_occ[&(operand.id, a)];
                    let to = self.expr_occ[&(e.id, a)];
                    self.as_edge(from, to);
                }
                for &(f, t) in renames {
                    let from = self.expr_occ[&(operand.id, f)];
                    let to = self.expr_occ[&(e.id, t)];
                    self.as_edge(from, to);
                }
                for &(f, t1, _t2) in copies {
                    // The first copy keeps the source's physical domain
                    // (breakable); the second floats and is pinned only by
                    // context and conflict edges.
                    let from = self.expr_occ[&(operand.id, f)];
                    let to1 = self.expr_occ[&(e.id, t1)];
                    self.as_edge(from, to1);
                }
            }
            TExprKind::JoinLike {
                left,
                left_attrs,
                right,
                right_attrs,
                is_join,
            } => {
                self.build_expr(left);
                self.build_expr(right);
                // Merged occurrences for compared pairs. For a join the
                // left compared attribute is already in the result schema;
                // for a compose we add a dedicated occurrence.
                for (i, (&la, &ra)) in left_attrs.iter().zip(right_attrs.iter()).enumerate() {
                    let merged = if *is_join {
                        self.expr_occ[&(e.id, la)]
                    } else {
                        let name = self.prog.attributes[la as usize].name.to_string();
                        let occ = self.problem.add_occurrence(pe, &name);
                        self.cmp_occ.insert((e.id, i), occ);
                        occ
                    };
                    let l = self.expr_occ[&(left.id, la)];
                    let r = self.expr_occ[&(right.id, ra)];
                    self.as_edge(l, merged);
                    self.as_edge(r, merged);
                }
                // Kept attributes.
                for &a in &left.schema {
                    if left_attrs.contains(&a) {
                        continue;
                    }
                    let from = self.expr_occ[&(left.id, a)];
                    let to = self.expr_occ[&(e.id, a)];
                    self.as_edge(from, to);
                }
                for &a in &right.schema {
                    if right_attrs.contains(&a) {
                        continue;
                    }
                    let from = self.expr_occ[&(right.id, a)];
                    let to = self.expr_occ[&(e.id, a)];
                    self.as_edge(from, to);
                }
            }
            TExprKind::SetOp { left, right, .. } => {
                self.build_expr(left);
                self.build_expr(right);
                for &a in &e.schema {
                    let to = self.expr_occ[&(e.id, a)];
                    let l = self.expr_occ[&(left.id, a)];
                    let r = self.expr_occ[&(right.id, a)];
                    self.as_edge(l, to);
                    self.as_edge(r, to);
                }
            }
        }
    }

    /// Pins one fresh physical domain per connected component that has no
    /// specified occurrence (auto mode).
    fn pin_unlabelled_components(&mut self) -> usize {
        let n = self.problem.num_occurrences();
        // Union-find over equality + assignment edges.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != c {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        let edges: Vec<(u32, u32)> = self
            .equality_edges
            .iter()
            .chain(self.assignment_edges.iter())
            .map(|&(a, b)| (a.0, b.0))
            .collect();
        for (a, b) in edges {
            let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
            parent[ra] = rb;
        }
        let mut specified_roots: Vec<bool> = vec![false; n];
        for &(occ, _) in &self.specified {
            let r = find(&mut parent, occ.0 as usize);
            specified_roots[r] = true;
        }
        let mut pins = 0usize;
        for o in 0..n {
            let r = find(&mut parent, o);
            if !specified_roots[r] {
                let name = format!("_A{}", self.phys.len());
                let p = self.problem.add_physdom(&name);
                self.phys.push(p);
                self.spec(OccId(o as u32), p);
                specified_roots[r] = true;
                pins += 1;
            }
        }
        pins
    }
}

/// Builds and solves the assignment problem for a typed program.
///
/// When `auto_pin` is set, components without programmer-specified
/// physical domains are pinned to fresh domains before solving, and
/// conflicts are repaired by pinning the second conflicting attribute to a
/// fresh domain — the fix the paper's §3.3.3 recommends to the programmer —
/// up to a bounded number of rounds.
///
/// # Errors
///
/// Returns the first unrecoverable [`AssignError`].
// `AssignError` inlines the full Â§3.3.3 diagnostic and is built only on
// the cold error path; see `AssignmentProblem::solve`.
#[allow(clippy::result_large_err)]
pub fn assign(prog: &TypedProgram, auto_pin: bool) -> Result<Assignment, AssignError> {
    assign_named(prog, auto_pin, "Test.jedd")
}

/// Like [`assign`], with an explicit source-file name used in error
/// messages.
///
/// # Errors
///
/// Same conditions as [`assign`].
#[allow(clippy::result_large_err)]
pub fn assign_named(
    prog: &TypedProgram,
    auto_pin: bool,
    file: &str,
) -> Result<Assignment, AssignError> {
    let mut b = Builder::new(prog);
    b.problem.set_file(file);
    b.build();
    if auto_pin {
        let pins = b.pin_unlabelled_components();
        let mut rounds = 0usize;
        loop {
            match b.problem.solve() {
                Ok(sol) => return Ok(b.to_assignment(sol, pins + rounds)),
                Err(AssignError::Conflict {
                    expr_b, pos_b, attr_b, ..
                }) if rounds < 64 => {
                    // Pin the second conflicting attribute to a fresh
                    // domain, as the paper tells the programmer to do.
                    let Some(occ) = b.find_occ(&expr_b, pos_b, &attr_b) else {
                        return Err(AssignError::Conflict {
                            file: String::new(),
                            expr_a: String::new(),
                            pos_a: pos_b,
                            attr_a: String::new(),
                            expr_b,
                            pos_b,
                            attr_b,
                            physdom: String::new(),
                        });
                    };
                    let name = format!("_A{}", b.phys.len());
                    let p = b.problem.add_physdom(&name);
                    b.phys.push(p);
                    b.problem.specify(occ, p);
                    b.specified.push((occ, p));
                    rounds += 1;
                }
                Err(e) => return Err(e),
            }
        }
    } else {
        let sol = b.problem.solve()?;
        Ok(b.to_assignment(sol, 0))
    }
}

impl<'a> Builder<'a> {
    fn find_occ(
        &self,
        expr_label: &str,
        pos: SourcePos,
        attr: &str,
    ) -> Option<OccId> {
        for o in 0..self.problem.num_occurrences() {
            let occ = OccId(o as u32);
            let e = self.problem.occ_expr(occ);
            if self.problem.occ_attr(occ) == attr
                && self.problem.expr_label(e) == expr_label
                && self.problem.expr_pos(e).line == pos.line
                && self.problem.expr_pos(e).col == pos.col
            {
                return Some(occ);
            }
        }
        None
    }

    fn to_assignment(
        &self,
        sol: jedd_core::assign::Solution,
        auto_pins: usize,
    ) -> Assignment {
        let mut out = Assignment {
            auto_pins,
            stats: sol.stats(),
            ..Assignment::default()
        };
        // Forced replaces: broken assignment edges grouped by their
        // (source expression, destination expression) pair — one group
        // per runtime replace call.
        let mut groups: Vec<((PExprId, PExprId), ForcedReplace)> = Vec::new();
        for &(a, b) in &self.assignment_edges {
            let (pa, pb) = (sol.physdom_of(a), sol.physdom_of(b));
            if pa == pb {
                continue;
            }
            let key = (self.problem.occ_expr(a), self.problem.occ_expr(b));
            let mv = (
                self.problem.occ_attr(a).to_string(),
                self.problem.physdom_name(pa).to_string(),
                self.problem.physdom_name(pb).to_string(),
            );
            if let Some((_, g)) = groups.iter_mut().find(|(k, _)| *k == key) {
                g.moves.push(mv);
            } else {
                let (ea, eb) = key;
                groups.push((
                    key,
                    ForcedReplace {
                        from_label: self.problem.expr_label(ea).to_string(),
                        from_pos: from_spos(self.problem.expr_pos(ea)),
                        to_label: self.problem.expr_label(eb).to_string(),
                        to_pos: from_spos(self.problem.expr_pos(eb)),
                        moves: vec![mv],
                    },
                ));
            }
        }
        out.forced = groups.into_iter().map(|(_, g)| g).collect();
        out.var_occ = self.var_occ.clone();
        out.problem = Some(self.problem.clone());
        // Physdom names: program order + auto pins.
        for (i, p) in self.phys.iter().enumerate() {
            let _ = p;
            if i < self.prog.physdoms.len() {
                out.physdom_names.push(self.prog.physdoms[i].name.clone());
                out.physdom_groups.push(self.prog.physdoms[i].group);
            } else {
                out.physdom_names.push(self.problem.physdom_name(self.phys[i]).to_string());
                out.physdom_groups.push(None);
            }
        }
        let phys_to_pd = |p: PhysId| -> PdIdx {
            self.phys
                .iter()
                .position(|&q| q == p)
                .expect("physdom registered") as PdIdx
        };
        for (&(eid, a), &occ) in &self.expr_occ {
            out.expr_pd.insert((eid, a), phys_to_pd(sol.physdom_of(occ)));
        }
        for (&(eid, i), &occ) in &self.cmp_occ {
            out.cmp_pd.insert((eid, i), phys_to_pd(sol.physdom_of(occ)));
        }
        for (&(v, a), &occ) in &self.var_occ {
            out.var_pd.insert((v, a), phys_to_pd(sol.physdom_of(occ)));
        }
        out.solution = Some(sol);
        out
    }
}
