//! Recursive-descent parser for mini-Jedd, implementing the productions of
//! the paper's Fig. 5 grammar (plus the standalone declaration/rule
//! syntax).

use crate::ast::*;
use crate::diag::{CompileError, Pos};
use crate::lex::{lex_with_allows, Tok, Token};

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

/// Parses a mini-Jedd source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its position.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let (toks, allows) = lex_with_allows(src)?;
    let mut p = Parser { toks, i: 0 };
    let mut prog = p.program()?;
    prog.allows = allows;
    Ok(prog)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.i + n).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i < self.toks.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), CompileError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn error(&self, message: String) -> CompileError {
        CompileError {
            pos: self.pos(),
            message,
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut decls = Vec::new();
        while *self.peek() != Tok::Eof {
            decls.push(self.decl()?);
        }
        Ok(Program {
            decls,
            allows: Vec::new(),
        })
    }

    fn decl(&mut self) -> Result<Decl, CompileError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Domain => {
                self.bump();
                let name = self.ident()?;
                let spec = match self.peek().clone() {
                    Tok::Int(n) => {
                        self.bump();
                        DomainSpec::Fixed(n)
                    }
                    Tok::LBrace => {
                        self.bump();
                        let mut elements = vec![self.ident()?];
                        while *self.peek() == Tok::Comma {
                            self.bump();
                            elements.push(self.ident()?);
                        }
                        self.expect(&Tok::RBrace)?;
                        DomainSpec::Enumerated(elements)
                    }
                    _ => DomainSpec::Deferred,
                };
                self.expect(&Tok::Semi)?;
                Ok(Decl::Domain { name, spec, pos })
            }
            Tok::Attribute => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::Colon)?;
                let domain = self.ident()?;
                self.expect(&Tok::Semi)?;
                Ok(Decl::Attribute { name, domain, pos })
            }
            Tok::Physdom => {
                self.bump();
                let interleaved = if *self.peek() == Tok::Interleaved {
                    self.bump();
                    true
                } else {
                    false
                };
                let mut names = vec![self.ident()?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    names.push(self.ident()?);
                }
                self.expect(&Tok::Semi)?;
                Ok(Decl::Physdom {
                    names,
                    interleaved,
                    pos,
                })
            }
            Tok::RelationKw => {
                self.bump();
                let schema = self.schema()?;
                let name = self.ident()?;
                self.expect(&Tok::Semi)?;
                Ok(Decl::Relation { name, schema, pos })
            }
            Tok::Rule => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::LBrace)?;
                let mut body = Vec::new();
                while *self.peek() != Tok::RBrace {
                    body.push(self.stmt()?);
                }
                self.expect(&Tok::RBrace)?;
                Ok(Decl::Rule { name, body, pos })
            }
            other => Err(self.error(format!(
                "expected a declaration (domain/attribute/physdom/relation/rule), found {other}"
            ))),
        }
    }

    /// `<a:T1, b>`
    fn schema(&mut self) -> Result<SchemaAst, CompileError> {
        let pos = self.pos();
        self.expect(&Tok::Lt)?;
        let mut attrs = Vec::new();
        loop {
            let attr = self.ident()?;
            let phys = if *self.peek() == Tok::Colon {
                self.bump();
                Some(self.ident()?)
            } else {
                None
            };
            attrs.push((attr, phys));
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::Gt)?;
        Ok(SchemaAst { attrs, pos })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Lt => {
                let schema = self.schema()?;
                let name = self.ident()?;
                let init = if *self.peek() == Tok::Assign {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Local {
                    name,
                    schema,
                    init,
                    pos,
                })
            }
            Tok::Do => {
                self.bump();
                self.expect(&Tok::LBrace)?;
                let mut body = Vec::new();
                while *self.peek() != Tok::RBrace {
                    body.push(self.stmt()?);
                }
                self.expect(&Tok::RBrace)?;
                self.expect(&Tok::While)?;
                self.expect(&Tok::LParen)?;
                let cond = self.cond()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond, pos })
            }
            Tok::While => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.cond()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::LBrace)?;
                let mut body = Vec::new();
                while *self.peek() != Tok::RBrace {
                    body.push(self.stmt()?);
                }
                self.expect(&Tok::RBrace)?;
                Ok(Stmt::While { cond, body, pos })
            }
            Tok::If => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.cond()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::LBrace)?;
                let mut then_body = Vec::new();
                while *self.peek() != Tok::RBrace {
                    then_body.push(self.stmt()?);
                }
                self.expect(&Tok::RBrace)?;
                let mut else_body = Vec::new();
                if *self.peek() == Tok::Else {
                    self.bump();
                    self.expect(&Tok::LBrace)?;
                    while *self.peek() != Tok::RBrace {
                        else_body.push(self.stmt()?);
                    }
                    self.expect(&Tok::RBrace)?;
                }
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                })
            }
            Tok::Ident(_) => {
                let name = self.ident()?;
                let op = match self.peek() {
                    Tok::Assign => AssignOp::Set,
                    Tok::OrAssign => AssignOp::Union,
                    Tok::AndAssign => AssignOp::Intersect,
                    Tok::MinusAssign => AssignOp::Minus,
                    other => {
                        return Err(self.error(format!(
                            "expected an assignment operator after `{name}`, found {other}"
                        )))
                    }
                };
                self.bump();
                let expr = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Assign {
                    name,
                    op,
                    expr,
                    pos,
                })
            }
            other => Err(self.error(format!("expected a statement, found {other}"))),
        }
    }

    fn cond(&mut self) -> Result<Cond, CompileError> {
        let pos = self.pos();
        let left = self.expr()?;
        let eq = match self.peek() {
            Tok::EqEq => true,
            Tok::NotEq => false,
            other => {
                return Err(self.error(format!("expected `==` or `!=` in condition, found {other}")))
            }
        };
        self.bump();
        let right = self.expr()?;
        Ok(Cond {
            left,
            right,
            eq,
            pos,
        })
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.set_expr()
    }

    /// `joinExpr (('|' | '&' | '-') joinExpr)*`
    fn set_expr(&mut self) -> Result<Expr, CompileError> {
        let mut left = self.join_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Pipe => SetOp::Union,
                Tok::Amp => SetOp::Intersect,
                Tok::Minus => SetOp::Minus,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let right = self.join_expr()?;
            left = Expr::SetOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
                pos,
            };
        }
        Ok(left)
    }

    /// `unary (attrList ('><' | '<>') unary attrList)*` — left associative,
    /// matching the Fig. 5 `RelExprJoin` production.
    fn join_expr(&mut self) -> Result<Expr, CompileError> {
        let mut left = self.unary()?;
        while *self.peek() == Tok::LBrace {
            let pos = self.pos();
            let left_attrs = self.attr_list()?;
            let is_join = match self.peek() {
                Tok::JoinSym => true,
                Tok::ComposeSym => false,
                other => {
                    return Err(
                        self.error(format!("expected `><` or `<>` after attribute list, found {other}"))
                    )
                }
            };
            self.bump();
            let right = self.unary()?;
            let right_attrs = self.attr_list()?;
            left = Expr::JoinLike {
                left: Box::new(left),
                left_attrs,
                right: Box::new(right),
                right_attrs,
                is_join,
                pos,
            };
        }
        Ok(left)
    }

    /// `{a, b}`
    fn attr_list(&mut self) -> Result<Vec<String>, CompileError> {
        self.expect(&Tok::LBrace)?;
        let mut attrs = vec![self.ident()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            attrs.push(self.ident()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(attrs)
    }

    /// Replacement cast or primary. A `(` followed by `ident =>` starts a
    /// cast; otherwise it parenthesises an expression.
    fn unary(&mut self) -> Result<Expr, CompileError> {
        if *self.peek() == Tok::LParen
            && matches!(self.peek_at(1), Tok::Ident(_))
            && *self.peek_at(2) == Tok::Arrow
        {
            let pos = self.pos();
            self.bump(); // (
            let mut replacements = vec![self.replacement()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                replacements.push(self.replacement()?);
            }
            self.expect(&Tok::RParen)?;
            let operand = self.unary()?;
            return Ok(Expr::Replace {
                replacements,
                operand: Box::new(operand),
                pos,
            });
        }
        self.primary()
    }

    /// `a=>`, `a=>b` or `a=>b c`
    fn replacement(&mut self) -> Result<Replacement, CompileError> {
        let from = self.ident()?;
        self.expect(&Tok::Arrow)?;
        match self.peek().clone() {
            Tok::Ident(to1) => {
                self.bump();
                if let Tok::Ident(to2) = self.peek().clone() {
                    self.bump();
                    Ok(Replacement::Copy(from, to1, to2))
                } else {
                    Ok(Replacement::Rename(from, to1))
                }
            }
            _ => Ok(Replacement::Project(from)),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Var { name, pos })
            }
            Tok::ZeroB => {
                self.bump();
                Ok(Expr::Empty { pos })
            }
            Tok::OneB => {
                self.bump();
                Ok(Expr::Full { pos })
            }
            Tok::New => {
                self.bump();
                self.expect(&Tok::LBrace)?;
                let mut fields = Vec::new();
                loop {
                    let obj = match self.peek().clone() {
                        Tok::Ident(s) => {
                            self.bump();
                            LiteralObj::Label(s)
                        }
                        Tok::Int(n) => {
                            self.bump();
                            LiteralObj::Index(n)
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected an object label or index in literal, found {other}"
                            )))
                        }
                    };
                    self.expect(&Tok::Arrow)?;
                    let attr = self.ident()?;
                    let phys = if *self.peek() == Tok::Colon {
                        self.bump();
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    fields.push((obj, attr, phys));
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(Expr::Literal { fields, pos })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_declarations() {
        let src = "
            domain Type { A, B };
            domain Method 1024;
            domain Site;
            attribute rectype : Type;
            physdom T1;
            physdom interleaved V1, V2;
            relation <rectype:T1, signature> receiverTypes;
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.decls.len(), 7);
        assert!(matches!(
            &p.decls[0],
            Decl::Domain { spec: DomainSpec::Enumerated(e), .. } if e.len() == 2
        ));
        assert!(matches!(
            &p.decls[1],
            Decl::Domain { spec: DomainSpec::Fixed(1024), .. }
        ));
        assert!(matches!(
            &p.decls[2],
            Decl::Domain { spec: DomainSpec::Deferred, .. }
        ));
        assert!(matches!(
            &p.decls[5],
            Decl::Physdom { interleaved: true, names, .. } if names.len() == 2
        ));
    }

    #[test]
    fn parse_figure4_body() {
        // The resolve rule of Fig. 4, lines 3-11, in mini-Jedd.
        let src = "
        rule resolve {
            <rectype, signature, tgttype> toResolve =
                (rectype => rectype tgttype) receiverTypes;
            do {
                <rectype:T1, signature:S1, tgttype:T2, method:M1> resolved =
                    toResolve {tgttype, signature} >< declaresMethod {type, signature};
                answer |= resolved;
                toResolve -= (method=>) resolved;
                toResolve = (supertype=>tgttype) (toResolve {tgttype} <> extend {subtype});
            } while (toResolve != 0B);
        }";
        let p = parse(src).unwrap();
        let Decl::Rule { body, .. } = &p.decls[0] else {
            panic!("expected rule");
        };
        assert_eq!(body.len(), 2);
        let Stmt::Local { schema, init, .. } = &body[0] else {
            panic!("expected local");
        };
        assert_eq!(schema.attrs.len(), 3);
        assert!(matches!(init, Some(Expr::Replace { .. })));
        let Stmt::DoWhile { body: loop_body, cond, .. } = &body[1] else {
            panic!("expected do-while");
        };
        assert_eq!(loop_body.len(), 4);
        assert!(!cond.eq);
        // The join in the loop.
        let Stmt::Local { schema, init: Some(Expr::JoinLike { is_join, left_attrs, .. }), .. } =
            &loop_body[0]
        else {
            panic!("expected join local");
        };
        assert!(*is_join);
        assert_eq!(left_attrs, &vec!["tgttype".to_string(), "signature".to_string()]);
        assert_eq!(schema.attrs[0].1.as_deref(), Some("T1"));
    }

    #[test]
    fn parse_literals() {
        let src = "rule r { x = new { B => rectype:T1, 2 => signature }; }";
        let p = parse(src).unwrap();
        let Decl::Rule { body, .. } = &p.decls[0] else {
            panic!()
        };
        let Stmt::Assign { expr: Expr::Literal { fields, .. }, .. } = &body[0] else {
            panic!("expected literal assignment")
        };
        assert_eq!(fields.len(), 2);
        assert!(matches!(fields[0].0, LiteralObj::Label(_)));
        assert!(matches!(fields[1].0, LiteralObj::Index(2)));
        assert_eq!(fields[0].2.as_deref(), Some("T1"));
    }

    #[test]
    fn parse_set_ops_and_parens() {
        let src = "rule r { x = (a | b) & c - d; }";
        let p = parse(src).unwrap();
        let Decl::Rule { body, .. } = &p.decls[0] else {
            panic!()
        };
        // Left associativity: ((a|b) & c) - d.
        let Stmt::Assign { expr, .. } = &body[0] else {
            panic!()
        };
        let Expr::SetOp { op: SetOp::Minus, left, .. } = expr else {
            panic!("outermost should be -")
        };
        assert!(matches!(**left, Expr::SetOp { op: SetOp::Intersect, .. }));
    }

    #[test]
    fn parse_replacement_variants() {
        let src = "rule r { x = (a=>, b=>c, d=>e f) y; }";
        let p = parse(src).unwrap();
        let Decl::Rule { body, .. } = &p.decls[0] else {
            panic!()
        };
        let Stmt::Assign { expr: Expr::Replace { replacements, .. }, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(replacements.len(), 3);
        assert!(matches!(&replacements[0], Replacement::Project(a) if a == "a"));
        assert!(matches!(&replacements[1], Replacement::Rename(b, c) if b == "b" && c == "c"));
        assert!(matches!(&replacements[2], Replacement::Copy(d, e, f) if d == "d" && e == "e" && f == "f"));
    }

    #[test]
    fn parse_if_else_and_while() {
        let src = "
        rule r {
            while (x != 0B) { x = x - y; }
            if (x == 0B) { x = y; } else { x = z; }
        }";
        let p = parse(src).unwrap();
        let Decl::Rule { body, .. } = &p.decls[0] else {
            panic!()
        };
        assert!(matches!(&body[0], Stmt::While { .. }));
        assert!(matches!(&body[1], Stmt::If { else_body, .. } if else_body.len() == 1));
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("rule r { x = ; }").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.message.contains("expected an expression"));
    }

    #[test]
    fn chained_joins_are_left_associative() {
        let src = "rule r { x = a {p} >< b {q} {r} <> c {s}; }";
        let p = parse(src).unwrap();
        let Decl::Rule { body, .. } = &p.decls[0] else {
            panic!()
        };
        let Stmt::Assign { expr: Expr::JoinLike { is_join: false, left, .. }, .. } = &body[0]
        else {
            panic!("outermost should be compose")
        };
        assert!(matches!(**left, Expr::JoinLike { is_join: true, .. }));
    }
}
