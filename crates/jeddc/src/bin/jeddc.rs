//! The `jeddc` command-line compiler (the tool of the paper's Fig. 1):
//! compiles a `.jedd` source file, reports type or physical-domain
//! assignment errors, and optionally prints the generated Java-like code
//! or the assignment statistics.
//!
//! Usage:
//!
//! ```text
//! jeddc [--emit-java] [--stats] [--auto] FILE.jedd
//! ```
//!
//! * `--emit-java` — print the generated code to stdout;
//! * `--stats`     — print the Table-1 statistics of the assignment;
//! * `--auto`      — pin unspecified components to fresh physical domains
//!   instead of reporting them (the paper's manual workflow, automated).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut emit_java = false;
    let mut stats = false;
    let mut auto = false;
    let mut file: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--emit-java" => emit_java = true,
            "--stats" => stats = true,
            "--auto" => auto = true,
            "--help" | "-h" => {
                eprintln!("usage: jeddc [--emit-java] [--stats] [--auto] FILE.jedd");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("jeddc: unknown option `{other}`");
                return ExitCode::FAILURE;
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    eprintln!("jeddc: exactly one input file expected");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let Some(path) = file else {
        eprintln!("usage: jeddc [--emit-java] [--stats] [--auto] FILE.jedd");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jeddc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if auto {
        jeddc::compile_auto(&src)
    } else {
        jeddc::compile_named(&src, &path)
    };
    match result {
        Ok(compiled) => {
            let s = compiled.assignment.stats;
            eprintln!(
                "{path}: ok — {} exprs, {} attrs, {} physdoms ({} auto-pinned), \
                 SAT {} vars / {} clauses, {:.1} ms",
                s.exprs,
                s.attrs,
                s.physdoms,
                compiled.assignment.auto_pins,
                s.sat_vars,
                s.sat_clauses,
                s.solve_seconds * 1000.0
            );
            if stats {
                println!(
                    "exprs {}\nattrs {}\nphysdoms {}\nconflict {}\nequality {}\n\
                     assignment {}\nsat_vars {}\nsat_clauses {}\nsat_literals {}\n\
                     flow_paths {}\nsolve_seconds {:.6}",
                    s.exprs,
                    s.attrs,
                    s.physdoms,
                    s.conflict,
                    s.equality,
                    s.assignment,
                    s.sat_vars,
                    s.sat_clauses,
                    s.sat_literals,
                    s.flow_paths,
                    s.solve_seconds
                );
            }
            if emit_java {
                print!("{}", jeddc::emit_java_like(&compiled));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: error: {e}");
            ExitCode::FAILURE
        }
    }
}
