//! The `jeddc` command-line compiler (the tool of the paper's Fig. 1):
//! compiles `.jedd` source files, reports type or physical-domain
//! assignment errors, and optionally prints the generated Java-like code,
//! the assignment statistics, or the `jeddlint` diagnostics.
//!
//! Usage:
//!
//! ```text
//! jeddc [--emit-java] [--stats] [--auto] [--lint] [--lint-format=json]
//!       [--deny <lint|warnings>] FILE.jedd [FILE.jedd ...]
//! ```
//!
//! * `--emit-java` — print the generated code to stdout;
//! * `--stats`     — print the Table-1 statistics of the assignment;
//! * `--auto`      — pin unspecified components to fresh physical domains
//!   instead of reporting them (the paper's manual workflow, automated);
//! * `--lint`      — run the `jeddlint` passes and print diagnostics
//!   instead of compiling; exits non-zero when any error-severity
//!   diagnostic remains;
//! * `--lint-format=json` — render lint diagnostics as JSON;
//! * `--deny NAME` — promote a lint (or `warnings`, meaning every
//!   warning) to error severity; repeatable.
//!
//! Multiple input files are concatenated in argument order before
//! compilation, which is how the embedded analyses compose their shared
//! prelude with each module.

use std::process::ExitCode;

const USAGE: &str = "usage: jeddc [--emit-java] [--stats] [--auto] [--lint] \
                     [--lint-format=json] [--deny <lint|warnings>] FILE.jedd ...";

fn main() -> ExitCode {
    let mut emit_java = false;
    let mut stats = false;
    let mut auto = false;
    let mut lint = false;
    let mut json = false;
    let mut deny: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-java" => emit_java = true,
            "--stats" => stats = true,
            "--auto" => auto = true,
            "--lint" => lint = true,
            "--lint-format=json" => json = true,
            "--lint-format=text" => json = false,
            "--deny" => {
                let Some(name) = args.next() else {
                    eprintln!("jeddc: --deny expects a lint name or `warnings`");
                    return ExitCode::FAILURE;
                };
                if name != "warnings" && !jeddc::lint::LINTS.contains(&name.as_str()) {
                    eprintln!("jeddc: unknown lint `{name}` in --deny");
                    return ExitCode::FAILURE;
                }
                deny.push(name);
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("jeddc: unknown option `{other}`");
                return ExitCode::FAILURE;
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut pieces = Vec::new();
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(s) => pieces.push(s),
            Err(e) => {
                eprintln!("jeddc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let src = pieces.join("\n");
    let name = files.join("+");

    if lint {
        return run_lint(&src, &name, auto, json, &deny);
    }

    let result = if auto {
        jeddc::compile_auto(&src)
    } else {
        jeddc::compile_named(&src, &name)
    };
    match result {
        Ok(compiled) => {
            let s = compiled.assignment.stats;
            eprintln!(
                "{name}: ok — {} exprs, {} attrs, {} physdoms ({} auto-pinned), \
                 SAT {} vars / {} clauses, {:.1} ms",
                s.exprs,
                s.attrs,
                s.physdoms,
                compiled.assignment.auto_pins,
                s.sat_vars,
                s.sat_clauses,
                s.solve_seconds * 1000.0
            );
            if stats {
                println!(
                    "exprs {}\nattrs {}\nphysdoms {}\nconflict {}\nequality {}\n\
                     assignment {}\nsat_vars {}\nsat_clauses {}\nsat_literals {}\n\
                     flow_paths {}\nsolve_seconds {:.6}",
                    s.exprs,
                    s.attrs,
                    s.physdoms,
                    s.conflict,
                    s.equality,
                    s.assignment,
                    s.sat_vars,
                    s.sat_clauses,
                    s.sat_literals,
                    s.flow_paths,
                    s.solve_seconds
                );
            }
            if emit_java {
                print!("{}", jeddc::emit_java_like(&compiled));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{name}: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Lints the concatenated source: every independent front-end error is
/// reported (not just the first), and when the program compiles, the
/// physical-domain assignment feeds the replace-cost pass.
fn run_lint(src: &str, name: &str, auto: bool, json: bool, deny: &[String]) -> ExitCode {
    let mut diags: Vec<jeddc::Diagnostic> = Vec::new();
    match jeddc::parse::parse(src) {
        Err(e) => diags.push(jeddc::Diagnostic::from_compile_error(&e)),
        Ok(prog) => match jeddc::check::check_all(&prog) {
            Err(errs) => {
                diags.extend(errs.iter().map(jeddc::Diagnostic::from_compile_error));
            }
            Ok(typed) => {
                let assignment = match jeddc::assignc::assign_named(&typed, auto, name) {
                    Ok(a) => Some(a),
                    Err(e) => {
                        eprintln!("{name}: error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                diags = jeddc::lint::lint_program(&typed, assignment.as_ref());
            }
        },
    }
    jeddc::lint::apply_deny(&mut diags, deny);
    if json {
        println!("{}", jeddc::diag::render_json(&diags));
    } else {
        let text = jeddc::diag::render_text(&diags);
        if !text.is_empty() {
            print!("{text}");
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == jeddc::Severity::Error)
        .count();
    if errors > 0 {
        eprintln!("{name}: {errors} error(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
