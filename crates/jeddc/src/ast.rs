//! Abstract syntax of the mini-Jedd language.
//!
//! Mirrors the productions the paper adds to Java (Fig. 5). Where the
//! original embeds relational expressions into full Java, mini-Jedd is a
//! standalone language of declarations and rules; the surrounding Java is
//! played by the host program driving [`crate::Executor`].

use crate::diag::Pos;

/// A relation type annotation `<a:T1, b, c:T2>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaAst {
    /// Attribute name plus optional physical-domain ascription.
    pub attrs: Vec<(String, Option<String>)>,
    /// Source position of the `<`.
    pub pos: Pos,
}

/// How a domain's size is determined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DomainSpec {
    /// `domain D;` — size bound by the host before execution.
    Deferred,
    /// `domain D 1024;`
    Fixed(u64),
    /// `domain D { A, B, C };`
    Enumerated(Vec<String>),
}

/// A top-level declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decl {
    /// `domain Type ...;`
    Domain {
        /// Domain name.
        name: String,
        /// Size specification.
        spec: DomainSpec,
        /// Source position.
        pos: Pos,
    },
    /// `attribute rectype : Type;`
    Attribute {
        /// Attribute name.
        name: String,
        /// Domain name.
        domain: String,
        /// Source position.
        pos: Pos,
    },
    /// `physdom T1;` or `physdom interleaved T1, T2;`
    Physdom {
        /// Domain names declared together.
        names: Vec<String>,
        /// Whether the group's bits are interleaved in the variable order.
        interleaved: bool,
        /// Source position.
        pos: Pos,
    },
    /// `relation <a:T1, b> name;` — a global relation variable.
    Relation {
        /// Variable name.
        name: String,
        /// Declared schema.
        schema: SchemaAst,
        /// Source position.
        pos: Pos,
    },
    /// `rule name { ... }`
    Rule {
        /// Rule name.
        name: String,
        /// Body statements.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
}

/// Compound assignment operators (`=`, `|=`, `&=`, `-=`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `|=`
    Union,
    /// `&=`
    Intersect,
    /// `-=`
    Minus,
}

/// A statement inside a rule body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `<a:T1, b> name = expr;` — local relation declaration.
    Local {
        /// Variable name.
        name: String,
        /// Declared schema.
        schema: SchemaAst,
        /// Optional initialiser.
        init: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `name op= expr;`
    Assign {
        /// Target variable.
        name: String,
        /// The assignment operator.
        op: AssignOp,
        /// Right-hand side.
        expr: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `do { ... } while (cond);`
    DoWhile {
        /// Loop body.
        body: Vec<Stmt>,
        /// Loop condition.
        cond: Cond,
        /// Source position.
        pos: Pos,
    },
    /// `while (cond) { ... }`
    While {
        /// Loop condition.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        /// Branch condition.
        cond: Cond,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Optional else branch.
        else_body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
}

/// A relational comparison `expr == expr` / `expr != expr`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cond {
    /// Left operand.
    pub left: Expr,
    /// Right operand.
    pub right: Expr,
    /// `true` for `==`, `false` for `!=`.
    pub eq: bool,
    /// Source position.
    pub pos: Pos,
}

/// One replacement inside a cast: `(a=>)`, `(a=>b)` or `(a=>b c)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Replacement {
    /// `a=>` — project `a` away.
    Project(String),
    /// `a=>b` — rename `a` to `b`.
    Rename(String, String),
    /// `a=>b c` — copy `a` into `b` and `c`.
    Copy(String, String, String),
}

/// The binary set operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetOp {
    /// `|`
    Union,
    /// `&`
    Intersect,
    /// `-`
    Minus,
}

/// A relational expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A relation variable reference.
    Var {
        /// Variable name.
        name: String,
        /// Source position.
        pos: Pos,
    },
    /// The `0B` constant.
    Empty {
        /// Source position.
        pos: Pos,
    },
    /// The `1B` constant.
    Full {
        /// Source position.
        pos: Pos,
    },
    /// `new { obj => attr:PD, ... }`
    Literal {
        /// Fields: object label/index, attribute, optional physical domain.
        fields: Vec<(LiteralObj, String, Option<String>)>,
        /// Source position.
        pos: Pos,
    },
    /// `(repl, ...) expr`
    Replace {
        /// The replacements applied.
        replacements: Vec<Replacement>,
        /// The operand.
        operand: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `l {attrs} >< r {attrs}` or `l {attrs} <> r {attrs}`
    JoinLike {
        /// Left operand.
        left: Box<Expr>,
        /// Left compared attributes.
        left_attrs: Vec<String>,
        /// Right operand.
        right: Box<Expr>,
        /// Right compared attributes.
        right_attrs: Vec<String>,
        /// `true` for join `><`, `false` for compose `<>`.
        is_join: bool,
        /// Source position.
        pos: Pos,
    },
    /// `l | r`, `l & r`, `l - r`
    SetOp {
        /// The operator.
        op: SetOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
}

/// An object inside a tuple literal: a domain-element label or an index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiteralObj {
    /// A named domain element (for enumerated domains).
    Label(String),
    /// An explicit object index.
    Index(u64),
}

impl Expr {
    /// The source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Var { pos, .. }
            | Expr::Empty { pos }
            | Expr::Full { pos }
            | Expr::Literal { pos, .. }
            | Expr::Replace { pos, .. }
            | Expr::JoinLike { pos, .. }
            | Expr::SetOp { pos, .. } => *pos,
        }
    }

    /// A short label describing the expression kind, used in assignment
    /// diagnostics (e.g. `Compose_expression` in the paper's messages).
    pub fn label(&self) -> &'static str {
        match self {
            Expr::Var { .. } => "Var_expression",
            Expr::Empty { .. } => "Empty_expression",
            Expr::Full { .. } => "Full_expression",
            Expr::Literal { .. } => "Literal_expression",
            Expr::Replace { .. } => "Replace_expression",
            Expr::JoinLike { is_join: true, .. } => "Join_expression",
            Expr::JoinLike { is_join: false, .. } => "Compose_expression",
            Expr::SetOp { .. } => "SetOp_expression",
        }
    }
}

/// A parsed program: declarations in source order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// Top-level declarations.
    pub decls: Vec<Decl>,
    /// `// jedd:allow(<lint>)` annotations collected by the lexer, in
    /// source order. The lint driver uses them to suppress diagnostics.
    pub allows: Vec<crate::diag::Allow>,
}
