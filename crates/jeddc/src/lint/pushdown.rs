//! The projection push-down advisory: a projection cast applied to the
//! result of a join can often run earlier — either fused into the join
//! itself (when the projected attributes are exactly the compared ones,
//! the combination *is* the paper's `<>` compose, implemented as the
//! single BDD `relprod`/`and_exists` operation) or pushed into the
//! operand that owns the attribute, shrinking the intermediate result.

use crate::check::{AttrIdx, TCond, TExpr, TExprKind, TRule, TStmt, TypedProgram};
use crate::diag::{Diagnostic, Severity};

/// Runs the push-down pass over one rule, appending diagnostics.
pub fn pushdown(prog: &TypedProgram, rule: &TRule, out: &mut Vec<Diagnostic>) {
    for s in &rule.body {
        stmt(prog, s, out);
    }
}

fn stmt(prog: &TypedProgram, s: &TStmt, out: &mut Vec<Diagnostic>) {
    match s {
        TStmt::Local { init, .. } => {
            if let Some(e) = init {
                expr(prog, e, out);
            }
        }
        TStmt::Assign { expr: e, .. } => expr(prog, e, out),
        TStmt::DoWhile { body, cond } => {
            for s in body {
                stmt(prog, s, out);
            }
            cond_expr(prog, cond, out);
        }
        TStmt::While { cond, body } => {
            cond_expr(prog, cond, out);
            for s in body {
                stmt(prog, s, out);
            }
        }
        TStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            cond_expr(prog, cond, out);
            for s in then_body.iter().chain(else_body) {
                stmt(prog, s, out);
            }
        }
    }
}

fn cond_expr(prog: &TypedProgram, c: &TCond, out: &mut Vec<Diagnostic>) {
    expr(prog, &c.left, out);
    expr(prog, &c.right, out);
}

fn expr(prog: &TypedProgram, e: &TExpr, out: &mut Vec<Diagnostic>) {
    if let TExprKind::Replace {
        operand, projects, ..
    } = &e.kind
    {
        if !projects.is_empty() {
            if let TExprKind::JoinLike {
                left,
                left_attrs,
                right,
                right_attrs,
                is_join: true,
            } = &operand.kind
            {
                report(
                    prog, e, projects, left, left_attrs, right, right_attrs, out,
                );
            }
        }
    }
    match &e.kind {
        TExprKind::Var(_) | TExprKind::Empty | TExprKind::Full | TExprKind::Literal(_) => {}
        TExprKind::Replace { operand, .. } => expr(prog, operand, out),
        TExprKind::JoinLike { left, right, .. } | TExprKind::SetOp { left, right, .. } => {
            expr(prog, left, out);
            expr(prog, right, out);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn report(
    prog: &TypedProgram,
    cast: &TExpr,
    projects: &[AttrIdx],
    left: &TExpr,
    left_attrs: &[AttrIdx],
    right: &TExpr,
    right_attrs: &[AttrIdx],
    out: &mut Vec<Diagnostic>,
) {
    let compared: Vec<AttrIdx> = left_attrs
        .iter()
        .chain(right_attrs)
        .copied()
        .collect();
    let name = |a: AttrIdx| prog.attributes[a as usize].name.clone();

    // All compared attributes projected away right after the join: the
    // pair is exactly a compose, which fuses the projection into the
    // single relprod BDD operation.
    let all_compared_projected = compared.iter().all(|a| projects.contains(a));
    if all_compared_projected && projects.iter().all(|a| compared.contains(a)) {
        out.push(Diagnostic {
            severity: Severity::Warning,
            lint: Some("projection-pushdown"),
            pos: cast.pos,
            message: "projecting the compared attributes away after a join is a compose"
                .to_string(),
            suggestion: Some(
                "use `<>` instead of `><` and drop the projection cast; the projection \
                 then runs inside the join's relprod"
                    .to_string(),
            ),
        });
        return;
    }

    // Attributes projected away that were never compared belong to one
    // operand only; projecting them before the join shrinks the
    // intermediate relation the join builds.
    for &a in projects {
        if compared.contains(&a) {
            continue;
        }
        let side = if left.schema.contains(&a) {
            Some(("left", left))
        } else if right.schema.contains(&a) {
            Some(("right", right))
        } else {
            None
        };
        if let Some((which, _)) = side {
            out.push(Diagnostic {
                severity: Severity::Warning,
                lint: Some("projection-pushdown"),
                pos: cast.pos,
                message: format!(
                    "attribute `{}` is projected away immediately after the join",
                    name(a)
                ),
                suggestion: Some(format!(
                    "project `{}` from the {which} operand before joining to shrink the \
                     intermediate result",
                    name(a)
                )),
            });
        }
    }
}
