//! `jeddlint`: static analysis and lint passes over the typed mini-Jedd
//! IR.
//!
//! Five passes run over [`crate::check::TypedProgram`] (and, when
//! available, the solved physical-domain [`crate::assignc::Assignment`]):
//!
//! * `definite-assignment` — a rule-local may be read before any store on
//!   some path (forward must-dataflow over the rule CFG);
//! * `dead-store` / `never-read` — liveness: stores whose value no path
//!   reads, and locals never read at all (backward may-dataflow);
//! * `redundant-op` — operations that provably do nothing: identity
//!   casts, self-renames, set operations against `0B`/`1B`, mergeable
//!   projection chains;
//! * `replace-cost` — the replace operations the assignment forces
//!   (§3.3.2's broken assignment edges), one note per site, plus a
//!   what-if re-solve suggesting the ascription change that removes the
//!   most;
//! * `projection-pushdown` — projections that could run earlier: fused
//!   into a join as a compose, or pushed into an operand.
//!
//! Diagnostics carry severity, lint name, position, and an optional
//! suggestion; `// jedd:allow(<lint>)` comments on the same or the
//! preceding line suppress them.

pub mod cfg;
mod flow;
mod pushdown;
mod redundant;
mod replace_cost;

use crate::assignc::Assignment;
use crate::check::TypedProgram;
use crate::diag::{Allow, Diagnostic, Severity};

pub use replace_cost::static_replace_sites;

/// The names of every lint, as used by `--deny` and `jedd:allow`.
pub const LINTS: &[&str] = &[
    "definite-assignment",
    "dead-store",
    "never-read",
    "redundant-op",
    "replace-cost",
    "projection-pushdown",
];

/// Runs every lint pass over a typed program.
///
/// The physical-domain passes (`replace-cost`) only run when an
/// `assignment` is supplied; the dataflow and syntactic passes always
/// run. Diagnostics suppressed by the program's `jedd:allow` annotations
/// are dropped, and the result is sorted by source position.
pub fn lint_program(prog: &TypedProgram, assignment: Option<&Assignment>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in &prog.rules {
        flow::definite_assignment(prog, rule, &mut out);
        flow::liveness(prog, rule, &mut out);
        redundant::redundant_ops(prog, rule, &mut out);
        pushdown::pushdown(prog, rule, &mut out);
    }
    if let Some(a) = assignment {
        replace_cost::replace_cost(prog, a, &mut out);
    }
    out.retain(|d| !allowed(d, &prog.allows));
    out.sort_by_key(|d| (d.pos.line, d.pos.col, d.lint, d.message.clone()));
    out
}

/// Whether an allow annotation suppresses this diagnostic: the lint names
/// match and the annotation sits on the same line as the diagnostic or on
/// the line directly above it.
fn allowed(d: &Diagnostic, allows: &[Allow]) -> bool {
    let Some(lint) = d.lint else { return false };
    allows
        .iter()
        .any(|a| a.lint == lint && (a.line == d.pos.line || a.line + 1 == d.pos.line))
}

/// Applies `--deny` selections: `warnings` promotes every warning to an
/// error; a lint name promotes that lint's diagnostics (of any severity)
/// to errors. Unknown names are ignored here — the CLI validates them.
pub fn apply_deny(diags: &mut [Diagnostic], deny: &[String]) {
    let deny_warnings = deny.iter().any(|d| d == "warnings");
    for d in diags {
        let by_name = d.lint.is_some_and(|l| deny.iter().any(|n| n == l));
        if by_name || (deny_warnings && d.severity == Severity::Warning) {
            d.severity = Severity::Error;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Pos;

    const DECLS: &str = "
        domain T { A, B };
        attribute a : T;
        attribute b : T;
        attribute c : T;
        physdom P1, P2, P3;
        relation <a:P1> ga;
        relation <a:P1, b:P2> gab;
        relation <b:P2, c:P3> gbc;
        relation <a:P1, c:P3> gac;
    ";

    fn typed(body: &str) -> TypedProgram {
        let src = format!("{DECLS} rule r {{ {body} }}");
        let prog = crate::parse::parse(&src).expect("parse");
        crate::check::check(&prog).expect("check")
    }

    fn lints_of(body: &str) -> Vec<(String, u8)> {
        lint_program(&typed(body), None)
            .into_iter()
            .map(|d| {
                (
                    d.lint.unwrap_or("?").to_string(),
                    match d.severity {
                        Severity::Note => 0,
                        Severity::Warning => 1,
                        Severity::Error => 2,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn definite_assignment_fires_on_branchy_read() {
        let diags = lint_program(
            &typed(
                "<a> x;
                 if (ga == 0B) { x = ga; } else { }
                 ga = x;",
            ),
            None,
        );
        assert!(diags
            .iter()
            .any(|d| d.lint == Some("definite-assignment")));
    }

    #[test]
    fn definite_assignment_silent_when_all_paths_assign() {
        let diags = lint_program(
            &typed(
                "<a> x;
                 if (ga == 0B) { x = ga; } else { x = 0B; }
                 ga = x;",
            ),
            None,
        );
        assert!(!diags
            .iter()
            .any(|d| d.lint == Some("definite-assignment")));
    }

    #[test]
    fn do_while_body_assignment_reaches_condition() {
        // The body runs before the condition, so a body-assigned local
        // read in the condition is definitely assigned.
        let diags = lint_program(
            &typed(
                "<a> x;
                 do { x = ga; ga = x; } while (x != 0B);",
            ),
            None,
        );
        assert!(!diags
            .iter()
            .any(|d| d.lint == Some("definite-assignment")));
    }

    #[test]
    fn dead_store_and_never_read() {
        let ls = lints_of("<a> x = ga; x = 0B; ga = x;");
        assert!(ls.iter().any(|(l, _)| l == "dead-store"), "{ls:?}");
        let ls = lints_of("<a> unused = ga;");
        assert!(ls.iter().any(|(l, _)| l == "never-read"), "{ls:?}");
        // Loop-carried value is not a dead store.
        let ls = lints_of("<a> x = ga; do { x = x & ga; } while (x != 0B); ga = x;");
        assert!(!ls.iter().any(|(l, _)| l == "dead-store"), "{ls:?}");
    }

    #[test]
    fn redundant_setops_fire() {
        let ls = lints_of("ga = ga | 0B;");
        assert!(ls.iter().any(|(l, _)| l == "redundant-op"), "{ls:?}");
        let ls = lints_of("ga = ga & ga;");
        assert!(!ls.iter().any(|(l, _)| l == "redundant-op"), "{ls:?}");
    }

    #[test]
    fn pushdown_fires_on_join_then_project_compared() {
        let ls = lints_of("gac = (b=>) (gab {b} >< gbc {b});");
        assert!(
            ls.iter().any(|(l, _)| l == "projection-pushdown"),
            "{ls:?}"
        );
        // The compose spelling is the suggested rewrite and is silent.
        let ls = lints_of("gac = gab {b} <> gbc {b};");
        assert!(
            !ls.iter().any(|(l, _)| l == "projection-pushdown"),
            "{ls:?}"
        );
    }

    #[test]
    fn allow_suppresses_on_same_or_next_line() {
        let src = format!(
            "{DECLS} rule r {{\n// jedd:allow(redundant-op)\nga = ga | 0B;\n}}"
        );
        let prog = crate::parse::parse(&src).expect("parse");
        let typed = crate::check::check(&prog).expect("check");
        let diags = lint_program(&typed, None);
        assert!(
            !diags.iter().any(|d| d.lint == Some("redundant-op")),
            "{diags:?}"
        );
    }

    #[test]
    fn replace_cost_notes_and_suggestion() {
        let src = "
            domain T { A, B };
            attribute a : T;
            attribute b : T;
            physdom P1, P2, P3;
            relation <a:P1, b:P2> r;
            relation <a:P3, b:P2> s;
            rule mv { s = r; }
        ";
        let prog = crate::parse::parse(src).expect("parse");
        let typed = crate::check::check(&prog).expect("check");
        let assignment = crate::assignc::assign(&typed, false).expect("assign");
        assert_eq!(static_replace_sites(&assignment), 1);
        let diags = lint_program(&typed, Some(&assignment));
        assert!(
            diags
                .iter()
                .any(|d| d.lint == Some("replace-cost") && d.severity == Severity::Note),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.lint == Some("replace-cost") && d.severity == Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn deny_promotes_severity() {
        let mut diags = vec![Diagnostic {
            severity: Severity::Warning,
            lint: Some("dead-store"),
            pos: Pos { line: 1, col: 1 },
            message: "m".into(),
            suggestion: None,
        }];
        apply_deny(&mut diags, &["warnings".to_string()]);
        assert_eq!(diags[0].severity, Severity::Error);
    }
}
