//! A control-flow graph over rule bodies, shared by the dataflow lint
//! passes.
//!
//! Each rule body is lowered to basic blocks of *events* — declarations,
//! reads, and stores of relation variables, in evaluation order — joined
//! by edges that mirror the structured control flow of mini-Jedd
//! (`do/while`, `while`, `if/else`). The forward pass (definite
//! assignment) and the backward pass (liveness) both run as ordinary
//! worklist fixpoints over this graph.

use crate::check::{TCond, TExpr, TExprKind, TStmt, VarIdx};
use crate::diag::Pos;

/// One variable-relevant action inside a basic block, in evaluation
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A local declaration. `init` is true when the declaration carries an
    /// initialiser (and therefore also assigns).
    Decl {
        /// The declared variable.
        var: VarIdx,
        /// Whether an initialiser was present.
        init: bool,
        /// Position of the declaration.
        pos: Pos,
    },
    /// A read of a variable inside an expression or condition.
    Read {
        /// The variable read.
        var: VarIdx,
        /// Position of the reference.
        pos: Pos,
    },
    /// A store to a variable (`=`, `|=`, `&=`, `-=`). Compound stores are
    /// preceded by a [`Event::Read`] of the same variable.
    Store {
        /// The variable stored to.
        var: VarIdx,
        /// Whether the operator was compound (reads the old value).
        compound: bool,
        /// Position of the assignment.
        pos: Pos,
    },
}

/// A basic block: straight-line events plus successor/predecessor edges.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Events in evaluation order.
    pub events: Vec<Event>,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
}

/// The control-flow graph of one rule body.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All blocks; indices are block ids.
    pub blocks: Vec<Block>,
    /// Entry block (always 0).
    pub entry: usize,
    /// Exit block; every terminating path ends here.
    pub exit: usize,
}

impl Cfg {
    /// Lowers a rule body into a CFG.
    pub fn build(body: &[TStmt]) -> Cfg {
        let mut b = Builder {
            blocks: vec![Block::default()],
            cur: 0,
        };
        b.stmts(body);
        let exit = b.new_block();
        b.edge_from_cur(exit);
        let mut cfg = Cfg {
            blocks: b.blocks,
            entry: 0,
            exit,
        };
        for i in 0..cfg.blocks.len() {
            for s in cfg.blocks[i].succs.clone() {
                cfg.blocks[s].preds.push(i);
            }
        }
        cfg
    }
}

struct Builder {
    blocks: Vec<Block>,
    cur: usize,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succs.push(to);
    }

    fn edge_from_cur(&mut self, to: usize) {
        self.edge(self.cur, to);
    }

    fn push(&mut self, ev: Event) {
        self.blocks[self.cur].events.push(ev);
    }

    fn expr_reads(&mut self, e: &TExpr) {
        match &e.kind {
            TExprKind::Var(v) => self.push(Event::Read {
                var: *v,
                pos: e.pos,
            }),
            TExprKind::Empty | TExprKind::Full | TExprKind::Literal(_) => {}
            TExprKind::Replace { operand, .. } => self.expr_reads(operand),
            TExprKind::JoinLike { left, right, .. } | TExprKind::SetOp { left, right, .. } => {
                self.expr_reads(left);
                self.expr_reads(right);
            }
        }
    }

    fn cond_reads(&mut self, c: &TCond) {
        self.expr_reads(&c.left);
        self.expr_reads(&c.right);
    }

    fn stmts(&mut self, body: &[TStmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &TStmt) {
        match s {
            TStmt::Local { var, init, pos } => {
                if let Some(e) = init {
                    self.expr_reads(e);
                }
                self.push(Event::Decl {
                    var: *var,
                    init: init.is_some(),
                    pos: *pos,
                });
            }
            TStmt::Assign { var, op, expr, pos } => {
                self.expr_reads(expr);
                let compound = !matches!(op, crate::ast::AssignOp::Set);
                if compound {
                    self.push(Event::Read {
                        var: *var,
                        pos: *pos,
                    });
                }
                self.push(Event::Store {
                    var: *var,
                    compound,
                    pos: *pos,
                });
            }
            TStmt::DoWhile { body, cond } => {
                // entry -> body; body falls into cond; cond -> body
                // (backedge) and cond -> after.
                let body_start = self.new_block();
                self.edge_from_cur(body_start);
                self.cur = body_start;
                self.stmts(body);
                let cond_block = self.new_block();
                self.edge_from_cur(cond_block);
                self.cur = cond_block;
                self.cond_reads(cond);
                let after = self.new_block();
                self.edge(cond_block, body_start);
                self.edge(cond_block, after);
                self.cur = after;
            }
            TStmt::While { cond, body } => {
                // entry -> cond; cond -> body -> cond (backedge);
                // cond -> after.
                let cond_block = self.new_block();
                self.edge_from_cur(cond_block);
                self.cur = cond_block;
                self.cond_reads(cond);
                let body_start = self.new_block();
                let after = self.new_block();
                self.edge(cond_block, body_start);
                self.edge(cond_block, after);
                self.cur = body_start;
                self.stmts(body);
                self.edge_from_cur(cond_block);
                self.cur = after;
            }
            TStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.cond_reads(cond);
                let cond_block = self.cur;
                let then_start = self.new_block();
                self.edge(cond_block, then_start);
                self.cur = then_start;
                self.stmts(then_body);
                let then_end = self.cur;
                let else_start = self.new_block();
                self.edge(cond_block, else_start);
                self.cur = else_start;
                self.stmts(else_body);
                let else_end = self.cur;
                let join = self.new_block();
                self.edge(then_end, join);
                self.edge(else_end, join);
                self.cur = join;
            }
        }
    }
}
