//! The dataflow passes: definite assignment (forward, must) and liveness
//! (backward, may).
//!
//! Both run on the shared [`Cfg`]. Definite assignment tracks the set of
//! variables assigned on *every* path (meet = intersection) and warns
//! when a rule-local declared without an initialiser is read before some
//! path has stored to it. Liveness tracks the set of variables whose
//! current value *may* still be read (join = union, seeded at the exit
//! with the globals, which are the rule's outputs) and warns about stores
//! whose value no path ever reads, plus rule-locals that are never read
//! at all.

use super::cfg::{Cfg, Event};
use crate::check::{TRule, TypedProgram, VarIdx};
use crate::diag::{Diagnostic, Severity};

/// A dense bitset over variable indices.
#[derive(Clone, PartialEq, Eq)]
struct VarSet {
    bits: Vec<bool>,
}

impl VarSet {
    fn empty(n: usize) -> VarSet {
        VarSet {
            bits: vec![false; n],
        }
    }

    fn full(n: usize) -> VarSet {
        VarSet {
            bits: vec![true; n],
        }
    }

    fn insert(&mut self, v: VarIdx) {
        self.bits[v as usize] = true;
    }

    fn remove(&mut self, v: VarIdx) {
        self.bits[v as usize] = false;
    }

    fn contains(&self, v: VarIdx) -> bool {
        self.bits[v as usize]
    }

    fn intersect_with(&mut self, other: &VarSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a = *a && *b;
        }
    }

    fn union_with(&mut self, other: &VarSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a = *a || *b;
        }
    }
}

/// Runs definite assignment over one rule, appending diagnostics.
pub fn definite_assignment(prog: &TypedProgram, rule: &TRule, out: &mut Vec<Diagnostic>) {
    let cfg = Cfg::build(&rule.body);
    let n = prog.vars.len();

    // Entry state: globals are always assigned (the executor initialises
    // them before any rule runs); locals are not.
    let mut entry = VarSet::empty(n);
    for (i, v) in prog.vars.iter().enumerate() {
        if v.global {
            entry.insert(i as VarIdx);
        }
    }

    // Forward must-analysis: in[b] = ∩ out[preds]; start everything at
    // top (all assigned) except the entry, and iterate to fixpoint.
    let mut ins: Vec<VarSet> = vec![VarSet::full(n); cfg.blocks.len()];
    ins[cfg.entry] = entry;
    let mut work: Vec<usize> = (0..cfg.blocks.len()).collect();
    while let Some(b) = work.pop() {
        let mut out_state = ins[b].clone();
        transfer_assigned(&cfg.blocks[b].events, &mut out_state);
        for &s in &cfg.blocks[b].succs {
            let mut next = ins[s].clone();
            next.intersect_with(&out_state);
            if next != ins[s] {
                ins[s] = next;
                if !work.contains(&s) {
                    work.push(s);
                }
            }
        }
    }

    // Report: walk each block with its fixpoint in-state; a read of a
    // local that is not definitely assigned fires once per variable, at
    // the earliest offending read.
    let mut firing: Vec<Option<Diagnostic>> = vec![None; n];
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut state = ins[b].clone();
        for ev in &block.events {
            match ev {
                Event::Read { var, pos } => {
                    if !state.contains(*var) && !prog.vars[*var as usize].global {
                        let name = &prog.vars[*var as usize].name;
                        let d = Diagnostic {
                            severity: Severity::Warning,
                            lint: Some("definite-assignment"),
                            pos: *pos,
                            message: format!(
                                "relation `{name}` may be read before it is assigned"
                            ),
                            suggestion: Some(format!(
                                "give `{name}` an initialiser, or assign it on every path \
                                 before this read"
                            )),
                        };
                        let slot = &mut firing[*var as usize];
                        let earlier = slot
                            .as_ref()
                            .is_some_and(|p| (p.pos.line, p.pos.col) <= (pos.line, pos.col));
                        if !earlier {
                            *slot = Some(d);
                        }
                    }
                }
                Event::Decl { var, init, .. } => {
                    if *init {
                        state.insert(*var);
                    }
                }
                Event::Store { var, .. } => state.insert(*var),
            }
        }
    }
    out.extend(firing.into_iter().flatten());
}

fn transfer_assigned(events: &[Event], state: &mut VarSet) {
    for ev in events {
        match ev {
            Event::Decl { var, init: true, .. } | Event::Store { var, .. } => state.insert(*var),
            _ => {}
        }
    }
}

/// Runs liveness over one rule, appending dead-store and never-read
/// diagnostics.
pub fn liveness(prog: &TypedProgram, rule: &TRule, out: &mut Vec<Diagnostic>) {
    let cfg = Cfg::build(&rule.body);
    let n = prog.vars.len();

    // Syntactic read counts decide `never-read`: a rule-local with zero
    // reads anywhere gets one diagnostic at its declaration and is then
    // exempt from per-store dead-store reports.
    let mut read_anywhere = VarSet::empty(n);
    let mut declared_here: Vec<Option<crate::diag::Pos>> = vec![None; n];
    for block in &cfg.blocks {
        for ev in &block.events {
            match ev {
                Event::Read { var, .. } => read_anywhere.insert(*var),
                Event::Decl { var, pos, .. } => declared_here[*var as usize] = Some(*pos),
                Event::Store { .. } => {}
            }
        }
    }
    let mut never_read = VarSet::empty(n);
    for (i, v) in prog.vars.iter().enumerate() {
        let Some(pos) = declared_here[i] else { continue };
        if v.global || read_anywhere.contains(i as VarIdx) {
            continue;
        }
        never_read.insert(i as VarIdx);
        out.push(Diagnostic {
            severity: Severity::Warning,
            lint: Some("never-read"),
            pos,
            message: format!("relation `{}` is never read", v.name),
            suggestion: Some(format!("remove `{}` or use its value", v.name)),
        });
    }

    // Backward may-analysis: live-out[exit] = globals (rule outputs);
    // out[b] = ∪ in[succs].
    let mut exit_live = VarSet::empty(n);
    for (i, v) in prog.vars.iter().enumerate() {
        if v.global {
            exit_live.insert(i as VarIdx);
        }
    }
    let mut outs: Vec<VarSet> = vec![VarSet::empty(n); cfg.blocks.len()];
    outs[cfg.exit] = exit_live;
    let mut work: Vec<usize> = (0..cfg.blocks.len()).collect();
    while let Some(b) = work.pop() {
        let mut in_state = outs[b].clone();
        transfer_live(&cfg.blocks[b].events, &mut in_state);
        for &p in &cfg.blocks[b].preds {
            let mut next = outs[p].clone();
            next.union_with(&in_state);
            if next != outs[p] {
                outs[p] = next;
                if !work.contains(&p) {
                    work.push(p);
                }
            }
        }
    }

    // Report: walk each block backwards with its fixpoint out-state; a
    // store to a local that is not live afterwards is dead.
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut state = outs[b].clone();
        for ev in block.events.iter().rev() {
            match ev {
                Event::Read { var, .. } => state.insert(*var),
                Event::Store { var, pos, .. } => {
                    let local = !prog.vars[*var as usize].global;
                    if local && !state.contains(*var) && !never_read.contains(*var) {
                        let name = &prog.vars[*var as usize].name;
                        out.push(Diagnostic {
                            severity: Severity::Warning,
                            lint: Some("dead-store"),
                            pos: *pos,
                            message: format!(
                                "value stored to `{name}` is never read"
                            ),
                            suggestion: Some("remove this assignment".to_string()),
                        });
                    }
                    state.remove(*var);
                }
                Event::Decl { var, init, pos } => {
                    if *init {
                        let local = !prog.vars[*var as usize].global;
                        if local && !state.contains(*var) && !never_read.contains(*var) {
                            let name = &prog.vars[*var as usize].name;
                            out.push(Diagnostic {
                                severity: Severity::Warning,
                                lint: Some("dead-store"),
                                pos: *pos,
                                message: format!(
                                    "initialiser of `{name}` is never read"
                                ),
                                suggestion: Some(
                                    "drop the initialiser or use its value".to_string(),
                                ),
                            });
                        }
                    }
                    state.remove(*var);
                }
            }
        }
    }
}

fn transfer_live(events: &[Event], state: &mut VarSet) {
    for ev in events.iter().rev() {
        match ev {
            Event::Read { var, .. } => state.insert(*var),
            Event::Store { var, .. } | Event::Decl { var, .. } => state.remove(*var),
        }
    }
}
