//! Syntactic detection of relational operations that provably do
//! nothing: identity casts, renames of an attribute to itself, set
//! operations against the `0B`/`1B` constants, and chains of projection
//! casts that could be a single cast.

use crate::ast::SetOp;
use crate::check::{TCond, TExpr, TExprKind, TRule, TStmt, TypedProgram};
use crate::diag::{Diagnostic, Severity};

/// Runs the redundant-op pass over one rule, appending diagnostics.
pub fn redundant_ops(prog: &TypedProgram, rule: &TRule, out: &mut Vec<Diagnostic>) {
    for s in &rule.body {
        stmt(prog, s, out);
    }
}

fn stmt(prog: &TypedProgram, s: &TStmt, out: &mut Vec<Diagnostic>) {
    match s {
        TStmt::Local { init, .. } => {
            if let Some(e) = init {
                expr(prog, e, out);
            }
        }
        TStmt::Assign { expr: e, .. } => expr(prog, e, out),
        TStmt::DoWhile { body, cond } => {
            for s in body {
                stmt(prog, s, out);
            }
            cond_expr(prog, cond, out);
        }
        TStmt::While { cond, body } => {
            cond_expr(prog, cond, out);
            for s in body {
                stmt(prog, s, out);
            }
        }
        TStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            cond_expr(prog, cond, out);
            for s in then_body.iter().chain(else_body) {
                stmt(prog, s, out);
            }
        }
    }
}

fn cond_expr(prog: &TypedProgram, c: &TCond, out: &mut Vec<Diagnostic>) {
    expr(prog, &c.left, out);
    expr(prog, &c.right, out);
}

fn warn(out: &mut Vec<Diagnostic>, pos: crate::diag::Pos, message: String, suggestion: String) {
    out.push(Diagnostic {
        severity: Severity::Warning,
        lint: Some("redundant-op"),
        pos,
        message,
        suggestion: Some(suggestion),
    });
}

fn expr(prog: &TypedProgram, e: &TExpr, out: &mut Vec<Diagnostic>) {
    match &e.kind {
        TExprKind::Var(_) | TExprKind::Empty | TExprKind::Full | TExprKind::Literal(_) => {}
        TExprKind::Replace {
            operand,
            projects,
            renames,
            copies,
        } => {
            for &(f, t) in renames {
                if f == t {
                    let a = &prog.attributes[f as usize].name;
                    warn(
                        out,
                        e.pos,
                        format!("rename of attribute `{a}` to itself has no effect"),
                        format!("drop `{a}=>{a}` from the cast"),
                    );
                }
            }
            if projects.is_empty()
                && copies.is_empty()
                && renames.iter().all(|&(f, t)| f == t)
            {
                warn(
                    out,
                    e.pos,
                    "replacement cast does not change the schema".to_string(),
                    "remove the cast".to_string(),
                );
            }
            if !projects.is_empty() && renames.is_empty() && copies.is_empty() {
                if let TExprKind::Replace {
                    projects: inner_projects,
                    renames: inner_renames,
                    copies: inner_copies,
                    ..
                } = &operand.kind
                {
                    if !inner_projects.is_empty()
                        && inner_renames.is_empty()
                        && inner_copies.is_empty()
                    {
                        warn(
                            out,
                            e.pos,
                            "consecutive projection casts can be a single cast".to_string(),
                            "merge both projection lists into one cast".to_string(),
                        );
                    }
                }
            }
            expr(prog, operand, out);
        }
        TExprKind::JoinLike { left, right, .. } => {
            expr(prog, left, out);
            expr(prog, right, out);
        }
        TExprKind::SetOp { op, left, right } => {
            match (op, &left.kind, &right.kind) {
                (SetOp::Union, TExprKind::Empty, _) | (SetOp::Union, _, TExprKind::Empty) => {
                    warn(
                        out,
                        e.pos,
                        "union with `0B` has no effect".to_string(),
                        "use the other operand directly".to_string(),
                    );
                }
                (SetOp::Union, _, TExprKind::Full) | (SetOp::Union, TExprKind::Full, _) => {
                    warn(
                        out,
                        e.pos,
                        "union with `1B` is always `1B`".to_string(),
                        "replace the whole expression with `1B`".to_string(),
                    );
                }
                (SetOp::Intersect, TExprKind::Full, _)
                | (SetOp::Intersect, _, TExprKind::Full) => {
                    warn(
                        out,
                        e.pos,
                        "intersection with `1B` has no effect".to_string(),
                        "use the other operand directly".to_string(),
                    );
                }
                (SetOp::Intersect, TExprKind::Empty, _)
                | (SetOp::Intersect, _, TExprKind::Empty) => {
                    warn(
                        out,
                        e.pos,
                        "intersection with `0B` is always `0B`".to_string(),
                        "replace the whole expression with `0B`".to_string(),
                    );
                }
                (SetOp::Minus, _, TExprKind::Empty) => {
                    warn(
                        out,
                        e.pos,
                        "subtracting `0B` has no effect".to_string(),
                        "use the left operand directly".to_string(),
                    );
                }
                (SetOp::Minus, TExprKind::Empty, _) => {
                    warn(
                        out,
                        e.pos,
                        "subtracting from `0B` is always `0B`".to_string(),
                        "replace the whole expression with `0B`".to_string(),
                    );
                }
                (SetOp::Minus, _, TExprKind::Full) => {
                    warn(
                        out,
                        e.pos,
                        "subtracting `1B` is always `0B`".to_string(),
                        "replace the whole expression with `0B`".to_string(),
                    );
                }
                _ => {}
            }
            expr(prog, left, out);
            expr(prog, right, out);
        }
    }
}
