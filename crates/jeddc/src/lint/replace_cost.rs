//! The replace-cost advisory: static accounting of the `replace`
//! operations a physical-domain assignment forces (§3.3.2's broken
//! assignment edges), plus a what-if search over declaration ascriptions
//! that would remove some of them.
//!
//! Every forced replace site gets a [`Severity::Note`]. On top of that,
//! the pass re-pins one declared `(variable, attribute)` ascription at a
//! time to the physical domain on the far side of one of its broken
//! edges, re-solves the constraint problem, and recounts; if some re-pin
//! strictly lowers the forced-site count, the best one is reported as a
//! [`Severity::Warning`] with the concrete ascription change.

use crate::assignc::Assignment;
use crate::check::{AttrIdx, TypedProgram, VarIdx};
use crate::diag::{Diagnostic, Severity};
use jedd_core::assign::{AssignmentProblem, OccId, PhysId, Solution};
use std::collections::HashMap;

/// Destination label of comparison occurrences; compare sites are
/// excluded from the static count because the executor's `equals` never
/// materialises a replace for them.
const COMPARE_LABEL: &str = "Compare_expression";

/// The number of forced replace *sites* (grouped broken assignment
/// edges) in an assignment, excluding comparison destinations. This is
/// the number the executor's `replaces` counter converges to when every
/// statement runs.
pub fn static_replace_sites(assignment: &Assignment) -> usize {
    assignment
        .forced
        .iter()
        .filter(|f| f.to_label != COMPARE_LABEL)
        .count()
}

/// Counts forced sites for an arbitrary (problem, solution) pair with the
/// same grouping as [`static_replace_sites`].
fn grouped_sites(problem: &AssignmentProblem, sol: &Solution) -> usize {
    let mut groups: Vec<(jedd_core::assign::ExprId, jedd_core::assign::ExprId)> = Vec::new();
    for (a, b) in problem.broken_assignment_edges(sol) {
        let key = (problem.occ_expr(a), problem.occ_expr(b));
        if problem.expr_label(key.1) == COMPARE_LABEL {
            continue;
        }
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    groups.len()
}

/// Runs the replace-cost pass, appending diagnostics.
pub fn replace_cost(prog: &TypedProgram, assignment: &Assignment, out: &mut Vec<Diagnostic>) {
    // Per-site notes.
    for f in &assignment.forced {
        if f.to_label == COMPARE_LABEL {
            continue;
        }
        let moves = f
            .moves
            .iter()
            .map(|(a, from, to)| format!("`{a}` moves {from} -> {to}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push(Diagnostic {
            severity: Severity::Note,
            lint: Some("replace-cost"),
            pos: f.to_pos,
            message: format!(
                "physical-domain assignment forces a replace here: {moves} \
                 (value flows from {} at {})",
                f.from_label, f.from_pos
            ),
            suggestion: None,
        });
    }

    let (Some(problem), Some(sol)) = (&assignment.problem, &assignment.solution) else {
        return;
    };
    let base = grouped_sites(problem, sol);
    if base == 0 {
        return;
    }

    // Candidate re-pins: for every broken edge touching a declaration
    // occurrence, try moving that declaration to the physical domain on
    // the far side of the edge.
    let occ_to_var: HashMap<OccId, (VarIdx, AttrIdx)> = assignment
        .var_occ
        .iter()
        .map(|(&k, &o)| (o, k))
        .collect();
    let mut candidates: Vec<(VarIdx, AttrIdx, OccId, PhysId)> = Vec::new();
    for (a, b) in problem.broken_assignment_edges(sol) {
        for (this, other) in [(a, b), (b, a)] {
            if let Some(&(v, at)) = occ_to_var.get(&this) {
                let alt = sol.physdom_of(other);
                let cand = (v, at, this, alt);
                if !candidates.contains(&cand) {
                    candidates.push(cand);
                }
            }
        }
    }
    candidates.sort();
    candidates.truncate(8);

    let mut best: Option<(VarIdx, AttrIdx, PhysId, usize)> = None;
    for &(v, at, occ, alt) in &candidates {
        if problem.specified_physdom(occ) == Some(alt) {
            continue;
        }
        let mut alt_problem = problem.clone();
        alt_problem.respecify(occ, alt);
        let Ok(alt_sol) = alt_problem.solve() else {
            continue;
        };
        let count = grouped_sites(&alt_problem, &alt_sol);
        if count < base && best.as_ref().is_none_or(|&(_, _, _, c)| count < c) {
            best = Some((v, at, alt, count));
        }
    }

    if let Some((v, at, alt, count)) = best {
        let var = &prog.vars[v as usize];
        let attr = &prog.attributes[at as usize].name;
        let alt_name = problem.physdom_name(alt);
        let current = assignment
            .var_pd
            .get(&(v, at))
            .map(|&pd| assignment.physdom_names[pd as usize].as_str())
            .unwrap_or("?");
        let removed = base - count;
        out.push(Diagnostic {
            severity: Severity::Warning,
            lint: Some("replace-cost"),
            pos: var.pos,
            message: format!(
                "moving attribute `{attr}` of relation `{}` from {current} to {alt_name} \
                 removes {removed} of {base} forced replace(s)",
                var.name
            ),
            suggestion: Some(format!(
                "declare `{}` with `<{attr}:{alt_name}, ...>`",
                var.name
            )),
        });
    }
}
