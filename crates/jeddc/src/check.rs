//! Semantic analysis: name resolution, schema inference and the static
//! typing rules of the paper's Fig. 6.
//!
//! The checker produces a typed program in which every relational
//! expression carries its inferred schema (sorted attribute indices) and a
//! unique expression id used by the physical-domain-assignment pass.

use crate::ast::{self, AssignOp, Decl, DomainSpec, Expr, LiteralObj, Program, Replacement, Stmt};
use crate::diag::{Allow, CompileError, Pos};

/// Index of a domain in the typed program.
pub type DomainIdx = u32;
/// Index of an attribute in the typed program.
pub type AttrIdx = u32;
/// Index of a physical domain in the typed program.
pub type PdIdx = u32;
/// Index of a relation variable (global or rule-local).
pub type VarIdx = u32;
/// Unique id of a typed relational expression.
pub type TExprId = u32;

/// A resolved schema annotation: the sorted `(attribute, optional
/// physdom)` pairs plus the attribute order as written in the source.
type ResolvedSchema = (Vec<(AttrIdx, Option<PdIdx>)>, Vec<AttrIdx>);

/// A typed domain declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainDef {
    /// Domain name.
    pub name: String,
    /// Size specification.
    pub spec: DomainSpec,
}

/// A typed attribute declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Its domain.
    pub domain: DomainIdx,
}

/// A typed physical-domain declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhysdomDef {
    /// Physical domain name.
    pub name: String,
    /// Interleaving group: physical domains declared in one
    /// `physdom interleaved ...;` share a group id.
    pub group: Option<u32>,
}

/// A relation variable: a global or a rule-local.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDef {
    /// Variable name.
    pub name: String,
    /// Declared schema with optional specified physical domains, sorted by
    /// attribute index.
    pub schema: Vec<(AttrIdx, Option<PdIdx>)>,
    /// The attributes in the order they were written in the declaration;
    /// external tuple I/O uses this column order.
    pub written: Vec<AttrIdx>,
    /// True for top-level `relation` declarations.
    pub global: bool,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// A typed relational expression node.
#[derive(Clone, Debug, PartialEq)]
pub struct TExpr {
    /// Unique id (index into [`TypedProgram::num_exprs`]).
    pub id: TExprId,
    /// The expression kind with typed children.
    pub kind: TExprKind,
    /// The inferred schema: sorted attribute indices.
    pub schema: Vec<AttrIdx>,
    /// Source position.
    pub pos: Pos,
    /// Display label for diagnostics (`Join_expression`, ...).
    pub label: &'static str,
}

/// Typed expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TExprKind {
    /// A variable read.
    Var(VarIdx),
    /// `0B` adapted to the context schema.
    Empty,
    /// `1B` adapted to the context schema.
    Full,
    /// A tuple literal: (object, attribute, specified physdom).
    Literal(Vec<(TLiteralObj, AttrIdx, Option<PdIdx>)>),
    /// A replacement cast, decomposed.
    Replace {
        /// The operand.
        operand: Box<TExpr>,
        /// Attributes projected away.
        projects: Vec<AttrIdx>,
        /// Simultaneous renames `(from, to)`.
        renames: Vec<(AttrIdx, AttrIdx)>,
        /// Copies `(from, to1, to2)`.
        copies: Vec<(AttrIdx, AttrIdx, AttrIdx)>,
    },
    /// Join or compose.
    JoinLike {
        /// Left operand.
        left: Box<TExpr>,
        /// Left compared attributes (in list order).
        left_attrs: Vec<AttrIdx>,
        /// Right operand.
        right: Box<TExpr>,
        /// Right compared attributes (in list order).
        right_attrs: Vec<AttrIdx>,
        /// `true` = join, `false` = compose.
        is_join: bool,
    },
    /// Set operation.
    SetOp {
        /// The operator.
        op: ast::SetOp,
        /// Left operand.
        left: Box<TExpr>,
        /// Right operand.
        right: Box<TExpr>,
    },
}

/// A resolved literal object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TLiteralObj {
    /// Index into an enumerated domain, resolved at compile time.
    Index(u64),
    /// A label to resolve against host-provided element names at run time.
    Label(String),
}

/// A typed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum TStmt {
    /// Local declaration with optional initialiser.
    Local {
        /// The declared variable.
        var: VarIdx,
        /// Optional initialiser.
        init: Option<TExpr>,
        /// Source position.
        pos: Pos,
    },
    /// Assignment (`=`, `|=`, `&=`, `-=`).
    Assign {
        /// Target variable.
        var: VarIdx,
        /// Operator.
        op: AssignOp,
        /// Right-hand side.
        expr: TExpr,
        /// Source position.
        pos: Pos,
    },
    /// `do { .. } while (cond);`
    DoWhile {
        /// Body statements.
        body: Vec<TStmt>,
        /// Condition.
        cond: TCond,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: TCond,
        /// Body statements.
        body: Vec<TStmt>,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: TCond,
        /// Then branch.
        then_body: Vec<TStmt>,
        /// Else branch.
        else_body: Vec<TStmt>,
    },
}

/// A typed comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct TCond {
    /// Left operand.
    pub left: TExpr,
    /// Right operand.
    pub right: TExpr,
    /// `true` for `==`.
    pub eq: bool,
}

/// A typed rule.
#[derive(Clone, Debug, PartialEq)]
pub struct TRule {
    /// Rule name.
    pub name: String,
    /// Body.
    pub body: Vec<TStmt>,
}

/// The output of semantic analysis.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TypedProgram {
    /// Domains in declaration order.
    pub domains: Vec<DomainDef>,
    /// Attributes in declaration order.
    pub attributes: Vec<AttrDef>,
    /// Physical domains in declaration order.
    pub physdoms: Vec<PhysdomDef>,
    /// All variables: globals first, then rule locals.
    pub vars: Vec<VarDef>,
    /// Typed rules.
    pub rules: Vec<TRule>,
    /// Number of expression nodes allocated (ids are `0..num_exprs`).
    pub num_exprs: u32,
    /// `// jedd:allow(<lint>)` annotations, carried through from the
    /// lexer for the lint driver.
    pub allows: Vec<Allow>,
}

impl TypedProgram {
    /// Looks up a domain index by name.
    pub fn domain_idx(&self, name: &str) -> Option<DomainIdx> {
        self.domains
            .iter()
            .position(|d| d.name == name)
            .map(|i| i as u32)
    }

    /// Looks up an attribute index by name.
    pub fn attr_idx(&self, name: &str) -> Option<AttrIdx> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(|i| i as u32)
    }

    /// Looks up a physical-domain index by name.
    pub fn physdom_idx(&self, name: &str) -> Option<PdIdx> {
        self.physdoms
            .iter()
            .position(|p| p.name == name)
            .map(|i| i as u32)
    }

    /// Looks up a global variable index by name.
    pub fn global_idx(&self, name: &str) -> Option<VarIdx> {
        self.vars
            .iter()
            .position(|v| v.global && v.name == name)
            .map(|i| i as u32)
    }

    /// Looks up a rule by name.
    pub fn rule(&self, name: &str) -> Option<&TRule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// The attribute names of a schema, for error messages.
    pub fn schema_names(&self, schema: &[AttrIdx]) -> Vec<String> {
        schema
            .iter()
            .map(|&a| self.attributes[a as usize].name.clone())
            .collect()
    }
}

struct Checker {
    prog: TypedProgram,
    next_expr: u32,
    /// Accumulated errors, in source order. The checker recovers after
    /// each one instead of aborting, so one run reports every
    /// independent error.
    errors: Vec<CompileError>,
}

/// Runs semantic analysis over a parsed program.
///
/// # Errors
///
/// Returns the first name-resolution or typing (Fig. 6) error — the same
/// error, byte for byte, that the single-shot seed checker produced. Use
/// [`check_all`] to get every independent error in one run.
pub fn check(program: &Program) -> Result<TypedProgram, CompileError> {
    check_all(program).map_err(|mut errs| errs.remove(0))
}

/// Runs semantic analysis, accumulating all independent errors.
///
/// The checker recovers after each error: a declaration with a bad
/// schema is still entered into scope (with an empty schema) so uses of
/// it don't cascade into `unknown relation` storms, and a statement that
/// fails to type is dropped while the rest of its block is still
/// checked. Errors come back in source order; the first one is exactly
/// what [`check`] returns.
///
/// # Errors
///
/// Returns every name-resolution or typing error found, in source order
/// (the list is never empty on `Err`).
pub fn check_all(program: &Program) -> Result<TypedProgram, Vec<CompileError>> {
    let mut c = Checker {
        prog: TypedProgram::default(),
        next_expr: 0,
        errors: Vec::new(),
    };
    c.collect_decls(program);
    c.check_rules(program);
    c.prog.num_exprs = c.next_expr;
    c.prog.allows = program.allows.clone();
    if c.errors.is_empty() {
        Ok(c.prog)
    } else {
        Err(c.errors)
    }
}

impl Checker {
    fn err(&self, pos: Pos, message: String) -> CompileError {
        CompileError { pos, message }
    }

    fn report(&mut self, pos: Pos, message: String) {
        self.errors.push(CompileError { pos, message });
    }

    fn fresh_id(&mut self) -> TExprId {
        let id = self.next_expr;
        self.next_expr += 1;
        id
    }

    fn collect_decls(&mut self, program: &Program) {
        let mut group_counter = 0u32;
        for d in &program.decls {
            match d {
                Decl::Domain { name, spec, pos } => {
                    if self.prog.domain_idx(name).is_some() {
                        self.report(*pos, format!("duplicate domain `{name}`"));
                        continue;
                    }
                    self.prog.domains.push(DomainDef {
                        name: name.clone(),
                        spec: spec.clone(),
                    });
                }
                Decl::Attribute { name, domain, pos } => {
                    if self.prog.attr_idx(name).is_some() {
                        self.report(*pos, format!("duplicate attribute `{name}`"));
                        continue;
                    }
                    let Some(didx) = self.prog.domain_idx(domain) else {
                        self.report(*pos, format!("unknown domain `{domain}`"));
                        continue;
                    };
                    self.prog.attributes.push(AttrDef {
                        name: name.clone(),
                        domain: didx,
                    });
                }
                Decl::Physdom {
                    names,
                    interleaved,
                    pos,
                } => {
                    let group = if *interleaved {
                        group_counter += 1;
                        Some(group_counter)
                    } else {
                        None
                    };
                    for n in names {
                        if self.prog.physdom_idx(n).is_some() {
                            self.report(*pos, format!("duplicate physical domain `{n}`"));
                            continue;
                        }
                        self.prog.physdoms.push(PhysdomDef {
                            name: n.clone(),
                            group,
                        });
                    }
                }
                Decl::Relation { name, schema, pos } => {
                    if self.prog.global_idx(name).is_some() {
                        self.report(*pos, format!("duplicate relation `{name}`"));
                        continue;
                    }
                    // On a bad schema, declare the relation anyway (with
                    // an empty schema) so later uses don't cascade into
                    // `unknown relation` errors.
                    let (s, written) = match self.check_schema_ast(schema) {
                        Ok(x) => x,
                        Err(e) => {
                            self.errors.push(e);
                            (Vec::new(), Vec::new())
                        }
                    };
                    self.prog.vars.push(VarDef {
                        name: name.clone(),
                        schema: s,
                        written,
                        global: true,
                        pos: *pos,
                    });
                }
                Decl::Rule { .. } => {}
            }
        }
    }

    /// Resolves a schema annotation to sorted attribute/physdom indices,
    /// checking the "no relation may have two instances of one attribute"
    /// rule.
    /// Returns `(sorted schema, written attribute order)`.
    fn check_schema_ast(
        &self,
        schema: &ast::SchemaAst,
    ) -> Result<ResolvedSchema, CompileError> {
        let mut out: Vec<(AttrIdx, Option<PdIdx>)> = Vec::new();
        for (attr, pd) in &schema.attrs {
            let Some(aidx) = self.prog.attr_idx(attr) else {
                return Err(self.err(schema.pos, format!("unknown attribute `{attr}`")));
            };
            if out.iter().any(|&(a, _)| a == aidx) {
                return Err(self.err(
                    schema.pos,
                    format!("attribute `{attr}` appears twice in relation type"),
                ));
            }
            let pidx = match pd {
                Some(p) => Some(self.prog.physdom_idx(p).ok_or_else(|| {
                    self.err(schema.pos, format!("unknown physical domain `{p}`"))
                })?),
                None => None,
            };
            out.push((aidx, pidx));
        }
        let written: Vec<AttrIdx> = out.iter().map(|&(a, _)| a).collect();
        out.sort_by_key(|&(a, _)| a);
        Ok((out, written))
    }

    fn check_rules(&mut self, program: &Program) {
        for d in &program.decls {
            if let Decl::Rule { name, body, pos } = d {
                if self.prog.rule(name).is_some() {
                    self.report(*pos, format!("duplicate rule `{name}`"));
                    continue;
                }
                // Locals: name -> VarIdx, in scope from declaration on.
                let mut locals: Vec<(String, VarIdx)> = Vec::new();
                let tbody = self.check_block(body, &mut locals);
                self.prog.rules.push(TRule {
                    name: name.clone(),
                    body: tbody,
                });
            }
        }
    }

    fn lookup_var(&self, name: &str, locals: &[(String, VarIdx)]) -> Option<VarIdx> {
        // Innermost local shadows.
        for (n, v) in locals.iter().rev() {
            if n == name {
                return Some(*v);
            }
        }
        self.prog.global_idx(name)
    }

    /// Checks a statement block, recording each failing statement's
    /// errors and dropping only that statement — the rest of the block is
    /// still checked, so independent errors surface in one run.
    fn check_block(&mut self, body: &[Stmt], locals: &mut Vec<(String, VarIdx)>) -> Vec<TStmt> {
        let mut out = Vec::new();
        for s in body {
            if let Some(ts) = self.check_stmt(s, locals) {
                out.push(ts);
            }
        }
        out
    }

    /// Checks one statement, pushing any errors onto the accumulator (in
    /// source order) and returning `None` when the statement cannot be
    /// typed.
    fn check_stmt(&mut self, s: &Stmt, locals: &mut Vec<(String, VarIdx)>) -> Option<TStmt> {
        match s {
            Stmt::Local {
                name,
                schema,
                init,
                pos,
            } => {
                // Recover from a bad schema or initialiser: the local is
                // declared regardless, so later statements that use it
                // don't cascade into `unknown relation` errors.
                let (sch, written) = match self.check_schema_ast(schema) {
                    Ok(x) => x,
                    Err(e) => {
                        self.errors.push(e);
                        (Vec::new(), Vec::new())
                    }
                };
                let attrs: Vec<AttrIdx> = sch.iter().map(|&(a, _)| a).collect();
                let var = self.prog.vars.len() as VarIdx;
                self.prog.vars.push(VarDef {
                    name: name.clone(),
                    schema: sch,
                    written,
                    global: false,
                    pos: *pos,
                });
                let tinit = match init {
                    Some(e) => match self.check_expr(e, Some(&attrs), locals) {
                        Ok(te) => {
                            if let Err(e2) =
                                self.require_same_schema(&attrs, &te.schema, te.pos, "initialisation")
                            {
                                self.errors.push(e2);
                            }
                            Some(te)
                        }
                        Err(e) => {
                            self.errors.push(e);
                            None
                        }
                    },
                    None => None,
                };
                locals.push((name.clone(), var));
                Some(TStmt::Local {
                    var,
                    init: tinit,
                    pos: *pos,
                })
            }
            Stmt::Assign {
                name,
                op,
                expr,
                pos,
            } => {
                let Some(var) = self.lookup_var(name, locals) else {
                    self.report(*pos, format!("unknown relation `{name}`"));
                    return None;
                };
                let attrs: Vec<AttrIdx> = self.prog.vars[var as usize]
                    .schema
                    .iter()
                    .map(|&(a, _)| a)
                    .collect();
                let te = match self.check_expr(expr, Some(&attrs), locals) {
                    Ok(te) => te,
                    Err(e) => {
                        self.errors.push(e);
                        return None;
                    }
                };
                if let Err(e) = self.require_same_schema(&attrs, &te.schema, te.pos, "assignment") {
                    self.errors.push(e);
                    return None;
                }
                Some(TStmt::Assign {
                    var,
                    op: *op,
                    expr: te,
                    pos: *pos,
                })
            }
            Stmt::DoWhile { body, cond, pos } => {
                let scope = locals.len();
                let tbody = self.check_block(body, locals);
                let tcond = self.check_cond(cond, locals);
                locals.truncate(scope);
                let _ = pos;
                let tcond = match tcond {
                    Ok(c) => c,
                    Err(e) => {
                        self.errors.push(e);
                        return None;
                    }
                };
                Some(TStmt::DoWhile {
                    body: tbody,
                    cond: tcond,
                })
            }
            Stmt::While { cond, body, pos } => {
                let tcond = self.check_cond(cond, locals);
                if let Err(e) = &tcond {
                    self.errors.push(e.clone());
                }
                let scope = locals.len();
                let tbody = self.check_block(body, locals);
                locals.truncate(scope);
                let _ = pos;
                Some(TStmt::While {
                    cond: tcond.ok()?,
                    body: tbody,
                })
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                pos,
            } => {
                let tcond = self.check_cond(cond, locals);
                if let Err(e) = &tcond {
                    self.errors.push(e.clone());
                }
                let scope = locals.len();
                let tthen = self.check_block(then_body, locals);
                locals.truncate(scope);
                let telse = self.check_block(else_body, locals);
                locals.truncate(scope);
                let _ = pos;
                Some(TStmt::If {
                    cond: tcond.ok()?,
                    then_body: tthen,
                    else_body: telse,
                })
            }
        }
    }

    fn check_cond(
        &mut self,
        cond: &ast::Cond,
        locals: &mut Vec<(String, VarIdx)>,
    ) -> Result<TCond, CompileError> {
        // Infer the non-constant side first so 0B/1B adapt ([Compare]).
        let (tleft, tright) = if matches!(cond.left, Expr::Empty { .. } | Expr::Full { .. }) {
            let tr = self.check_expr(&cond.right, None, locals)?;
            let tl = self.check_expr(&cond.left, Some(&tr.schema.clone()), locals)?;
            (tl, tr)
        } else {
            let tl = self.check_expr(&cond.left, None, locals)?;
            let tr = self.check_expr(&cond.right, Some(&tl.schema.clone()), locals)?;
            (tl, tr)
        };
        self.require_same_schema(&tleft.schema, &tright.schema, cond.pos, "comparison")?;
        Ok(TCond {
            left: tleft,
            right: tright,
            eq: cond.eq,
        })
    }

    fn require_same_schema(
        &self,
        a: &[AttrIdx],
        b: &[AttrIdx],
        pos: Pos,
        what: &str,
    ) -> Result<(), CompileError> {
        if a != b {
            return Err(self.err(
                pos,
                format!(
                    "schema mismatch in {what}: <{}> vs <{}>",
                    self.prog.schema_names(a).join(", "),
                    self.prog.schema_names(b).join(", ")
                ),
            ));
        }
        Ok(())
    }

    fn check_expr(
        &mut self,
        e: &Expr,
        expected: Option<&[AttrIdx]>,
        locals: &mut Vec<(String, VarIdx)>,
    ) -> Result<TExpr, CompileError> {
        let pos = e.pos();
        let label = e.label();
        match e {
            Expr::Var { name, .. } => {
                let Some(var) = self.lookup_var(name, locals) else {
                    return Err(self.err(pos, format!("unknown relation `{name}`")));
                };
                let schema: Vec<AttrIdx> = self.prog.vars[var as usize]
                    .schema
                    .iter()
                    .map(|&(a, _)| a)
                    .collect();
                Ok(TExpr {
                    id: self.fresh_id(),
                    kind: TExprKind::Var(var),
                    schema,
                    pos,
                    label,
                })
            }
            Expr::Empty { .. } | Expr::Full { .. } => {
                let Some(schema) = expected else {
                    return Err(self.err(
                        pos,
                        "cannot infer the schema of 0B/1B here; bind it to a declared relation"
                            .to_string(),
                    ));
                };
                let kind = if matches!(e, Expr::Empty { .. }) {
                    TExprKind::Empty
                } else {
                    TExprKind::Full
                };
                Ok(TExpr {
                    id: self.fresh_id(),
                    kind,
                    schema: schema.to_vec(),
                    pos,
                    label,
                })
            }
            Expr::Literal { fields, .. } => {
                let mut tfields = Vec::new();
                let mut schema = Vec::new();
                for (obj, attr, pd) in fields {
                    let Some(aidx) = self.prog.attr_idx(attr) else {
                        return Err(self.err(pos, format!("unknown attribute `{attr}`")));
                    };
                    if schema.contains(&aidx) {
                        return Err(self.err(
                            pos,
                            format!("attribute `{attr}` appears twice in literal"),
                        ));
                    }
                    schema.push(aidx);
                    let pidx = match pd {
                        Some(p) => Some(self.prog.physdom_idx(p).ok_or_else(|| {
                            self.err(pos, format!("unknown physical domain `{p}`"))
                        })?),
                        None => None,
                    };
                    let tobj = match obj {
                        LiteralObj::Index(n) => TLiteralObj::Index(*n),
                        LiteralObj::Label(l) => {
                            // Resolve against enumerated domains now.
                            let dom =
                                &self.prog.domains[self.prog.attributes[aidx as usize].domain as usize];
                            match &dom.spec {
                                DomainSpec::Enumerated(els) => {
                                    match els.iter().position(|x| x == l) {
                                        Some(i) => TLiteralObj::Index(i as u64),
                                        None => {
                                            return Err(self.err(
                                                pos,
                                                format!(
                                                    "`{l}` is not an element of domain `{}`",
                                                    dom.name
                                                ),
                                            ))
                                        }
                                    }
                                }
                                _ => TLiteralObj::Label(l.clone()),
                            }
                        }
                    };
                    tfields.push((tobj, aidx, pidx));
                }
                schema.sort_unstable();
                Ok(TExpr {
                    id: self.fresh_id(),
                    kind: TExprKind::Literal(tfields),
                    schema,
                    pos,
                    label,
                })
            }
            Expr::Replace {
                replacements,
                operand,
                ..
            } => {
                let top = self.check_expr(operand, None, locals)?;
                let t = &top.schema;
                let mut projects = Vec::new();
                let mut renames = Vec::new();
                let mut copies = Vec::new();
                let mut sources: Vec<AttrIdx> = Vec::new();
                let lookup = |c: &Checker, n: &str| -> Result<AttrIdx, CompileError> {
                    c.prog
                        .attr_idx(n)
                        .ok_or_else(|| c.err(pos, format!("unknown attribute `{n}`")))
                };
                for r in replacements {
                    let from_name = match r {
                        Replacement::Project(a) | Replacement::Rename(a, _) | Replacement::Copy(a, _, _) => a,
                    };
                    let from = lookup(self, from_name)?;
                    if !t.contains(&from) {
                        // [Project]/[Rename]/[Copy]: a ∈ T.
                        return Err(self.err(
                            pos,
                            format!(
                                "attribute `{from_name}` not in operand schema <{}>",
                                self.prog.schema_names(t).join(", ")
                            ),
                        ));
                    }
                    if sources.contains(&from) {
                        return Err(self.err(
                            pos,
                            format!("attribute `{from_name}` replaced twice"),
                        ));
                    }
                    sources.push(from);
                    match r {
                        Replacement::Project(_) => projects.push(from),
                        Replacement::Rename(_, to) => renames.push((from, lookup(self, to)?)),
                        Replacement::Copy(_, to1, to2) => {
                            copies.push((from, lookup(self, to1)?, lookup(self, to2)?))
                        }
                    }
                }
                // Result schema: (T \ sources) ∪ targets, all disjoint.
                let mut schema: Vec<AttrIdx> =
                    t.iter().copied().filter(|a| !sources.contains(a)).collect();
                let add_target = |c: &Checker, schema: &mut Vec<AttrIdx>, to: AttrIdx, from: AttrIdx| -> Result<(), CompileError> {
                    // Domains must match: the objects do not change.
                    let (fd, td) = (
                        c.prog.attributes[from as usize].domain,
                        c.prog.attributes[to as usize].domain,
                    );
                    if fd != td {
                        return Err(c.err(
                            pos,
                            format!(
                                "cannot map attribute `{}` to `{}`: different domains",
                                c.prog.attributes[from as usize].name,
                                c.prog.attributes[to as usize].name
                            ),
                        ));
                    }
                    if schema.contains(&to) {
                        // [Rename]: b ∉ T; [Copy]: b,c ∉ T\{a}.
                        return Err(c.err(
                            pos,
                            format!(
                                "target attribute `{}` already present",
                                c.prog.attributes[to as usize].name
                            ),
                        ));
                    }
                    schema.push(to);
                    Ok(())
                };
                for &(from, to) in &renames {
                    add_target(self, &mut schema, to, from)?;
                }
                for &(from, to1, to2) in &copies {
                    add_target(self, &mut schema, to1, from)?;
                    add_target(self, &mut schema, to2, from)?;
                }
                schema.sort_unstable();
                Ok(TExpr {
                    id: self.fresh_id(),
                    kind: TExprKind::Replace {
                        operand: Box::new(top),
                        projects,
                        renames,
                        copies,
                    },
                    schema,
                    pos,
                    label,
                })
            }
            Expr::JoinLike {
                left,
                left_attrs,
                right,
                right_attrs,
                is_join,
                ..
            } => {
                let tl = self.check_expr(left, None, locals)?;
                let tr = self.check_expr(right, None, locals)?;
                if left_attrs.len() != right_attrs.len() {
                    return Err(self.err(
                        pos,
                        format!(
                            "compared attribute lists have different lengths ({} vs {})",
                            left_attrs.len(),
                            right_attrs.len()
                        ),
                    ));
                }
                let resolve_list = |c: &Checker, names: &[String], schema: &[AttrIdx]| -> Result<Vec<AttrIdx>, CompileError> {
                    let mut out = Vec::new();
                    for n in names {
                        let Some(a) = c.prog.attr_idx(n) else {
                            return Err(c.err(pos, format!("unknown attribute `{n}`")));
                        };
                        if !schema.contains(&a) {
                            return Err(c.err(
                                pos,
                                format!(
                                    "attribute `{n}` not in operand schema <{}>",
                                    c.prog.schema_names(schema).join(", ")
                                ),
                            ));
                        }
                        if out.contains(&a) {
                            return Err(c.err(pos, format!("attribute `{n}` compared twice")));
                        }
                        out.push(a);
                    }
                    Ok(out)
                };
                let la = resolve_list(self, left_attrs, &tl.schema)?;
                let ra = resolve_list(self, right_attrs, &tr.schema)?;
                // Domains of compared pairs must agree.
                for (&a, &b) in la.iter().zip(ra.iter()) {
                    let (da, db) = (
                        self.prog.attributes[a as usize].domain,
                        self.prog.attributes[b as usize].domain,
                    );
                    if da != db {
                        return Err(self.err(
                            pos,
                            format!(
                                "compared attributes `{}` and `{}` have different domains",
                                self.prog.attributes[a as usize].name,
                                self.prog.attributes[b as usize].name
                            ),
                        ));
                    }
                }
                // [Join]: T ∩ U' = ∅; [Compose]: T' ∩ U' = ∅.
                let t_kept: Vec<AttrIdx> = if *is_join {
                    tl.schema.clone()
                } else {
                    tl.schema
                        .iter()
                        .copied()
                        .filter(|a| !la.contains(a))
                        .collect()
                };
                let u_kept: Vec<AttrIdx> = tr
                    .schema
                    .iter()
                    .copied()
                    .filter(|a| !ra.contains(a))
                    .collect();
                let shared: Vec<AttrIdx> = t_kept
                    .iter()
                    .copied()
                    .filter(|a| u_kept.contains(a))
                    .collect();
                if !shared.is_empty() {
                    return Err(self.err(
                        pos,
                        format!(
                            "operand schemas share attributes: {}",
                            self.prog.schema_names(&shared).join(", ")
                        ),
                    ));
                }
                let mut schema: Vec<AttrIdx> =
                    t_kept.iter().chain(u_kept.iter()).copied().collect();
                schema.sort_unstable();
                Ok(TExpr {
                    id: self.fresh_id(),
                    kind: TExprKind::JoinLike {
                        left: Box::new(tl),
                        left_attrs: la,
                        right: Box::new(tr),
                        right_attrs: ra,
                        is_join: *is_join,
                    },
                    schema,
                    pos,
                    label,
                })
            }
            Expr::SetOp {
                op, left, right, ..
            } => {
                // Constants adapt to the other operand ([SetOp]).
                let (tl, tr) = if matches!(**left, Expr::Empty { .. } | Expr::Full { .. }) {
                    let tr = self.check_expr(right, expected, locals)?;
                    let tl = self.check_expr(left, Some(&tr.schema.clone()), locals)?;
                    (tl, tr)
                } else {
                    let tl = self.check_expr(left, expected, locals)?;
                    let tr = self.check_expr(right, Some(&tl.schema.clone()), locals)?;
                    (tl, tr)
                };
                self.require_same_schema(&tl.schema, &tr.schema, pos, "set operation")?;
                let schema = tl.schema.clone();
                Ok(TExpr {
                    id: self.fresh_id(),
                    kind: TExprKind::SetOp {
                        op: *op,
                        left: Box::new(tl),
                        right: Box::new(tr),
                    },
                    schema,
                    pos,
                    label,
                })
            }
        }
    }
}
