//! Source positions and compile-time diagnostics.

use std::fmt;

/// A 1-based line/column source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.line, self.col)
    }
}

/// A compile-time error with its source position.
///
/// Covers lexical, syntactic and semantic (Fig. 6 typing) errors; the
/// physical-domain-assignment errors of §3.3.3 are produced separately as
/// [`jedd_core::assign::AssignError`] and wrapped by the driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Any error the jeddc driver can produce.
#[derive(Clone, Debug, PartialEq)]
pub enum JeddcError {
    /// Lexical, syntactic or typing error.
    Compile(CompileError),
    /// Physical-domain-assignment failure (paper §3.3.3).
    Assign(jedd_core::assign::AssignError),
}

impl fmt::Display for JeddcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JeddcError::Compile(e) => write!(f, "{e}"),
            JeddcError::Assign(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JeddcError {}

impl From<CompileError> for JeddcError {
    fn from(e: CompileError) -> JeddcError {
        JeddcError::Compile(e)
    }
}

impl From<jedd_core::assign::AssignError> for JeddcError {
    fn from(e: jedd_core::assign::AssignError) -> JeddcError {
        JeddcError::Assign(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = CompileError {
            pos: Pos { line: 4, col: 25 },
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "4,25: boom");
    }
}
