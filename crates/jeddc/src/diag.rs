//! Source positions and compile-time diagnostics.
//!
//! Two layers live here. [`CompileError`] is the single-shot error the
//! seed pipeline produced; its `Display` strings are frozen (tests match
//! them byte-for-byte). On top of it, [`Diagnostic`] is the structured
//! form `jeddlint` and the multi-error checker emit: a severity, an
//! optional lint name, a position, and an optional suggestion, renderable
//! as text or JSON.

use std::fmt;

/// A 1-based line/column source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.line, self.col)
    }
}

/// Maps char offsets to line/column positions via a table of line-start
/// offsets.
///
/// The lexer used to thread mutable `line`/`col` counters through every
/// arm of its dispatch loop, and arms that forgot to update them (comment
/// skipping, multi-char tokens inside `{ ... }` tuple literals spanning a
/// newline) produced positions on the wrong line. Building the table up
/// front makes positions a pure function of the offset.
#[derive(Clone, Debug, Default)]
pub struct LineMap {
    /// Char offset of the first character of each line, ascending;
    /// `starts[0] == 0` always.
    starts: Vec<usize>,
}

impl LineMap {
    /// Builds the line table for a source text. Offsets are in `char`s,
    /// matching how the lexer indexes its input.
    pub fn new(src: &str) -> LineMap {
        let mut starts = vec![0usize];
        for (i, c) in src.chars().enumerate() {
            if c == '\n' {
                starts.push(i + 1);
            }
        }
        LineMap { starts }
    }

    /// The 1-based position of the char at `offset`. Offsets past the end
    /// of the text land on the last line.
    pub fn pos_at(&self, offset: usize) -> Pos {
        let line = self.starts.partition_point(|&s| s <= offset);
        Pos {
            line: line as u32,
            col: (offset - self.starts[line - 1] + 1) as u32,
        }
    }
}

/// A `// jedd:allow(<lint>, ...)` annotation carried out of the lexer.
///
/// An allow suppresses diagnostics of the named lint anchored on the
/// annotation's own line (trailing comment) or the line directly below it
/// (standalone comment above the statement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the annotation comment starts on.
    pub line: u32,
    /// The lint name inside the parentheses.
    pub lint: String,
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Purely informational advice (e.g. per-site replace-cost notes).
    Note,
    /// Suspicious but not fatal; fails the build under `--deny warnings`.
    Warning,
    /// A hard error: the program is rejected.
    Error,
}

impl Severity {
    /// The lowercase display name (`"note"` / `"warning"` / `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured diagnostic: what `jeddlint` passes and the multi-error
/// checker report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious it is.
    pub severity: Severity,
    /// The lint that produced it, `None` for plain compile errors.
    pub lint: Option<&'static str>,
    /// Anchor position in the source.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
    /// A concrete rewrite or ascription change that addresses it, if one
    /// is known.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Wraps a [`CompileError`] as an error-severity diagnostic, keeping
    /// the message text untouched.
    pub fn from_compile_error(e: &CompileError) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            lint: None,
            pos: e.pos,
            message: e.message.clone(),
            suggestion: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lint {
            Some(lint) => write!(
                f,
                "{}[{}]: {}: {}",
                self.severity, lint, self.pos, self.message
            )?,
            None => write!(f, "{}: {}: {}", self.severity, self.pos, self.message)?,
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// Renders diagnostics as one text block, one diagnostic per line (plus
/// indented `help:` lines for suggestions).
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders diagnostics as a JSON array of objects with `severity`,
/// `lint` (optional), `line`, `col`, `message` and `suggestion`
/// (optional) fields. Hand-rolled — the workspace carries no serde.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"severity\":\"{}\"", d.severity));
        if let Some(lint) = d.lint {
            out.push_str(&format!(",\"lint\":\"{}\"", json_escape(lint)));
        }
        out.push_str(&format!(",\"line\":{},\"col\":{}", d.pos.line, d.pos.col));
        out.push_str(&format!(",\"message\":\"{}\"", json_escape(&d.message)));
        if let Some(s) = &d.suggestion {
            out.push_str(&format!(",\"suggestion\":\"{}\"", json_escape(s)));
        }
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A compile-time error with its source position.
///
/// Covers lexical, syntactic and semantic (Fig. 6 typing) errors; the
/// physical-domain-assignment errors of §3.3.3 are produced separately as
/// [`jedd_core::assign::AssignError`] and wrapped by the driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Any error the jeddc driver can produce.
#[derive(Clone, Debug, PartialEq)]
pub enum JeddcError {
    /// Lexical, syntactic or typing error.
    Compile(CompileError),
    /// Physical-domain-assignment failure (paper §3.3.3).
    Assign(jedd_core::assign::AssignError),
}

impl fmt::Display for JeddcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JeddcError::Compile(e) => write!(f, "{e}"),
            JeddcError::Assign(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JeddcError {}

impl From<CompileError> for JeddcError {
    fn from(e: CompileError) -> JeddcError {
        JeddcError::Compile(e)
    }
}

impl From<jedd_core::assign::AssignError> for JeddcError {
    fn from(e: jedd_core::assign::AssignError) -> JeddcError {
        JeddcError::Assign(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = CompileError {
            pos: Pos { line: 4, col: 25 },
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "4,25: boom");
    }

    #[test]
    fn line_map_positions() {
        let m = LineMap::new("ab\ncd\n\nf");
        assert_eq!(m.pos_at(0), Pos { line: 1, col: 1 });
        assert_eq!(m.pos_at(1), Pos { line: 1, col: 2 });
        assert_eq!(m.pos_at(3), Pos { line: 2, col: 1 });
        assert_eq!(m.pos_at(6), Pos { line: 3, col: 1 });
        assert_eq!(m.pos_at(7), Pos { line: 4, col: 1 });
        // One past the end still lands on the last line.
        assert_eq!(m.pos_at(8), Pos { line: 4, col: 2 });
    }

    #[test]
    fn diagnostic_text_rendering() {
        let d = Diagnostic {
            severity: Severity::Warning,
            lint: Some("dead-store"),
            pos: Pos { line: 4, col: 9 },
            message: "value stored to `x` is never read".into(),
            suggestion: Some("remove the store".into()),
        };
        assert_eq!(
            d.to_string(),
            "warning[dead-store]: 4,9: value stored to `x` is never read\n  help: remove the store"
        );
        let e = Diagnostic::from_compile_error(&CompileError {
            pos: Pos { line: 2, col: 1 },
            message: "unknown relation `q`".into(),
        });
        assert_eq!(e.to_string(), "error: 2,1: unknown relation `q`");
    }

    #[test]
    fn json_rendering_escapes_and_omits() {
        let diags = vec![Diagnostic {
            severity: Severity::Note,
            lint: Some("replace-cost"),
            pos: Pos { line: 1, col: 2 },
            message: "a \"quoted\"\nthing".into(),
            suggestion: None,
        }];
        let json = render_json(&diags);
        assert_eq!(
            json,
            "[\n  {\"severity\":\"note\",\"lint\":\"replace-cost\",\"line\":1,\"col\":2,\
             \"message\":\"a \\\"quoted\\\"\\nthing\"}\n]"
        );
        assert_eq!(render_json(&[]), "[]");
    }
}
