//! Executing compiled mini-Jedd programs.
//!
//! Plays the role of the Java code jeddc generates plus the Jedd runtime
//! library: it materialises the program's domains, attributes and physical
//! domains into a [`jedd_core::Universe`] (sizing each physical domain to
//! its largest assigned attribute, §3.2.1), then interprets rules over
//! relations, inserting exactly the replace operations the physical-domain
//! assignment dictates.

use crate::assignc::Assignment;
use crate::check::{
    AttrIdx, PdIdx, TCond, TExpr, TExprKind, TLiteralObj, TStmt, TypedProgram, VarIdx,
};
use crate::diag::JeddcError;
use jedd_core::{AttrId, DomainId, JeddError, PhysDomId, Relation, Universe};
use std::collections::HashMap;
use std::fmt;

use crate::ast::{AssignOp, DomainSpec, SetOp};

/// A fully compiled program: typed AST plus the physical-domain
/// assignment.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The typed program.
    pub typed: TypedProgram,
    /// The attribute → physical-domain assignment of every expression.
    pub assignment: Assignment,
}

/// Compiles mini-Jedd source. All connected components of the constraint
/// graph must carry a programmer-specified physical domain, exactly as in
/// the paper's jeddc.
///
/// # Errors
///
/// Returns lexical/syntactic/typing errors or an assignment failure
/// ([`jedd_core::assign::AssignError`]).
// `JeddcError` embeds `AssignError`, which inlines the full Â§3.3.3
// diagnostic; it is built only on the cold error path.
#[allow(clippy::result_large_err)]
pub fn compile(src: &str) -> Result<CompiledProgram, JeddcError> {
    compile_impl(src, false, "Test.jedd")
}

/// Like [`compile`], with an explicit source-file name used in assignment
/// error messages.
///
/// # Errors
///
/// Same conditions as [`compile`].
#[allow(clippy::result_large_err)]
pub fn compile_named(src: &str, file: &str) -> Result<CompiledProgram, JeddcError> {
    compile_impl(src, false, file)
}

/// Like [`compile`], but automatically pins fresh physical domains where
/// the programmer specified none, mimicking the paper's workflow of adding
/// "just enough" specifications guided by the error messages (§5).
///
/// # Errors
///
/// Same as [`compile`], except `Unreachable` and most `Conflict` failures
/// are repaired automatically.
#[allow(clippy::result_large_err)]
pub fn compile_auto(src: &str) -> Result<CompiledProgram, JeddcError> {
    compile_impl(src, true, "Test.jedd")
}

#[allow(clippy::result_large_err)]
fn compile_impl(src: &str, auto_pin: bool, file: &str) -> Result<CompiledProgram, JeddcError> {
    let ast = crate::parse::parse(src)?;
    let typed = crate::check::check(&ast)?;
    let assignment = crate::assignc::assign_named(&typed, auto_pin, file)?;
    Ok(CompiledProgram { typed, assignment })
}

/// A runtime error while preparing or running a compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ExecError {}

impl From<JeddError> for ExecError {
    fn from(e: JeddError) -> ExecError {
        ExecError {
            message: e.to_string(),
        }
    }
}

fn exec_err(message: impl Into<String>) -> ExecError {
    ExecError {
        message: message.into(),
    }
}

/// Interprets a [`CompiledProgram`] over concrete relations.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "
///     domain T { A, B };
///     attribute x : T;
///     physdom P1;
///     relation <x:P1> r;
///     rule fill { r = r | new { B => x }; }
/// ";
/// let compiled = jeddc::compile(src)?;
/// let mut exec = jeddc::Executor::new(&compiled)?;
/// exec.run("fill")?;
/// assert_eq!(exec.tuples("r")?, vec![vec![1]]);
/// # Ok(())
/// # }
/// ```
pub struct Executor {
    compiled: CompiledProgram,
    universe: Universe,
    domain_sizes: Vec<Option<u64>>,
    domain_elements: Vec<Option<Vec<String>>>,
    domain_ids: Vec<Option<DomainId>>,
    attr_ids: Vec<Option<AttrId>>,
    physdom_ids: Vec<Option<PhysDomId>>,
    env: Vec<Option<Relation>>,
    prepared: bool,
    /// Replace operations executed on behalf of the assignment.
    pub replaces: u64,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("prepared", &self.prepared)
            .field("replaces", &self.replaces)
            .finish()
    }
}

impl Executor {
    /// Creates an executor. Domains with fixed or enumerated sizes are
    /// bound immediately; deferred domains must be bound with
    /// [`Executor::bind_domain_size`] before the first run.
    ///
    /// # Errors
    ///
    /// Currently infallible, but reserved for future validation.
    pub fn new(compiled: &CompiledProgram) -> Result<Executor, ExecError> {
        let nd = compiled.typed.domains.len();
        let mut sizes: Vec<Option<u64>> = vec![None; nd];
        let mut elements: Vec<Option<Vec<String>>> = vec![None; nd];
        for (i, d) in compiled.typed.domains.iter().enumerate() {
            match &d.spec {
                DomainSpec::Fixed(n) => sizes[i] = Some(*n),
                DomainSpec::Enumerated(els) => {
                    sizes[i] = Some(els.len() as u64);
                    elements[i] = Some(els.clone());
                }
                DomainSpec::Deferred => {}
            }
        }
        Ok(Executor {
            compiled: compiled.clone(),
            universe: Universe::new(),
            domain_sizes: sizes,
            domain_elements: elements,
            domain_ids: vec![None; nd],
            attr_ids: vec![None; compiled.typed.attributes.len()],
            physdom_ids: vec![None; compiled.assignment.physdom_names.len()],
            env: vec![None; compiled.typed.vars.len()],
            prepared: false,
            replaces: 0,
        })
    }

    /// Binds the size of a deferred domain. Must be called before the
    /// universe is prepared (i.e. before the first `set_input`/`run`).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown domains or after preparation.
    pub fn bind_domain_size(&mut self, name: &str, size: u64) -> Result<(), ExecError> {
        if self.prepared {
            return Err(exec_err("cannot bind domains after preparation"));
        }
        let Some(i) = self.compiled.typed.domain_idx(name) else {
            return Err(exec_err(format!("unknown domain `{name}`")));
        };
        self.domain_sizes[i as usize] = Some(size);
        Ok(())
    }

    /// Binds element labels (and thereby the size) of a deferred domain.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown domains or after preparation.
    pub fn bind_domain_elements(&mut self, name: &str, labels: &[&str]) -> Result<(), ExecError> {
        if self.prepared {
            return Err(exec_err("cannot bind domains after preparation"));
        }
        let Some(i) = self.compiled.typed.domain_idx(name) else {
            return Err(exec_err(format!("unknown domain `{name}`")));
        };
        self.domain_sizes[i as usize] = Some(labels.len() as u64);
        self.domain_elements[i as usize] =
            Some(labels.iter().map(|s| s.to_string()).collect());
        Ok(())
    }

    /// Builds the universe: registers domains and attributes, computes the
    /// width of every physical domain from the attributes assigned to it,
    /// and allocates BDD variables (interleaving groups declared
    /// `physdom interleaved ...`).
    ///
    /// Called implicitly by `set_input`/`run`.
    ///
    /// # Errors
    ///
    /// Returns an error if a deferred domain is still unbound.
    pub fn prepare(&mut self) -> Result<(), ExecError> {
        if self.prepared {
            return Ok(());
        }
        let typed = self.compiled.typed.clone();
        for (i, d) in typed.domains.iter().enumerate() {
            let Some(size) = self.domain_sizes[i] else {
                return Err(exec_err(format!(
                    "domain `{}` has no size; call bind_domain_size first",
                    d.name
                )));
            };
            let id = match &self.domain_elements[i] {
                Some(els) => {
                    let refs: Vec<&str> = els.iter().map(|s| s.as_str()).collect();
                    self.universe.add_domain_with_elements(&d.name, &refs)
                }
                None => self.universe.add_domain(&d.name, size),
            };
            self.domain_ids[i] = Some(id);
        }
        for (i, a) in typed.attributes.iter().enumerate() {
            let id = self
                .universe
                .add_attribute(&a.name, self.domain_ids[a.domain as usize].expect("domain"));
            self.attr_ids[i] = Some(id);
        }
        // Width of each physdom = bits of the widest attribute assigned to
        // it anywhere in the program (paper §3.2.1).
        let widths = self.physdom_widths();
        // Create physdoms in declaration order, materialising interleaved
        // groups together.
        let a = &self.compiled.assignment;
        let mut created: Vec<bool> = vec![false; a.physdom_names.len()];
        for i in 0..a.physdom_names.len() {
            if created[i] {
                continue;
            }
            match a.physdom_groups[i] {
                Some(g) => {
                    let members: Vec<usize> = (0..a.physdom_names.len())
                        .filter(|&j| a.physdom_groups[j] == Some(g))
                        .collect();
                    let names: Vec<&str> =
                        members.iter().map(|&j| a.physdom_names[j].as_str()).collect();
                    let width = members.iter().map(|&j| widths[j]).max().unwrap_or(1);
                    let ids = self
                        .universe
                        .add_physical_domains_interleaved(&names, width);
                    for (&j, id) in members.iter().zip(ids) {
                        self.physdom_ids[j] = Some(id);
                        created[j] = true;
                    }
                }
                None => {
                    let id = self
                        .universe
                        .add_physical_domain(&a.physdom_names[i], widths[i]);
                    self.physdom_ids[i] = Some(id);
                    created[i] = true;
                }
            }
        }
        // Globals start empty.
        for (vi, v) in typed.vars.iter().enumerate() {
            if v.global {
                let schema = self.var_schema(vi as VarIdx)?;
                self.env[vi] = Some(Relation::empty(&self.universe, &schema)?);
            }
        }
        self.prepared = true;
        Ok(())
    }

    /// Computes the required bit width of each physical domain.
    fn physdom_widths(&self) -> Vec<usize> {
        let typed = &self.compiled.typed;
        let a = &self.compiled.assignment;
        let mut widths = vec![1usize; a.physdom_names.len()];
        let domain_bits = |didx: u32, sizes: &[Option<u64>]| -> usize {
            let size = sizes[didx as usize].unwrap_or(2).max(2);
            (64 - (size - 1).leading_zeros() as usize).max(1)
        };
        let bump = |pd: PdIdx, attr: AttrIdx, widths: &mut Vec<usize>| {
            let d = typed.attributes[attr as usize].domain;
            let bits = domain_bits(d, &self.domain_sizes);
            let w = &mut widths[pd as usize];
            *w = (*w).max(bits);
        };
        for (&(_, attr), &pd) in &a.expr_pd {
            bump(pd, attr, &mut widths);
        }
        for (&(v, attr), &pd) in &a.var_pd {
            let _ = v;
            bump(pd, attr, &mut widths);
        }
        // Compared (merged) occurrences of composes: find the left
        // attribute of the pair by walking the rules.
        let mut cmp_attr: HashMap<(u32, usize), AttrIdx> = HashMap::new();
        for r in &typed.rules {
            collect_cmp_attrs(&r.body, &mut cmp_attr);
        }
        for (&(eid, i), &pd) in &a.cmp_pd {
            if let Some(&attr) = cmp_attr.get(&(eid, i)) {
                bump(pd, attr, &mut widths);
            }
        }
        widths
    }

    fn attr_id(&self, a: AttrIdx) -> AttrId {
        self.attr_ids[a as usize].expect("prepared")
    }

    fn physdom_id(&self, p: PdIdx) -> PhysDomId {
        self.physdom_ids[p as usize].expect("prepared")
    }

    /// The concrete schema of a variable under the assignment.
    fn var_schema(&self, v: VarIdx) -> Result<Vec<(AttrId, PhysDomId)>, ExecError> {
        let a = &self.compiled.assignment;
        let mut out = Vec::new();
        for &(attr, _) in &self.compiled.typed.vars[v as usize].schema {
            let Some(&pd) = a.var_pd.get(&(v, attr)) else {
                return Err(exec_err(format!(
                    "no physical domain assigned for variable attribute {attr}"
                )));
            };
            out.push((self.attr_id(attr), self.physdom_id(pd)));
        }
        Ok(out)
    }

    /// Loads tuples into a global relation. Tuple columns follow the
    /// attribute order *as written* in the relation's declaration.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown relations or invalid tuples.
    pub fn set_input(&mut self, name: &str, tuples: &[Vec<u64>]) -> Result<(), ExecError> {
        self.prepare()?;
        let Some(v) = self.compiled.typed.global_idx(name) else {
            return Err(exec_err(format!("unknown relation `{name}`")));
        };
        let schema = self.var_schema(v)?;
        // Reorder the schema into the declaration's written order so the
        // caller's column order matches the source text.
        let written = self.compiled.typed.vars[v as usize].written.clone();
        let ordered: Vec<_> = written
            .iter()
            .map(|&w| {
                let aid = self.attr_id(w);
                *schema.iter().find(|&&(a, _)| a == aid).expect("written attr")
            })
            .collect();
        let rel = Relation::from_tuples(&self.universe, &ordered, tuples)?;
        self.env[v as usize] = Some(rel);
        Ok(())
    }

    /// Runs a rule to completion.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown rules or runtime failures.
    pub fn run(&mut self, rule: &str) -> Result<(), ExecError> {
        self.prepare()?;
        let Some(r) = self.compiled.typed.rule(rule) else {
            return Err(exec_err(format!("unknown rule `{rule}`")));
        };
        let body = r.body.clone();
        self.universe.set_site(rule);
        self.exec_block(&body)
    }

    /// The current value of a relation variable (globals only).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or uninitialised relations.
    pub fn relation(&self, name: &str) -> Result<&Relation, ExecError> {
        let Some(v) = self.compiled.typed.global_idx(name) else {
            return Err(exec_err(format!("unknown relation `{name}`")));
        };
        self.env[v as usize]
            .as_ref()
            .ok_or_else(|| exec_err(format!("relation `{name}` has no value")))
    }

    /// The tuples of a global relation, sorted, with columns in the
    /// attribute order *as written* in the relation's declaration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::relation`].
    pub fn tuples(&self, name: &str) -> Result<Vec<Vec<u64>>, ExecError> {
        let v = self
            .compiled
            .typed
            .global_idx(name)
            .ok_or_else(|| exec_err(format!("unknown relation `{name}`")))?;
        let rel = self.relation(name)?;
        let sorted_attrs = rel.attributes();
        let written = &self.compiled.typed.vars[v as usize].written;
        // Column permutation: written position -> sorted position.
        let perm: Vec<usize> = written
            .iter()
            .map(|&w| {
                let aid = self.attr_id(w);
                sorted_attrs
                    .iter()
                    .position(|&a| a == aid)
                    .expect("written attr in schema")
            })
            .collect();
        let mut out: Vec<Vec<u64>> = rel
            .tuples()
            .into_iter()
            .map(|t| perm.iter().map(|&i| t[i]).collect())
            .collect();
        out.sort();
        Ok(out)
    }

    /// The universe backing this execution (for profiler installation and
    /// statistics).
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Installs a resource budget on the execution's BDD manager. Rules
    /// that exhaust it fail with the wrapped
    /// [`jedd_core::JeddError::ResourceExhausted`] error.
    pub fn set_budget(&self, budget: jedd_core::Budget) {
        self.universe.set_budget(budget);
    }

    /// The currently installed resource budget.
    pub fn budget(&self) -> jedd_core::Budget {
        self.universe.budget()
    }

    fn exec_block(&mut self, body: &[TStmt]) -> Result<(), ExecError> {
        for s in body {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &TStmt) -> Result<(), ExecError> {
        match s {
            TStmt::Local { var, init, .. } => {
                let schema = self.var_schema(*var)?;
                let value = match init {
                    Some(e) => {
                        let r = self.eval(e)?;
                        self.conform_to_var(r, *var)?
                    }
                    None => Relation::empty(&self.universe, &schema)?,
                };
                self.env[*var as usize] = Some(value);
                Ok(())
            }
            TStmt::Assign { var, op, expr, .. } => {
                let r = self.eval(expr)?;
                let r = self.conform_to_var(r, *var)?;
                let current = self.env[*var as usize].clone();
                let next = match (op, current) {
                    (AssignOp::Set, _) => r,
                    (AssignOp::Union, Some(c)) => c.union(&r)?,
                    (AssignOp::Intersect, Some(c)) => c.intersect(&r)?,
                    (AssignOp::Minus, Some(c)) => c.minus(&r)?,
                    (_, None) => {
                        return Err(exec_err(
                            "compound assignment to uninitialised relation",
                        ))
                    }
                };
                self.env[*var as usize] = Some(next);
                Ok(())
            }
            TStmt::DoWhile { body, cond } => {
                let mut fuel = 1_000_000u64;
                loop {
                    self.exec_block(body)?;
                    if !self.eval_cond(cond)? {
                        return Ok(());
                    }
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(exec_err("do-while failed to converge"));
                    }
                }
            }
            TStmt::While { cond, body } => {
                let mut fuel = 1_000_000u64;
                while self.eval_cond(cond)? {
                    self.exec_block(body)?;
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(exec_err("while failed to converge"));
                    }
                }
                Ok(())
            }
            TStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval_cond(cond)? {
                    self.exec_block(then_body)
                } else {
                    self.exec_block(else_body)
                }
            }
        }
    }

    fn eval_cond(&mut self, c: &TCond) -> Result<bool, ExecError> {
        // Constant sides never need alignment: `x == 0B` is an emptiness
        // test, and `x == 1B` compares against a full relation built
        // directly on `x`'s current physical domains. Both avoid the
        // schema-alignment replace `equals` would otherwise perform.
        let eq = match (&c.left.kind, &c.right.kind) {
            (TExprKind::Empty, _) => self.eval(&c.right)?.is_empty(),
            (_, TExprKind::Empty) => self.eval(&c.left)?.is_empty(),
            (TExprKind::Full, _) => {
                let r = self.eval(&c.right)?;
                r.equals(&Relation::full(&self.universe, r.schema())?)?
            }
            (_, TExprKind::Full) => {
                let l = self.eval(&c.left)?;
                l.equals(&Relation::full(&self.universe, l.schema())?)?
            }
            _ => {
                let l = self.eval(&c.left)?;
                let r = self.eval(&c.right)?;
                l.equals(&r)?
            }
        };
        Ok(if c.eq { eq } else { !eq })
    }

    /// The assigned schema of an expression node.
    fn node_schema(&self, e: &TExpr) -> Result<Vec<(AttrId, PhysDomId)>, ExecError> {
        let a = &self.compiled.assignment;
        let mut out = Vec::new();
        for &attr in &e.schema {
            let Some(&pd) = a.expr_pd.get(&(e.id, attr)) else {
                return Err(exec_err(format!(
                    "expression at {} has no assignment for attribute {attr}",
                    e.pos
                )));
            };
            out.push((self.attr_id(attr), self.physdom_id(pd)));
        }
        Ok(out)
    }

    /// Moves a relation onto an expression node's assigned physical
    /// domains, counting any real replace work.
    fn conform(&mut self, r: Relation, target: &[(AttrId, PhysDomId)]) -> Result<Relation, ExecError> {
        let mut moves = Vec::new();
        for &(a, p) in target {
            if r.physdom_of(a) != Some(p) {
                moves.push((a, p));
            }
        }
        if moves.is_empty() {
            return Ok(r);
        }
        self.replaces += 1;
        Ok(r.with_assignment(&moves)?)
    }

    fn conform_to_var(&mut self, r: Relation, v: VarIdx) -> Result<Relation, ExecError> {
        let schema = self.var_schema(v)?;
        self.conform(r, &schema)
    }

    fn eval(&mut self, e: &TExpr) -> Result<Relation, ExecError> {
        let node_schema = self.node_schema(e)?;
        let result = match &e.kind {
            TExprKind::Var(v) => self.env[*v as usize]
                .clone()
                .ok_or_else(|| exec_err("use of uninitialised relation"))?,
            TExprKind::Empty => Relation::empty(&self.universe, &node_schema)?,
            TExprKind::Full => Relation::full(&self.universe, &node_schema)?,
            TExprKind::Literal(fields) => {
                let mut concrete = Vec::new();
                for (obj, attr, _) in fields {
                    let aid = self.attr_id(*attr);
                    let pd = node_schema
                        .iter()
                        .find(|&&(a, _)| a == aid)
                        .map(|&(_, p)| p)
                        .expect("literal attr in node schema");
                    let value = match obj {
                        TLiteralObj::Index(n) => *n,
                        TLiteralObj::Label(l) => {
                            let d = self.universe.attribute_domain(aid);
                            self.universe.element_index(d, l).ok_or_else(|| {
                                exec_err(format!(
                                    "`{l}` is not an element of domain {}",
                                    self.universe.domain_name(d)
                                ))
                            })?
                        }
                    };
                    concrete.push((aid, pd, value));
                }
                Relation::tuple(&self.universe, &concrete)?
            }
            TExprKind::Replace {
                operand,
                projects,
                renames,
                copies,
            } => {
                let mut r = self.eval(operand)?;
                if !projects.is_empty() {
                    let attrs: Vec<AttrId> = projects.iter().map(|&a| self.attr_id(a)).collect();
                    r = r.project_away(&attrs)?;
                }
                for &(f, t1, t2) in copies {
                    // Copy into a scratch domain; the final conform moves
                    // everything onto the assigned domains in one step.
                    r = r.copy(self.attr_id(f), self.attr_id(t1), self.attr_id(t2), None)?;
                }
                if !renames.is_empty() {
                    let pairs: Vec<(AttrId, AttrId)> = renames
                        .iter()
                        .map(|&(f, t)| (self.attr_id(f), self.attr_id(t)))
                        .collect();
                    r = r.rename_many(&pairs)?;
                }
                r
            }
            TExprKind::JoinLike {
                left,
                left_attrs,
                right,
                right_attrs,
                is_join,
            } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let a = &self.compiled.assignment;
                // Targets: compared attrs onto the merged occurrence's
                // domain, kept attrs onto this node's domains.
                let merged_pd = |i: usize| -> Result<PhysDomId, ExecError> {
                    if *is_join {
                        let attr = left_attrs[i];
                        let pd = a
                            .expr_pd
                            .get(&(e.id, attr))
                            .ok_or_else(|| exec_err("missing join assignment"))?;
                        Ok(self.physdom_id(*pd))
                    } else {
                        let pd = a
                            .cmp_pd
                            .get(&(e.id, i))
                            .ok_or_else(|| exec_err("missing compose assignment"))?;
                        Ok(self.physdom_id(*pd))
                    }
                };
                let mut l_target = Vec::new();
                for &attr in &left.schema {
                    let aid = self.attr_id(attr);
                    let pd = match left_attrs.iter().position(|&x| x == attr) {
                        Some(i) => merged_pd(i)?,
                        None => {
                            let pd = a.expr_pd[&(e.id, attr)];
                            self.physdom_id(pd)
                        }
                    };
                    l_target.push((aid, pd));
                }
                let mut r_target = Vec::new();
                for &attr in &right.schema {
                    let aid = self.attr_id(attr);
                    let pd = match right_attrs.iter().position(|&x| x == attr) {
                        Some(i) => merged_pd(i)?,
                        None => {
                            let pd = a.expr_pd[&(e.id, attr)];
                            self.physdom_id(pd)
                        }
                    };
                    r_target.push((aid, pd));
                }
                let l = self.conform(l, &l_target)?;
                let r = self.conform(r, &r_target)?;
                let la: Vec<AttrId> = left_attrs.iter().map(|&x| self.attr_id(x)).collect();
                let ra: Vec<AttrId> = right_attrs.iter().map(|&x| self.attr_id(x)).collect();
                if *is_join {
                    l.join(&la, &r, &ra)?
                } else {
                    l.compose(&la, &r, &ra)?
                }
            }
            TExprKind::SetOp { op, left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let l = self.conform(l, &node_schema)?;
                let r = self.conform(r, &node_schema)?;
                match op {
                    SetOp::Union => l.union(&r)?,
                    SetOp::Intersect => l.intersect(&r)?,
                    SetOp::Minus => l.minus(&r)?,
                }
            }
        };
        self.conform(result, &node_schema)
    }
}

fn collect_cmp_attrs(body: &[TStmt], out: &mut HashMap<(u32, usize), AttrIdx>) {
    fn walk_expr(e: &TExpr, out: &mut HashMap<(u32, usize), AttrIdx>) {
        match &e.kind {
            TExprKind::JoinLike {
                left,
                left_attrs,
                right,
                is_join,
                ..
            } => {
                if !is_join {
                    for (i, &la) in left_attrs.iter().enumerate() {
                        out.insert((e.id, i), la);
                    }
                }
                walk_expr(left, out);
                walk_expr(right, out);
            }
            TExprKind::Replace { operand, .. } => walk_expr(operand, out),
            TExprKind::SetOp { left, right, .. } => {
                walk_expr(left, out);
                walk_expr(right, out);
            }
            _ => {}
        }
    }
    for s in body {
        match s {
            TStmt::Local { init: Some(e), .. } => walk_expr(e, out),
            TStmt::Local { .. } => {}
            TStmt::Assign { expr, .. } => walk_expr(expr, out),
            TStmt::DoWhile { body, cond } | TStmt::While { cond, body } => {
                walk_expr(&cond.left, out);
                walk_expr(&cond.right, out);
                collect_cmp_attrs(body, out);
            }
            TStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                walk_expr(&cond.left, out);
                walk_expr(&cond.right, out);
                collect_cmp_attrs(then_body, out);
                collect_cmp_attrs(else_body, out);
            }
        }
    }
}
