//! Lexer for the mini-Jedd language.
//!
//! The token set covers the grammar productions the paper adds to Java
//! (Fig. 5): relation types `<a:T1, b>`, the join/compose symbols `><` and
//! `<>`, replacement casts `(a=>b)`, tuple literals `new { ... }`, and the
//! constants `0B`/`1B`, plus the statement syntax the analyses need.

use crate::diag::{CompileError, Pos};

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Int(u64),
    /// The empty-relation constant `0B`.
    ZeroB,
    /// The full-relation constant `1B`.
    OneB,
    /// `new`
    New,
    /// `domain`
    Domain,
    /// `attribute`
    Attribute,
    /// `physdom`
    Physdom,
    /// `relation`
    RelationKw,
    /// `rule`
    Rule,
    /// `do`
    Do,
    /// `while`
    While,
    /// `if`
    If,
    /// `else`
    Else,
    /// `interleaved`
    Interleaved,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `><`
    JoinSym,
    /// `<>`
    ComposeSym,
    /// `=>`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `|=`
    OrAssign,
    /// `&=`
    AndAssign,
    /// `-=`
    MinusAssign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `|`
    Pipe,
    /// `&`
    Amp,
    /// `-`
    Minus,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::ZeroB => write!(f, "`0B`"),
            Tok::OneB => write!(f, "`1B`"),
            Tok::New => write!(f, "`new`"),
            Tok::Domain => write!(f, "`domain`"),
            Tok::Attribute => write!(f, "`attribute`"),
            Tok::Physdom => write!(f, "`physdom`"),
            Tok::RelationKw => write!(f, "`relation`"),
            Tok::Rule => write!(f, "`rule`"),
            Tok::Do => write!(f, "`do`"),
            Tok::While => write!(f, "`while`"),
            Tok::If => write!(f, "`if`"),
            Tok::Else => write!(f, "`else`"),
            Tok::Interleaved => write!(f, "`interleaved`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::JoinSym => write!(f, "`><`"),
            Tok::ComposeSym => write!(f, "`<>`"),
            Tok::Arrow => write!(f, "`=>`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::OrAssign => write!(f, "`|=`"),
            Tok::AndAssign => write!(f, "`&=`"),
            Tok::MinusAssign => write!(f, "`-=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Source position of the first character.
    pub pos: Pos,
}

/// Tokenizes mini-Jedd source.
///
/// # Errors
///
/// Returns a [`CompileError`] on unrecognised characters or malformed
/// numbers.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    while i < chars.len() {
        let c = chars[i];
        let p = pos!();
        let advance = |n: usize, i: &mut usize, col: &mut u32| {
            *i += n;
            *col += n as u32;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => advance(1, &mut i, &mut col),
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                advance(2, &mut i, &mut col);
                while i < chars.len() && !(chars[i] == '*' && chars.get(i + 1) == Some(&'/')) {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                        i += 1;
                    } else {
                        advance(1, &mut i, &mut col);
                    }
                }
                if i < chars.len() {
                    advance(2, &mut i, &mut col);
                }
            }
            '>' if chars.get(i + 1) == Some(&'<') => {
                out.push(Token { tok: Tok::JoinSym, pos: p });
                advance(2, &mut i, &mut col);
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                out.push(Token { tok: Tok::ComposeSym, pos: p });
                advance(2, &mut i, &mut col);
            }
            '=' if chars.get(i + 1) == Some(&'>') => {
                out.push(Token { tok: Tok::Arrow, pos: p });
                advance(2, &mut i, &mut col);
            }
            '=' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::EqEq, pos: p });
                advance(2, &mut i, &mut col);
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::NotEq, pos: p });
                advance(2, &mut i, &mut col);
            }
            '|' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::OrAssign, pos: p });
                advance(2, &mut i, &mut col);
            }
            '&' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::AndAssign, pos: p });
                advance(2, &mut i, &mut col);
            }
            '-' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::MinusAssign, pos: p });
                advance(2, &mut i, &mut col);
            }
            '<' => {
                out.push(Token { tok: Tok::Lt, pos: p });
                advance(1, &mut i, &mut col);
            }
            '>' => {
                out.push(Token { tok: Tok::Gt, pos: p });
                advance(1, &mut i, &mut col);
            }
            '(' => {
                out.push(Token { tok: Tok::LParen, pos: p });
                advance(1, &mut i, &mut col);
            }
            ')' => {
                out.push(Token { tok: Tok::RParen, pos: p });
                advance(1, &mut i, &mut col);
            }
            '{' => {
                out.push(Token { tok: Tok::LBrace, pos: p });
                advance(1, &mut i, &mut col);
            }
            '}' => {
                out.push(Token { tok: Tok::RBrace, pos: p });
                advance(1, &mut i, &mut col);
            }
            ',' => {
                out.push(Token { tok: Tok::Comma, pos: p });
                advance(1, &mut i, &mut col);
            }
            ';' => {
                out.push(Token { tok: Tok::Semi, pos: p });
                advance(1, &mut i, &mut col);
            }
            ':' => {
                out.push(Token { tok: Tok::Colon, pos: p });
                advance(1, &mut i, &mut col);
            }
            '=' => {
                out.push(Token { tok: Tok::Assign, pos: p });
                advance(1, &mut i, &mut col);
            }
            '|' => {
                out.push(Token { tok: Tok::Pipe, pos: p });
                advance(1, &mut i, &mut col);
            }
            '&' => {
                out.push(Token { tok: Tok::Amp, pos: p });
                advance(1, &mut i, &mut col);
            }
            '-' => {
                out.push(Token { tok: Tok::Minus, pos: p });
                advance(1, &mut i, &mut col);
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    advance(1, &mut i, &mut col);
                }
                let text: String = chars[start..i].iter().collect();
                // `0B` / `1B` constants.
                if i < chars.len() && chars[i] == 'B' && (text == "0" || text == "1") {
                    advance(1, &mut i, &mut col);
                    out.push(Token {
                        tok: if text == "0" { Tok::ZeroB } else { Tok::OneB },
                        pos: p,
                    });
                } else {
                    let n: u64 = text.parse().map_err(|_| CompileError {
                        pos: p,
                        message: format!("integer literal `{text}` out of range"),
                    })?;
                    out.push(Token {
                        tok: Tok::Int(n),
                        pos: p,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    advance(1, &mut i, &mut col);
                }
                let text: String = chars[start..i].iter().collect();
                let tok = match text.as_str() {
                    "new" => Tok::New,
                    "domain" => Tok::Domain,
                    "attribute" => Tok::Attribute,
                    "physdom" => Tok::Physdom,
                    "relation" => Tok::RelationKw,
                    "rule" => Tok::Rule,
                    "do" => Tok::Do,
                    "while" => Tok::While,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "interleaved" => Tok::Interleaved,
                    _ => Tok::Ident(text),
                };
                out.push(Token { tok, pos: p });
            }
            other => {
                return Err(CompileError {
                    pos: p,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn operators_and_constants() {
        let toks = kinds("a >< b <> c => 0B 1B |= &= -= == != | & - = < >");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::JoinSym,
                Tok::Ident("b".into()),
                Tok::ComposeSym,
                Tok::Ident("c".into()),
                Tok::Arrow,
                Tok::ZeroB,
                Tok::OneB,
                Tok::OrAssign,
                Tok::AndAssign,
                Tok::MinusAssign,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Pipe,
                Tok::Amp,
                Tok::Minus,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn keywords_and_idents() {
        let toks = kinds("rule domain attribute physdom relation do while if else new rectype");
        assert!(matches!(toks[0], Tok::Rule));
        assert!(matches!(toks[9], Tok::New));
        assert_eq!(toks[10], Tok::Ident("rectype".into()));
    }

    #[test]
    fn dotted_idents_for_method_names() {
        let toks = kinds("A.foo B.bar");
        assert_eq!(toks[0], Tok::Ident("A.foo".into()));
        assert_eq!(toks[1], Tok::Ident("B.bar".into()));
    }

    #[test]
    fn comments_skipped_and_positions_tracked() {
        let tokens = lex("// hello\n  a /* b\nc */ d").unwrap();
        assert_eq!(tokens[0].tok, Tok::Ident("a".into()));
        assert_eq!(tokens[0].pos.line, 2);
        assert_eq!(tokens[0].pos.col, 3);
        assert_eq!(tokens[1].tok, Tok::Ident("d".into()));
        assert_eq!(tokens[1].pos.line, 3);
    }

    #[test]
    fn numbers_and_0b() {
        let toks = kinds("42 0 1 0B 1B");
        assert_eq!(toks[0], Tok::Int(42));
        assert_eq!(toks[1], Tok::Int(0));
        assert_eq!(toks[2], Tok::Int(1));
        assert_eq!(toks[3], Tok::ZeroB);
        assert_eq!(toks[4], Tok::OneB);
    }

    #[test]
    fn bad_character_errors() {
        assert!(lex("a $ b").is_err());
    }
}
