//! Lexer for the mini-Jedd language.
//!
//! The token set covers the grammar productions the paper adds to Java
//! (Fig. 5): relation types `<a:T1, b>`, the join/compose symbols `><` and
//! `<>`, replacement casts `(a=>b)`, tuple literals `new { ... }`, and the
//! constants `0B`/`1B`, plus the statement syntax the analyses need.

use crate::diag::{Allow, CompileError, LineMap, Pos};

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Int(u64),
    /// The empty-relation constant `0B`.
    ZeroB,
    /// The full-relation constant `1B`.
    OneB,
    /// `new`
    New,
    /// `domain`
    Domain,
    /// `attribute`
    Attribute,
    /// `physdom`
    Physdom,
    /// `relation`
    RelationKw,
    /// `rule`
    Rule,
    /// `do`
    Do,
    /// `while`
    While,
    /// `if`
    If,
    /// `else`
    Else,
    /// `interleaved`
    Interleaved,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `><`
    JoinSym,
    /// `<>`
    ComposeSym,
    /// `=>`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `|=`
    OrAssign,
    /// `&=`
    AndAssign,
    /// `-=`
    MinusAssign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `|`
    Pipe,
    /// `&`
    Amp,
    /// `-`
    Minus,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::ZeroB => write!(f, "`0B`"),
            Tok::OneB => write!(f, "`1B`"),
            Tok::New => write!(f, "`new`"),
            Tok::Domain => write!(f, "`domain`"),
            Tok::Attribute => write!(f, "`attribute`"),
            Tok::Physdom => write!(f, "`physdom`"),
            Tok::RelationKw => write!(f, "`relation`"),
            Tok::Rule => write!(f, "`rule`"),
            Tok::Do => write!(f, "`do`"),
            Tok::While => write!(f, "`while`"),
            Tok::If => write!(f, "`if`"),
            Tok::Else => write!(f, "`else`"),
            Tok::Interleaved => write!(f, "`interleaved`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::JoinSym => write!(f, "`><`"),
            Tok::ComposeSym => write!(f, "`<>`"),
            Tok::Arrow => write!(f, "`=>`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::OrAssign => write!(f, "`|=`"),
            Tok::AndAssign => write!(f, "`&=`"),
            Tok::MinusAssign => write!(f, "`-=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Source position of the first character.
    pub pos: Pos,
}

/// Tokenizes mini-Jedd source.
///
/// # Errors
///
/// Returns a [`CompileError`] on unrecognised characters or malformed
/// numbers.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    lex_with_allows(src).map(|(toks, _)| toks)
}

/// Tokenizes mini-Jedd source, also collecting `// jedd:allow(<lint>)`
/// annotations from line comments.
///
/// Positions come from a [`LineMap`] built up front, so every token —
/// including those inside `new { ... }` tuple literals that span
/// newlines — is located by its char offset rather than by counters
/// threaded through the dispatch loop.
///
/// # Errors
///
/// Returns a [`CompileError`] on unrecognised characters or malformed
/// numbers.
pub fn lex_with_allows(src: &str) -> Result<(Vec<Token>, Vec<Allow>), CompileError> {
    let mut out = Vec::new();
    let mut allows = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let map = LineMap::new(src);
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let p = map.pos_at(i);
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let body: String = chars[start..i].iter().collect();
                parse_allow(body.trim(), p.line, &mut allows);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                while i < chars.len() && !(chars[i] == '*' && chars.get(i + 1) == Some(&'/')) {
                    i += 1;
                }
                if i < chars.len() {
                    i += 2;
                }
            }
            '>' if chars.get(i + 1) == Some(&'<') => {
                out.push(Token { tok: Tok::JoinSym, pos: p });
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                out.push(Token { tok: Tok::ComposeSym, pos: p });
                i += 2;
            }
            '=' if chars.get(i + 1) == Some(&'>') => {
                out.push(Token { tok: Tok::Arrow, pos: p });
                i += 2;
            }
            '=' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::EqEq, pos: p });
                i += 2;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::NotEq, pos: p });
                i += 2;
            }
            '|' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::OrAssign, pos: p });
                i += 2;
            }
            '&' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::AndAssign, pos: p });
                i += 2;
            }
            '-' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token { tok: Tok::MinusAssign, pos: p });
                i += 2;
            }
            '<' | '>' | '(' | ')' | '{' | '}' | ',' | ';' | ':' | '=' | '|' | '&' | '-' => {
                let tok = match c {
                    '<' => Tok::Lt,
                    '>' => Tok::Gt,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    ':' => Tok::Colon,
                    '=' => Tok::Assign,
                    '|' => Tok::Pipe,
                    '&' => Tok::Amp,
                    _ => Tok::Minus,
                };
                out.push(Token { tok, pos: p });
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // `0B` / `1B` constants.
                if i < chars.len() && chars[i] == 'B' && (text == "0" || text == "1") {
                    i += 1;
                    out.push(Token {
                        tok: if text == "0" { Tok::ZeroB } else { Tok::OneB },
                        pos: p,
                    });
                } else {
                    let n: u64 = text.parse().map_err(|_| CompileError {
                        pos: p,
                        message: format!("integer literal `{text}` out of range"),
                    })?;
                    out.push(Token {
                        tok: Tok::Int(n),
                        pos: p,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let tok = match text.as_str() {
                    "new" => Tok::New,
                    "domain" => Tok::Domain,
                    "attribute" => Tok::Attribute,
                    "physdom" => Tok::Physdom,
                    "relation" => Tok::RelationKw,
                    "rule" => Tok::Rule,
                    "do" => Tok::Do,
                    "while" => Tok::While,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "interleaved" => Tok::Interleaved,
                    _ => Tok::Ident(text),
                };
                out.push(Token { tok, pos: p });
            }
            other => {
                return Err(CompileError {
                    pos: p,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: map.pos_at(chars.len()),
    });
    Ok((out, allows))
}

/// Recognises `jedd:allow(<lint>, ...)` in a trimmed comment body and
/// records one [`Allow`] per listed lint name. Anything else is ignored.
fn parse_allow(body: &str, line: u32, allows: &mut Vec<Allow>) {
    let Some(rest) = body.strip_prefix("jedd:allow(") else {
        return;
    };
    let Some(inner) = rest.strip_suffix(')') else {
        return;
    };
    for name in inner.split(',') {
        let name = name.trim();
        if !name.is_empty() {
            allows.push(Allow {
                line,
                lint: name.to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn operators_and_constants() {
        let toks = kinds("a >< b <> c => 0B 1B |= &= -= == != | & - = < >");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::JoinSym,
                Tok::Ident("b".into()),
                Tok::ComposeSym,
                Tok::Ident("c".into()),
                Tok::Arrow,
                Tok::ZeroB,
                Tok::OneB,
                Tok::OrAssign,
                Tok::AndAssign,
                Tok::MinusAssign,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Pipe,
                Tok::Amp,
                Tok::Minus,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn keywords_and_idents() {
        let toks = kinds("rule domain attribute physdom relation do while if else new rectype");
        assert!(matches!(toks[0], Tok::Rule));
        assert!(matches!(toks[9], Tok::New));
        assert_eq!(toks[10], Tok::Ident("rectype".into()));
    }

    #[test]
    fn dotted_idents_for_method_names() {
        let toks = kinds("A.foo B.bar");
        assert_eq!(toks[0], Tok::Ident("A.foo".into()));
        assert_eq!(toks[1], Tok::Ident("B.bar".into()));
    }

    #[test]
    fn comments_skipped_and_positions_tracked() {
        let tokens = lex("// hello\n  a /* b\nc */ d").unwrap();
        assert_eq!(tokens[0].tok, Tok::Ident("a".into()));
        assert_eq!(tokens[0].pos.line, 2);
        assert_eq!(tokens[0].pos.col, 3);
        assert_eq!(tokens[1].tok, Tok::Ident("d".into()));
        assert_eq!(tokens[1].pos.line, 3);
    }

    #[test]
    fn numbers_and_0b() {
        let toks = kinds("42 0 1 0B 1B");
        assert_eq!(toks[0], Tok::Int(42));
        assert_eq!(toks[1], Tok::Int(0));
        assert_eq!(toks[2], Tok::Int(1));
        assert_eq!(toks[3], Tok::ZeroB);
        assert_eq!(toks[4], Tok::OneB);
    }

    #[test]
    fn bad_character_errors() {
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn multiline_tuple_literal_spans() {
        // Tokens inside a `new { ... }` literal spanning newlines must be
        // anchored on their own lines — the lint passes point at them.
        let src = "s = new {\n  A => x,\n  B => y\n};";
        let toks = lex(src).unwrap();
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.tok == Tok::Ident(name.into()))
                .unwrap()
                .pos
        };
        assert_eq!(find("A"), Pos { line: 2, col: 3 });
        assert_eq!(find("x"), Pos { line: 2, col: 8 });
        assert_eq!(find("B"), Pos { line: 3, col: 3 });
        assert_eq!(find("y"), Pos { line: 3, col: 8 });
        // The closing `};` sits on line 4.
        let rbrace = toks.iter().find(|t| t.tok == Tok::RBrace).unwrap();
        assert_eq!(rbrace.pos, Pos { line: 4, col: 1 });
    }

    #[test]
    fn position_after_line_comment_without_newline_reset() {
        // A token on the line after a trailing comment keeps a correct
        // column (the old counter-threading lexer got this wrong when an
        // arm forgot to update `col`).
        let toks = lex("a // trailing\n   b").unwrap();
        assert_eq!(toks[1].pos, Pos { line: 2, col: 4 });
    }

    #[test]
    fn allow_annotations_are_carried() {
        let src = "\
// jedd:allow(dead-store)
x = y;
z = w; // jedd:allow(projection-pushdown, replace-cost)
// not an annotation
// jedd:allow() \n";
        let (_, allows) = lex_with_allows(src).unwrap();
        assert_eq!(
            allows,
            vec![
                Allow {
                    line: 1,
                    lint: "dead-store".into()
                },
                Allow {
                    line: 3,
                    lint: "projection-pushdown".into()
                },
                Allow {
                    line: 3,
                    lint: "replace-cost".into()
                },
            ]
        );
    }
}
