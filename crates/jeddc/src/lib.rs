//! # jeddc
//!
//! The Jedd translator (Lhoták & Hendren, PLDI 2004) for *mini-Jedd*, a
//! standalone rendering of the relational language the paper embeds in
//! Java:
//!
//! * [`parse::parse`] — lexer and parser for the Fig. 5 grammar
//!   productions (relation types, `><`/`<>`, replacement casts, tuple
//!   literals, `0B`/`1B`) plus declarations and rule bodies;
//! * [`check::check`] — schema inference and the static typing rules of
//!   Fig. 6, with positioned diagnostics;
//! * [`assignc::assign`] — construction of the physical-domain-assignment
//!   problem (conflict/equality/assignment edges, §3.3.2) solved through
//!   `jedd-core`'s SAT pipeline, including the unsat-core-driven error
//!   reporting of §3.3.3 and an optional auto-pinning mode;
//! * [`lint`] — `jeddlint`: CFG-based dataflow passes (definite
//!   assignment, liveness, redundant operations) and physical-domain
//!   advisories (replace cost, projection push-down) over the typed IR,
//!   reported as structured [`Diagnostic`]s;
//! * [`Executor`] — the runtime: universe construction with physical
//!   domains sized to their widest assigned attribute, and rule
//!   interpretation that inserts exactly the replace operations the
//!   assignment dictates;
//! * [`emit_java_like`] — the generated-code view (documentation-quality
//!   pseudo-Java with all low-level BDD operations spelled out).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//!     domain T { A, B };
//!     attribute sub : T;
//!     attribute sup : T;
//!     physdom P1, P2;
//!     relation <sub:P1, sup:P2> extend;
//!     relation <sub:P1> roots;
//!     rule findroots {
//!         roots = (sup=>) extend - (sub=>, sup=>sub) extend;
//!     }
//! ";
//! let compiled = jeddc::compile(src)?;
//! let mut exec = jeddc::Executor::new(&compiled)?;
//! exec.set_input("extend", &[vec![1, 0]])?; // B extends A
//! exec.run("findroots")?;
//! assert_eq!(exec.tuples("roots")?, vec![vec![1]]); // B is a leaf... of extend pairs
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignc;
pub mod ast;
pub mod check;
pub mod diag;
mod emit;
pub mod exec;
pub mod lex;
pub mod lint;
pub mod parse;

pub use diag::{CompileError, Diagnostic, JeddcError, Pos, Severity};
pub use emit::emit_java_like;
pub use exec::{compile, compile_auto, compile_named, CompiledProgram, ExecError, Executor};
