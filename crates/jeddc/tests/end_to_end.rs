//! End-to-end tests: mini-Jedd source through the full pipeline (parse →
//! type check → physical domain assignment → execution), reproducing the
//! paper's running example and error scenarios.

use jeddc::{compile, compile_auto, emit_java_like, Executor, JeddcError};

/// The virtual-call-resolution program of the paper's Fig. 4, verbatim in
/// mini-Jedd (same physical-domain annotations as the paper).
const FIG4: &str = "
    domain Type { A, B };
    domain Signature { foo, bar };
    domain Method { A.foo, B.bar };

    attribute rectype : Type;
    attribute tgttype : Type;
    attribute type : Type;
    attribute subtype : Type;
    attribute supertype : Type;
    attribute signature : Signature;
    attribute method : Method;

    physdom T1, S1, T2, M1, T3;

    relation <rectype:T1, signature:S1> receiverTypes;
    relation <type, signature, method> declaresMethod;
    // As in the paper's fixed §3.3.3 declarations: subtype shares T2 with
    // tgttype (no replace in the compose); supertype gets its own T3.
    relation <subtype:T2, supertype:T3> extend;
    relation <rectype, signature, tgttype, method> answer;

    rule resolve {
        <rectype, signature, tgttype> toResolve =
            (rectype => rectype tgttype) receiverTypes;
        do {
            <rectype:T1, signature:S1, tgttype:T2, method:M1> resolved =
                toResolve {tgttype, signature} >< declaresMethod {type, signature};
            answer |= resolved;
            toResolve -= (method=>) resolved;
            toResolve = (supertype=>tgttype) (toResolve {tgttype} <> extend {subtype});
        } while (toResolve != 0B);
    }
";

fn run_fig4() -> Executor {
    let compiled = compile(FIG4).expect("Fig. 4 program must compile");
    let mut exec = Executor::new(&compiled).unwrap();
    // Fig. 4(a): receiver B at call sites foo() and bar().
    exec.set_input("receiverTypes", &[vec![1, 0], vec![1, 1]])
        .unwrap();
    // Fig. 3: A declares foo() as A.foo; B declares bar() as B.bar.
    exec.set_input("declaresMethod", &[vec![0, 0, 0], vec![1, 1, 1]])
        .unwrap();
    // Fig. 4(d): B extends A.
    exec.set_input("extend", &[vec![1, 0]]).unwrap();
    exec.run("resolve").unwrap();
    exec
}

#[test]
fn figure4_resolves_both_calls() {
    let exec = run_fig4();
    // Answer tuples in sorted-attr order (method, rectype, signature,
    // tgttype) — attributes sort by declaration: rectype < tgttype < type
    // < subtype < supertype < signature < method. Schema order is
    // declaration order sorted: rectype, tgttype, signature, method.
    let answer = exec.tuples("answer").unwrap();
    assert_eq!(answer.len(), 2);
    // (B, A, foo, A.foo) and (B, B, bar, B.bar) in (rectype, tgttype,
    // signature, method) order.
    assert!(answer.contains(&vec![1, 0, 0, 0]), "foo resolves to A.foo");
    assert!(answer.contains(&vec![1, 1, 1, 1]), "bar resolves to B.bar");
}

#[test]
fn figure4_empty_receivers_terminates() {
    let compiled = compile(FIG4).unwrap();
    let mut exec = Executor::new(&compiled).unwrap();
    exec.set_input("declaresMethod", &[vec![0, 0, 0]]).unwrap();
    exec.set_input("extend", &[vec![1, 0]]).unwrap();
    exec.run("resolve").unwrap();
    assert!(exec.tuples("answer").unwrap().is_empty());
}

#[test]
fn figure4_unresolvable_call_drops_out() {
    // Receiver A calling bar(), which nothing in the hierarchy declares:
    // walking up from A leaves the hierarchy, so the loop terminates with
    // no answer for that site.
    let compiled = compile(FIG4).unwrap();
    let mut exec = Executor::new(&compiled).unwrap();
    exec.set_input("receiverTypes", &[vec![0, 1]]).unwrap();
    exec.set_input("declaresMethod", &[vec![1, 1, 1]]).unwrap();
    exec.set_input("extend", &[vec![1, 0]]).unwrap();
    exec.run("resolve").unwrap();
    assert!(exec.tuples("answer").unwrap().is_empty());
}

#[test]
fn assignment_stats_populated() {
    let compiled = compile(FIG4).unwrap();
    let st = compiled.assignment.stats;
    assert!(st.exprs > 10, "Fig. 4 has many subexpressions: {}", st.exprs);
    assert!(st.attrs > st.exprs, "multiple attrs per expr");
    assert_eq!(st.physdoms, 5);
    assert!(st.conflict > 0);
    assert!(st.equality > 0);
    assert!(st.assignment > 0);
    assert!(st.sat_vars > 0 && st.sat_clauses > 0 && st.sat_literals > 0);
    assert_eq!(compiled.assignment.auto_pins, 0, "paper's annotations suffice");
}

#[test]
fn emitted_java_mentions_physical_domains() {
    let compiled = compile(FIG4).unwrap();
    let java = emit_java_like(&compiled);
    assert!(java.contains("public class JeddProgram"));
    assert!(java.contains("join"));
    assert!(java.contains("compose"));
    assert!(java.contains("T2"));
    assert!(java.contains("replace"));
    assert!(java.contains("do {"));
}

#[test]
fn type_error_wrong_schema_assignment() {
    let src = "
        domain T { A };
        attribute x : T;
        attribute y : T;
        physdom P1, P2;
        relation <x:P1> r;
        relation <x:P1, y:P2> s;
        rule bad { r = s; }
    ";
    let err = compile(src).unwrap_err();
    let JeddcError::Compile(e) = err else {
        panic!("expected a compile error")
    };
    assert!(e.message.contains("schema mismatch"), "{}", e.message);
}

#[test]
fn type_error_join_overlap() {
    let src = "
        domain T { A };
        attribute x : T;
        attribute y : T;
        physdom P1, P2;
        relation <x:P1, y:P2> r;
        rule bad { r = r {x} >< r {x}; }
    ";
    let err = compile(src).unwrap_err();
    let JeddcError::Compile(e) = err else {
        panic!("expected a compile error")
    };
    assert!(e.message.contains("share attributes"), "{}", e.message);
}

#[test]
fn type_error_project_unknown_attribute() {
    let src = "
        domain T { A };
        attribute x : T;
        attribute y : T;
        physdom P1;
        relation <x:P1> r;
        rule bad { r = (y=>) r; }
    ";
    let err = compile(src).unwrap_err();
    let JeddcError::Compile(e) = err else {
        panic!("expected a compile error")
    };
    assert!(e.message.contains("not in operand schema"), "{}", e.message);
}

#[test]
fn section_3_3_3_conflict_error_through_language() {
    // The paper's §3.3.3 example: toResolve and extend force rectype and
    // supertype into T1 within one compose result.
    let src = "
        domain Type { A };
        domain Signature { s };
        attribute rectype : Type;
        attribute tgttype : Type;
        attribute subtype : Type;
        attribute supertype : Type;
        attribute signature : Signature;
        physdom T1, T2, S1;
        relation <rectype:T1, signature:S1, tgttype:T2> toResolve;
        relation <supertype:T1, subtype:T2> extend;
        relation <rectype, signature, supertype> result;
        rule bad {
            result = toResolve {tgttype} <> extend {subtype};
        }
    ";
    let err = compile(src).unwrap_err();
    let JeddcError::Assign(e) = err else {
        panic!("expected an assignment error, got {err:?}")
    };
    let msg = e.to_string();
    assert!(msg.contains("Conflict between"), "{msg}");
    assert!(msg.contains("over physical domain T1"), "{msg}");
    assert!(msg.contains("rectype") && msg.contains("supertype"), "{msg}");
}

#[test]
fn section_3_3_3_fix_compiles() {
    // The paper's fix: pin supertype to a fresh T3 on the result.
    let src = "
        domain Type { A };
        domain Signature { s };
        attribute rectype : Type;
        attribute tgttype : Type;
        attribute subtype : Type;
        attribute supertype : Type;
        attribute signature : Signature;
        physdom T1, T2, S1, T3;
        relation <rectype:T1, signature:S1, tgttype:T2> toResolve;
        relation <supertype:T1, subtype:T2> extend;
        relation <rectype, signature, supertype:T3> result;
        rule fixed {
            result = toResolve {tgttype} <> extend {subtype};
        }
    ";
    compile(src).expect("the paper's fix must compile");
}

#[test]
fn unreachable_attribute_reported_through_language() {
    let src = "
        domain T { A };
        attribute x : T;
        physdom P1;
        relation <x> lonely;
        rule noop { lonely = lonely; }
    ";
    let err = compile(src).unwrap_err();
    let JeddcError::Assign(e) = err else {
        panic!("expected an assignment error")
    };
    assert!(e.to_string().contains("No physical domain reaches"));
}

#[test]
fn auto_mode_pins_unlabelled_components() {
    // The same program compiles in auto mode, with one pinned domain.
    let src = "
        domain T { A };
        attribute x : T;
        relation <x> lonely;
        rule noop { lonely = lonely; }
    ";
    let compiled = compile_auto(src).expect("auto mode must pin");
    assert!(compiled.assignment.auto_pins >= 1);
    let mut exec = Executor::new(&compiled).unwrap();
    exec.set_input("lonely", &[vec![0]]).unwrap();
    exec.run("noop").unwrap();
    assert_eq!(exec.tuples("lonely").unwrap(), vec![vec![0]]);
}

#[test]
fn auto_mode_handles_figure4_without_annotations() {
    // Strip every physical-domain annotation from Fig. 4: auto mode plays
    // the programmer's role.
    let src = FIG4
        .replace(":T1", "")
        .replace(":S1", "")
        .replace(":T2", "")
        .replace(":M1", "")
        .replace(":T3", "")
        .replace("physdom T1, S1, T2, M1, T3;", "");
    let compiled = compile_auto(&src).expect("auto mode must succeed");
    assert!(compiled.assignment.auto_pins >= 4);
    let mut exec = Executor::new(&compiled).unwrap();
    exec.set_input("receiverTypes", &[vec![1, 0], vec![1, 1]])
        .unwrap();
    exec.set_input("declaresMethod", &[vec![0, 0, 0], vec![1, 1, 1]])
        .unwrap();
    exec.set_input("extend", &[vec![1, 0]]).unwrap();
    exec.run("resolve").unwrap();
    assert_eq!(exec.tuples("answer").unwrap().len(), 2);
}

#[test]
fn deferred_domains_bound_at_runtime() {
    // Transitive closure over a deferred-size Node domain. As with any
    // BDD relational product, the composition needs a third physical
    // domain for the quantified middle attribute.
    let src = "
        domain Node;
        attribute src : Node;
        attribute dst : Node;
        attribute mid : Node;
        physdom N1, N2, N3;
        relation <src:N1, dst:N2> edge;
        relation <src:N1, dst:N2> reach;
        rule closure {
            reach = edge;
            <src:N1, dst:N2> old;
            do {
                old = reach;
                <src:N1, mid:N3> hop = (dst=>mid) reach;
                <src:N1, dst:N2> step = hop {mid} <> edge {src};
                reach = reach | step;
            } while (reach != old);
        }
    ";
    let compiled = compile(src).expect("closure program compiles");
    let mut exec = Executor::new(&compiled).unwrap();
    exec.bind_domain_size("Node", 16).unwrap();
    exec.set_input("edge", &[vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
    exec.run("closure").unwrap();
    let reach = exec.tuples("reach").unwrap();
    assert_eq!(reach.len(), 6, "full transitive closure of the chain");
    assert!(reach.contains(&vec![0, 3]));
}

#[test]
fn literal_with_annotation_pins_domain() {
    let src = "
        domain T { A, B };
        attribute x : T;
        physdom P9;
        relation <x> r;
        rule add { r = r | new { B => x:P9 }; }
    ";
    let compiled = compile(src).unwrap();
    // The literal's annotation flows to everything connected.
    assert_eq!(compiled.assignment.auto_pins, 0);
    let mut exec = Executor::new(&compiled).unwrap();
    exec.run("add").unwrap();
    assert_eq!(exec.tuples("r").unwrap(), vec![vec![1]]);
}

#[test]
fn full_constant_respects_domain_sizes() {
    let src = "
        domain T 5;
        attribute x : T;
        attribute y : T;
        physdom P1, P2;
        relation <x:P1, y:P2> all;
        rule fill { all = 1B; }
    ";
    let compiled = compile(src).unwrap();
    let mut exec = Executor::new(&compiled).unwrap();
    exec.run("fill").unwrap();
    assert_eq!(exec.tuples("all").unwrap().len(), 25, "5 x 5 valid tuples");
}

#[test]
fn while_loop_executes() {
    let src = "
        domain T { A, B, C };
        attribute x : T;
        physdom P1;
        relation <x:P1> work;
        relation <x:P1> done;
        rule drain {
            while (work != 0B) {
                done = done | work;
                work = work - work;
            }
        }
    ";
    let compiled = compile(src).unwrap();
    let mut exec = Executor::new(&compiled).unwrap();
    exec.set_input("work", &[vec![0], vec![2]]).unwrap();
    exec.run("drain").unwrap();
    assert_eq!(exec.tuples("done").unwrap(), vec![vec![0], vec![2]]);
    assert!(exec.tuples("work").unwrap().is_empty());
}

#[test]
fn emitted_java_roundtrip_structure() {
    // The generated-code view contains one RelationContainer per global
    // and per local, and the loop structure survives.
    let compiled = compile(FIG4).unwrap();
    let java = emit_java_like(&compiled);
    for name in ["receiverTypes", "declaresMethod", "extend", "answer", "toResolve", "resolved"] {
        assert!(
            java.contains(&format!("RelationContainer {name}")),
            "missing container for {name}"
        );
    }
    assert!(java.contains("} while (Jedd.v().notEquals"));
    // Every physical domain used in the program appears in the listing.
    for pd in ["T1", "S1", "T2", "M1"] {
        assert!(java.contains(pd), "physical domain {pd} not in listing");
    }
}

#[test]
fn compile_named_uses_filename_in_errors() {
    let src = "
        domain T { A };
        attribute x : T;
        physdom P1;
        relation <x> lonely;
        rule noop { lonely = lonely; }
    ";
    let err = jeddc::compile_named(src, "MyAnalysis.jedd").unwrap_err();
    assert!(err.to_string().contains("MyAnalysis.jedd"), "{err}");
}
