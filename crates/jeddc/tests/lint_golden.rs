//! Golden-file tests for the `jeddlint` passes (text and JSON renderings
//! on firing and silent fixtures), plus equivalence tests checking that
//! the advisory lints' suggested rewrites — applied by hand in paired
//! fixtures — leave the executed tuples identical. Advisories must only
//! ever talk about *how* a program computes, never *what*.

use jeddc::diag::{render_json, render_text};
use jeddc::lint::lint_program;

fn lint_output(src: &str) -> (String, String) {
    let prog = jeddc::parse::parse(src).expect("parse");
    let typed = jeddc::check::check_all(&prog).expect("check");
    let assignment = jeddc::assignc::assign(&typed, false).expect("assign");
    let diags = lint_program(&typed, Some(&assignment));
    (render_text(&diags), render_json(&diags))
}

/// Compares against the `.txt` golden (exact bytes) and, when given, the
/// `.json` golden (modulo the shell's trailing newline).
fn check_golden(src: &str, txt: &str, json: Option<&str>) {
    let (text, js) = lint_output(src);
    assert_eq!(text, txt, "text golden mismatch");
    if let Some(j) = json {
        assert_eq!(js, j.trim_end_matches('\n'), "json golden mismatch");
    }
}

macro_rules! golden {
    ($name:ident, $fixture:literal, fire) => {
        #[test]
        fn $name() {
            check_golden(
                include_str!(concat!("fixtures/lint/", $fixture, ".jedd")),
                include_str!(concat!("fixtures/lint/", $fixture, ".txt")),
                Some(include_str!(concat!("fixtures/lint/", $fixture, ".json"))),
            );
            // A firing fixture's golden must actually contain its lint.
            let txt = include_str!(concat!("fixtures/lint/", $fixture, ".txt"));
            assert!(!txt.is_empty(), "fire fixture produced no diagnostics");
        }
    };
    ($name:ident, $fixture:literal, silent) => {
        #[test]
        fn $name() {
            check_golden(
                include_str!(concat!("fixtures/lint/", $fixture, ".jedd")),
                include_str!(concat!("fixtures/lint/", $fixture, ".txt")),
                None,
            );
        }
    };
}

golden!(definite_assignment_fire, "definite_assignment_fire", fire);
golden!(
    definite_assignment_silent,
    "definite_assignment_silent",
    silent
);
golden!(dead_store_fire, "dead_store_fire", fire);
golden!(dead_store_silent, "dead_store_silent", silent);
golden!(never_read_fire, "never_read_fire", fire);
golden!(never_read_silent, "never_read_silent", silent);
golden!(redundant_op_fire, "redundant_op_fire", fire);
golden!(redundant_op_silent, "redundant_op_silent", silent);
golden!(replace_cost_fire, "replace_cost_fire", fire);
golden!(replace_cost_silent, "replace_cost_silent", silent);
golden!(projection_pushdown_fire, "projection_pushdown_fire", fire);
golden!(
    projection_pushdown_silent,
    "projection_pushdown_silent",
    silent
);

#[test]
fn silent_fixtures_have_empty_goldens() {
    for txt in [
        include_str!("fixtures/lint/definite_assignment_silent.txt"),
        include_str!("fixtures/lint/dead_store_silent.txt"),
        include_str!("fixtures/lint/never_read_silent.txt"),
        include_str!("fixtures/lint/redundant_op_silent.txt"),
        include_str!("fixtures/lint/replace_cost_silent.txt"),
        include_str!("fixtures/lint/projection_pushdown_silent.txt"),
    ] {
        assert!(txt.is_empty());
    }
}

// ---------------------------------------------------------------------
// Advisory rewrites preserve semantics.

/// Runs `rule` in both programs with the same inputs and asserts that
/// every named output relation holds identical tuples afterwards.
fn assert_same_tuples(
    before: &str,
    after: &str,
    rule: &str,
    inputs: &[(&str, &[Vec<u64>])],
    outputs: &[&str],
) {
    let run = |src: &str| -> Vec<(String, Vec<Vec<u64>>)> {
        let compiled = jeddc::compile(src).expect("compile");
        let mut exec = jeddc::Executor::new(&compiled).expect("executor");
        for (name, tuples) in inputs {
            exec.set_input(name, tuples).expect("set_input");
        }
        exec.run(rule).expect("run");
        outputs
            .iter()
            .map(|o| {
                let mut t = exec.tuples(o).expect("tuples");
                t.sort();
                (o.to_string(), t)
            })
            .collect()
    };
    assert_eq!(run(before), run(after), "rewrite changed the output tuples");
}

#[test]
fn pushdown_rewrite_is_tuple_identical() {
    assert_same_tuples(
        include_str!("fixtures/lint/projection_pushdown_fire.jedd"),
        include_str!("fixtures/lint/projection_pushdown_silent.jedd"),
        "r",
        &[
            ("gab", &[vec![0, 1], vec![1, 0], vec![1, 1]]),
            ("gbc", &[vec![1, 0], vec![0, 0]]),
        ],
        &["gac"],
    );
}

#[test]
fn redundant_op_rewrite_is_tuple_identical() {
    assert_same_tuples(
        include_str!("fixtures/lint/rewrite_redundant_before.jedd"),
        include_str!("fixtures/lint/rewrite_redundant_after.jedd"),
        "r",
        &[
            ("gab", &[vec![0, 0], vec![0, 1], vec![1, 1]]),
            ("gbc", &[vec![1, 1]]),
        ],
        &["gac"],
    );
}

#[test]
fn replace_cost_rewrite_is_tuple_identical() {
    // The ascription change the advisory suggests (s's `a` from P3 to P1)
    // only moves data between physical domains; the relation's contents
    // are untouched.
    assert_same_tuples(
        include_str!("fixtures/lint/replace_cost_fire.jedd"),
        include_str!("fixtures/lint/replace_cost_silent.jedd"),
        "mv",
        &[("r", &[vec![0, 1], vec![1, 0]])],
        &["s"],
    );
}

#[test]
fn rewrite_pairs_really_differ_in_lint_output() {
    // Guard against fixture drift: the "before" side of each pair fires
    // its advisory, the "after" side does not.
    let fires = |src: &str, lint: &str| {
        let prog = jeddc::parse::parse(src).expect("parse");
        let typed = jeddc::check::check_all(&prog).expect("check");
        let assignment = jeddc::assignc::assign(&typed, false).expect("assign");
        lint_program(&typed, Some(&assignment))
            .iter()
            .any(|d| d.lint == Some(lint))
    };
    let cases = [
        (
            include_str!("fixtures/lint/projection_pushdown_fire.jedd"),
            include_str!("fixtures/lint/projection_pushdown_silent.jedd"),
            "projection-pushdown",
        ),
        (
            include_str!("fixtures/lint/rewrite_redundant_before.jedd"),
            include_str!("fixtures/lint/rewrite_redundant_after.jedd"),
            "redundant-op",
        ),
        (
            include_str!("fixtures/lint/replace_cost_fire.jedd"),
            include_str!("fixtures/lint/replace_cost_silent.jedd"),
            "replace-cost",
        ),
    ];
    for (before, after, lint) in cases {
        assert!(fires(before, lint), "{lint}: before side should fire");
        assert!(!fires(after, lint), "{lint}: after side should be silent");
    }
}
