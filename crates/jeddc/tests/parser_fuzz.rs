//! Robustness: the front end must return errors, never panic, on
//! arbitrary input — including near-miss programs produced by mutating
//! valid source. Inputs are generated with the in-tree seeded PRNG so
//! every run exercises the same cases.

use jedd_bdd::rng::XorShift64Star;

const VALID: &str = "
    domain T { A, B };
    attribute a : T;
    attribute b : T;
    physdom P1, P2;
    relation <a:P1, b:P2> r;
    rule t { r = (a=>b, b=>a) r | r & r - 0B; }
";

const CASES: u64 = 256;

/// Arbitrary character soup: compile() returns, never panics.
#[test]
fn arbitrary_input_never_panics() {
    let mut rng = XorShift64Star::new(0xf0221);
    for _ in 0..CASES {
        let len = rng.gen_index(0..201);
        let src: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline.
                match rng.gen_range(0..96) {
                    95 => '\n',
                    c => (b' ' + c as u8) as char,
                }
            })
            .collect();
        let _ = jeddc::compile(&src);
    }
}

/// Token-ish soup biased toward the grammar's vocabulary.
#[test]
fn token_soup_never_panics() {
    const VOCAB: [&str; 27] = [
        "domain",
        "attribute",
        "physdom",
        "relation",
        "rule",
        "do",
        "while",
        "new",
        "0B",
        "1B",
        "><",
        "<>",
        "=>",
        "{",
        "}",
        "<",
        ">",
        "(",
        ")",
        ";",
        ",",
        ":",
        "=",
        "|",
        "x",
        "T",
        "42",
    ];
    let mut rng = XorShift64Star::new(0xf0222);
    for _ in 0..CASES {
        let n = rng.gen_index(0..60);
        let words: Vec<&str> = (0..n).map(|_| *rng.choose(&VOCAB)).collect();
        let src = words.join(" ");
        let _ = jeddc::compile(&src);
    }
}

/// Single-character mutations of a valid program: always a clean result
/// (Ok or Err), never a panic.
#[test]
fn mutated_valid_program_never_panics() {
    let mut rng = XorShift64Star::new(0xf0223);
    for _ in 0..CASES {
        let pos = rng.gen_index(0..200);
        let ch = (b' ' + rng.gen_range(0..95) as u8) as char;
        let mut src: Vec<char> = VALID.chars().collect();
        if pos < src.len() {
            src[pos] = ch;
        }
        let mutated: String = src.into_iter().collect();
        let _ = jeddc::compile(&mutated);
    }
}

#[test]
fn valid_base_program_compiles() {
    jeddc::compile(VALID).expect("the fuzz base program is valid");
}
