//! Robustness: the front end must return errors, never panic, on
//! arbitrary input — including near-miss programs produced by mutating
//! valid source.

use proptest::prelude::*;

const VALID: &str = "
    domain T { A, B };
    attribute a : T;
    attribute b : T;
    physdom P1, P2;
    relation <a:P1, b:P2> r;
    rule t { r = (a=>b, b=>a) r | r & r - 0B; }
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary character soup: compile() returns, never panics.
    #[test]
    fn arbitrary_input_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = jeddc::compile(&src);
    }

    /// Token-ish soup biased toward the grammar's vocabulary.
    #[test]
    fn token_soup_never_panics(words in proptest::collection::vec(
        prop_oneof![
            Just("domain".to_string()),
            Just("attribute".to_string()),
            Just("physdom".to_string()),
            Just("relation".to_string()),
            Just("rule".to_string()),
            Just("do".to_string()),
            Just("while".to_string()),
            Just("new".to_string()),
            Just("0B".to_string()),
            Just("1B".to_string()),
            Just("><".to_string()),
            Just("<>".to_string()),
            Just("=>".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just(";".to_string()),
            Just(",".to_string()),
            Just(":".to_string()),
            Just("=".to_string()),
            Just("|".to_string()),
            Just("x".to_string()),
            Just("T".to_string()),
            Just("42".to_string()),
        ],
        0..60,
    )) {
        let src = words.join(" ");
        let _ = jeddc::compile(&src);
    }

    /// Single-character mutations of a valid program: always a clean
    /// result (Ok or Err), never a panic.
    #[test]
    fn mutated_valid_program_never_panics(pos in 0usize..200, ch in "[ -~]") {
        let mut src: Vec<char> = VALID.chars().collect();
        if pos < src.len() {
            src[pos] = ch.chars().next().unwrap();
        }
        let mutated: String = src.into_iter().collect();
        let _ = jeddc::compile(&mutated);
    }
}

#[test]
fn valid_base_program_compiles() {
    jeddc::compile(VALID).expect("the fuzz base program is valid");
}
