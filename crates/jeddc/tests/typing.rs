//! Static typing tests: one positive and at least one negative test per
//! rule of the paper's Fig. 6, enforced by the jeddc checker.

use jeddc::{compile, JeddcError};

/// Shared declarations for the typing tests.
const DECLS: &str = "
    domain T { A, B };
    domain U { X };
    attribute a : T;
    attribute b : T;
    attribute c : T;
    attribute d : T;
    attribute u : U;
    physdom P1, P2, P3;
    relation <a:P1> ra;
    relation <a:P1, b:P2> rab;
    relation <a:P1, b:P2, c:P3> rabc;
    relation <b:P1> rb;
    relation <c:P1, d:P2> rcd;
    relation <u:P3> ru;
";

fn with_rule(body: &str) -> String {
    format!("{DECLS}\nrule t {{ {body} }}")
}

fn compile_err(body: &str) -> String {
    match compile(&with_rule(body)) {
        Err(JeddcError::Compile(e)) => e.message,
        Err(JeddcError::Assign(e)) => panic!("expected a type error, got assignment error: {e}"),
        Ok(_) => panic!("expected a type error for `{body}`"),
    }
}

fn compile_ok(body: &str) {
    if let Err(e) = compile(&with_rule(body)) {
        panic!("`{body}` should type check, got: {e}");
    }
}

// --- [Literal] -------------------------------------------------------

#[test]
fn literal_accepts_distinct_attributes() {
    compile_ok("rab = new { A => a, B => b };");
}

#[test]
fn literal_rejects_duplicate_attribute() {
    let msg = compile_err("rab = new { A => a, B => a };");
    assert!(msg.contains("twice"), "{msg}");
}

#[test]
fn literal_rejects_unknown_element() {
    let msg = compile_err("ra = new { Z => a };");
    assert!(msg.contains("not an element"), "{msg}");
}

// --- [Project] -------------------------------------------------------

#[test]
fn project_removes_attribute() {
    compile_ok("ra = (b=>) rab;");
}

#[test]
fn project_requires_attribute_in_schema() {
    let msg = compile_err("rab = (c=>) rab;");
    assert!(msg.contains("not in operand schema"), "{msg}");
}

// --- [Rename] --------------------------------------------------------

#[test]
fn rename_swaps_attribute() {
    compile_ok("rb = (a=>b) ra;");
}

#[test]
fn rename_rejects_target_already_present() {
    // (a=>b) on <a, b> would duplicate b.
    let msg = compile_err("rab = (a=>b) rab;");
    assert!(msg.contains("already present"), "{msg}");
}

#[test]
fn rename_rejects_cross_domain_target() {
    let msg = compile_err("ru = (a=>u) ra;");
    assert!(msg.contains("different domains"), "{msg}");
}

#[test]
fn simultaneous_renames_may_exchange() {
    // (a=>b, b=>a) is legal: replacements are simultaneous.
    compile_ok("rab = (a=>b, b=>a) rab;");
}

// --- [Copy] ----------------------------------------------------------

#[test]
fn copy_duplicates_attribute() {
    compile_ok("rab = (a=>a b) ra;");
}

#[test]
fn copy_rejects_equal_targets() {
    let msg = compile_err("rab = (a=>b b) ra;");
    assert!(msg.contains("already present"), "{msg}");
}

#[test]
fn copy_rejects_target_clash_with_schema() {
    let msg = compile_err("rabc = (a=>b c) rab;");
    assert!(msg.contains("already present"), "{msg}");
}

// --- [SetOp] ---------------------------------------------------------

#[test]
fn setop_same_schema_ok() {
    compile_ok("rab = rab | rab & rab - rab;");
}

#[test]
fn setop_rejects_schema_mismatch() {
    let msg = compile_err("rab = rab | ra;");
    assert!(msg.contains("schema mismatch"), "{msg}");
}

#[test]
fn setop_constants_adapt() {
    compile_ok("rab = rab | 0B;");
    compile_ok("rab = 0B | rab;");
    compile_ok("rab = rab & 1B;");
}

// --- [Assign] --------------------------------------------------------

#[test]
fn assign_same_schema_ok() {
    compile_ok("rab = rab;");
    compile_ok("rab |= rab;");
    compile_ok("rab &= rab;");
    compile_ok("rab -= rab;");
}

#[test]
fn assign_rejects_schema_mismatch() {
    let msg = compile_err("ra = rab;");
    assert!(msg.contains("schema mismatch"), "{msg}");
}

#[test]
fn assign_constant_ok() {
    compile_ok("rab = 0B; rab = 1B;");
}

// --- [Compare] -------------------------------------------------------

#[test]
fn compare_same_schema_ok() {
    compile_ok("if (rab == rab) { ra = ra; }");
    compile_ok("if (rab != 0B) { ra = ra; }");
    compile_ok("if (0B != rab) { ra = ra; }");
}

#[test]
fn compare_rejects_schema_mismatch() {
    let msg = compile_err("if (rab == ra) { ra = ra; }");
    assert!(msg.contains("schema mismatch"), "{msg}");
}

#[test]
fn compare_two_constants_needs_context() {
    let msg = compile_err("if (0B == 1B) { ra = ra; }");
    assert!(msg.contains("cannot infer"), "{msg}");
}

// --- [Join] ----------------------------------------------------------

#[test]
fn join_keeps_compared_attributes() {
    // rab{b} >< rcd{c}: result <a, b, d>.
    compile_ok("<a:P1, b:P2, d:P3> j = rab {b} >< rcd {c};");
}

#[test]
fn join_rejects_unequal_list_lengths() {
    let msg = compile_err("<a:P1, b:P2, d:P3> j = rab {b} >< rcd {c, d};");
    assert!(msg.contains("different lengths"), "{msg}");
}

#[test]
fn join_rejects_missing_attribute() {
    let msg = compile_err("<a:P1, b:P2, d:P3> j = rab {c} >< rcd {c};");
    assert!(msg.contains("not in operand schema"), "{msg}");
}

#[test]
fn join_rejects_duplicate_compared() {
    let msg = compile_err("<a:P1, b:P2, d:P3> j = rab {b, b} >< rcd {c, d};");
    assert!(msg.contains("compared twice"), "{msg}");
}

#[test]
fn join_rejects_overlapping_result() {
    // Both sides keep `a`.
    let msg = compile_err("<a:P1, b:P2> j = rab {b} >< rab {b};");
    assert!(msg.contains("share attributes"), "{msg}");
}

#[test]
fn join_rejects_cross_domain_comparison() {
    let msg = compile_err("<a:P1, b:P2> j = rab {b} >< ru {u};");
    assert!(msg.contains("different domains"), "{msg}");
}

// --- [Compose] -------------------------------------------------------

#[test]
fn compose_projects_compared_attributes() {
    // rab{b} <> rcd{c}: result <a, d>. As in any BDD relational product,
    // the compared attribute needs a physical domain distinct from every
    // kept attribute, so it is staged onto P3 first.
    compile_ok("<a:P1, b:P3> hop = rab; <a:P1, d:P2> j = hop {b} <> rcd {c};");
}

#[test]
fn compose_without_a_free_domain_is_an_assignment_conflict() {
    // Without the staging, the merged attribute has only P1/P2 reachable,
    // both taken by kept attributes: a *conflict*, not a type error —
    // reported in the paper's §3.3.3 format.
    let err = compile(&with_rule("<a:P1, d:P2> j = rab {b} <> rcd {c};")).unwrap_err();
    let JeddcError::Assign(e) = err else {
        panic!("expected an assignment conflict")
    };
    assert!(e.to_string().contains("Conflict between"), "{e}");
}

#[test]
fn compose_rejects_overlap_of_kept_attributes() {
    // rabc{c} <> rcd{c} keeps a,b / d — fine; but rab{a} <> rab{a} keeps
    // b on both sides.
    let msg = compile_err("<b:P1> j = rab {a} <> rab {a};");
    assert!(msg.contains("share attributes"), "{msg}");
}

// --- name resolution and structure ------------------------------------

#[test]
fn unknown_relation_reported() {
    let msg = compile_err("nosuch = ra;");
    assert!(msg.contains("unknown relation"), "{msg}");
}

#[test]
fn unknown_attribute_in_schema_reported() {
    let err = compile(&format!("{DECLS}\nrelation <zz:P1> bad;")).unwrap_err();
    assert!(err.to_string().contains("unknown attribute"), "{err}");
}

#[test]
fn duplicate_rule_rejected() {
    let err = compile(&format!("{DECLS}\nrule r {{ ra = ra; }}\nrule r {{ ra = ra; }}"))
        .unwrap_err();
    assert!(err.to_string().contains("duplicate rule"), "{err}");
}

#[test]
fn locals_shadow_globals() {
    compile_ok("<a:P2> ra = 0B; ra = ra | new { A => a };");
}

#[test]
fn local_initialiser_must_match_declared_schema() {
    let msg = compile_err("<a:P1, b:P2> x = ra;");
    assert!(msg.contains("schema mismatch"), "{msg}");
}

// --- multi-error accumulation ----------------------------------------

#[test]
fn check_all_reports_every_independent_error() {
    let src = with_rule(
        "ra = nosuch;\n        rab = ra;\n        <a:P1> x = rb;\n        x = new { A => a };",
    );
    let prog = jeddc::parse::parse(&src).unwrap();
    let errs = jeddc::check::check_all(&prog).unwrap_err();
    // Three independent errors: the unknown relation, the ra/rab schema
    // mismatch, and the x/rb initialiser mismatch. The final statement
    // (a correct use of the recovered local `x`) adds none.
    assert_eq!(errs.len(), 3, "{errs:?}");
    assert!(errs[0].message.contains("unknown relation `nosuch`"), "{errs:?}");
    assert!(errs[1].message.contains("schema mismatch"), "{errs:?}");
    assert!(errs[2].message.contains("schema mismatch"), "{errs:?}");
    // Errors come back in source order.
    assert!(errs[0].pos.line < errs[1].pos.line && errs[1].pos.line < errs[2].pos.line);
}

#[test]
fn check_first_error_matches_check_all_head() {
    let src = with_rule("ra = nosuch;\n        rab = ra;");
    let prog = jeddc::parse::parse(&src).unwrap();
    let first = jeddc::check::check(&prog).unwrap_err();
    let all = jeddc::check::check_all(&prog).unwrap_err();
    assert_eq!(first, all[0]);
    assert_eq!(all.len(), 2);
}

#[test]
fn bad_local_schema_does_not_cascade() {
    // The local with the unknown attribute is still declared, so the
    // statement using it reports a mismatch against the empty schema
    // rather than an `unknown relation` storm.
    let src = with_rule("<zz:P1> x = 0B;\n        ra = ra;");
    let prog = jeddc::parse::parse(&src).unwrap();
    let errs = jeddc::check::check_all(&prog).unwrap_err();
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert!(errs[0].message.contains("unknown attribute `zz`"), "{errs:?}");
}
