//! Executor edge cases: domain binding, input validation, rule errors and
//! replace accounting.

use jeddc::{compile, Executor};

const SRC: &str = "
    domain T { A, B, C };
    domain N;
    attribute x : T;
    attribute y : T;
    attribute n : N;
    physdom P1, P2, P3;
    relation <x:P1, y:P2> r;
    relation <n:P3> s;
    rule swap { r = (x=>y, y=>x) r; }
    rule clear { r = 0B; }
";

fn exec() -> Executor {
    let compiled = compile(SRC).unwrap();
    Executor::new(&compiled).unwrap()
}

#[test]
fn unbound_deferred_domain_reported() {
    let mut e = exec();
    let err = e.run("swap").unwrap_err();
    assert!(err.to_string().contains("has no size"), "{err}");
}

#[test]
fn binding_after_prepare_rejected() {
    let mut e = exec();
    e.bind_domain_size("N", 4).unwrap();
    e.run("clear").unwrap();
    let err = e.bind_domain_size("N", 8).unwrap_err();
    assert!(err.to_string().contains("after preparation"), "{err}");
}

#[test]
fn unknown_names_reported() {
    let mut e = exec();
    e.bind_domain_size("N", 4).unwrap();
    assert!(e.bind_domain_size("Nope", 4).is_err());
    assert!(e.set_input("nope", &[]).is_err());
    assert!(e.run("nope").is_err());
    assert!(e.tuples("nope").is_err());
}

#[test]
fn out_of_range_input_rejected() {
    let mut e = exec();
    e.bind_domain_size("N", 4).unwrap();
    let err = e.set_input("r", &[vec![0, 7]]).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn swap_exchanges_columns() {
    let mut e = exec();
    e.bind_domain_size("N", 4).unwrap();
    e.set_input("r", &[vec![0, 1], vec![2, 2]]).unwrap();
    e.run("swap").unwrap();
    let mut got = e.tuples("r").unwrap();
    got.sort();
    assert_eq!(got, vec![vec![1, 0], vec![2, 2]]);
    // A simultaneous exchange costs replace work; the executor counts it.
    assert!(e.replaces > 0);
}

#[test]
fn rerunning_rules_is_idempotent_for_clear() {
    let mut e = exec();
    e.bind_domain_size("N", 4).unwrap();
    e.set_input("r", &[vec![0, 0]]).unwrap();
    e.run("clear").unwrap();
    e.run("clear").unwrap();
    assert!(e.tuples("r").unwrap().is_empty());
}

#[test]
fn element_labels_resolve_in_literals() {
    let src = "
        domain T { A, B, C };
        attribute x : T;
        physdom P1;
        relation <x:P1> r;
        rule add { r = r | new { C => x }; }
    ";
    let compiled = compile(src).unwrap();
    let mut e = Executor::new(&compiled).unwrap();
    e.run("add").unwrap();
    assert_eq!(e.tuples("r").unwrap(), vec![vec![2]]);
}

#[test]
fn bind_domain_elements_enables_labels() {
    let src = "
        domain T;
        attribute x : T;
        physdom P1;
        relation <x:P1> r;
        rule add { r = r | new { beta => x }; }
    ";
    let compiled = compile(src).unwrap();
    let mut e = Executor::new(&compiled).unwrap();
    e.bind_domain_elements("T", &["alpha", "beta"]).unwrap();
    e.run("add").unwrap();
    assert_eq!(e.tuples("r").unwrap(), vec![vec![1]]);
}

#[test]
fn unresolvable_label_reported_at_runtime() {
    let src = "
        domain T;
        attribute x : T;
        physdom P1;
        relation <x:P1> r;
        rule add { r = r | new { gamma => x }; }
    ";
    let compiled = compile(src).unwrap();
    let mut e = Executor::new(&compiled).unwrap();
    e.bind_domain_size("T", 2).unwrap();
    let err = e.run("add").unwrap_err();
    assert!(err.to_string().contains("not an element"), "{err}");
}
