//! Profiling hooks.
//!
//! The relational layer emits one [`OpEvent`] per operation when a
//! [`ProfileSink`] is installed on the [`crate::Universe`]. The
//! `jedd-runtime` crate aggregates these into the browsable HTML profile
//! the paper describes in §4.3.

/// One relational operation as observed by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct OpEvent {
    /// Operation name (`union`, `join`, `compose`, `replace`, ...).
    pub op: &'static str,
    /// The source site executing the operation (set via
    /// [`crate::Universe::set_site`]); empty when unknown.
    pub site: String,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
    /// Node count of the largest operand BDD.
    pub operand_nodes: usize,
    /// Node count of the result BDD.
    pub result_nodes: usize,
    /// Nodes per level of the result BDD ("shape", paper §4.3), recorded
    /// when the sink requests shapes.
    pub shape: Option<Vec<usize>>,
}

/// A consumer of profile events.
pub trait ProfileSink {
    /// Receives one event per relational operation.
    fn record(&self, event: &OpEvent);

    /// When true, the relational layer also computes and attaches the
    /// result BDD's per-level shape (costlier).
    fn wants_shapes(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    struct Collector(RefCell<Vec<OpEvent>>);
    impl ProfileSink for Collector {
        fn record(&self, event: &OpEvent) {
            self.0.borrow_mut().push(event.clone());
        }
    }

    #[test]
    fn sink_receives_events() {
        let c = Collector(RefCell::new(Vec::new()));
        c.record(&OpEvent {
            op: "union",
            site: "test".into(),
            nanos: 5,
            operand_nodes: 1,
            result_nodes: 2,
            shape: None,
        });
        assert_eq!(c.0.borrow().len(), 1);
        assert!(!c.wants_shapes());
    }
}
