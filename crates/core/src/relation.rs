//! The `Relation` type: Jedd's database-style relation abstraction over
//! BDDs (paper §2.1–§2.2).

use crate::error::JeddError;
use crate::universe::{AttrId, PhysDomId, Universe};
use jedd_bdd::Bdd;
use std::fmt;
use std::time::Instant;

/// A relation: a set of tuples over a schema of attributes, each attribute
/// stored in a physical domain of BDD variables.
///
/// Relations are value types (cloning is cheap — it shares the underlying
/// BDD). All operations validate the typing rules of the paper's Fig. 6
/// dynamically and return [`JeddError`] on violation.
///
/// # Examples
///
/// ```
/// use jedd_core::{Relation, Universe};
/// # fn main() -> Result<(), jedd_core::JeddError> {
/// let u = Universe::new();
/// let ty = u.add_domain_with_elements("Type", &["A", "B"]);
/// let sig = u.add_domain_with_elements("Signature", &["foo()", "bar()"]);
/// let t1 = u.add_physical_domain("T1", 1);
/// let s1 = u.add_physical_domain("S1", 1);
/// let rectype = u.add_attribute("type", ty);
/// let signature = u.add_attribute("signature", sig);
///
/// let mut r = Relation::empty(&u, &[(rectype, t1), (signature, s1)])?;
/// let t = Relation::tuple(&u, &[(rectype, t1, 1), (signature, s1, 0)])?;
/// r = r.union(&t)?;
/// assert_eq!(r.size(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Relation {
    pub(crate) universe: Universe,
    /// Sorted by `AttrId`.
    pub(crate) schema: Vec<(AttrId, PhysDomId)>,
    pub(crate) bdd: Bdd,
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let attrs: Vec<String> = self
            .schema
            .iter()
            .map(|&(a, p)| {
                format!(
                    "{}:{}",
                    self.universe.attribute_name(a),
                    self.universe.physdom_name(p)
                )
            })
            .collect();
        write!(f, "Relation<{}>[{} tuples]", attrs.join(", "), self.size())
    }
}

impl Relation {
    /// Validates and normalises a schema: sorted by attribute, no
    /// duplicate attributes, no shared physical domains, every attribute
    /// fits its physical domain.
    pub(crate) fn check_schema(
        universe: &Universe,
        schema: &[(AttrId, PhysDomId)],
        op: &'static str,
    ) -> Result<Vec<(AttrId, PhysDomId)>, JeddError> {
        let mut s = schema.to_vec();
        s.sort_by_key(|&(a, _)| a);
        for w in s.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(JeddError::DuplicateAttribute {
                    attribute: universe.attribute_name(w[0].0),
                    op,
                });
            }
        }
        let mut pds: Vec<PhysDomId> = s.iter().map(|&(_, p)| p).collect();
        pds.sort_unstable();
        for w in pds.windows(2) {
            if w[0] == w[1] {
                // Two attributes of one expression in the same physical
                // domain — the paper's [conflict] constraint (§3.3.2).
                let names: Vec<String> = s
                    .iter()
                    .filter(|&&(_, p)| p == w[0])
                    .map(|&(a, _)| universe.attribute_name(a))
                    .collect();
                return Err(JeddError::DuplicateAttribute {
                    attribute: format!(
                        "physical domain {} holds {}",
                        universe.physdom_name(w[0]),
                        names.join(" and ")
                    ),
                    op,
                });
            }
        }
        for &(a, p) in &s {
            universe.check_fits(a, p)?;
        }
        Ok(s)
    }

    /// The empty relation (`0B`) with the given schema.
    ///
    /// # Errors
    ///
    /// Returns an error for duplicate attributes, shared physical domains
    /// or undersized physical domains.
    pub fn empty(
        universe: &Universe,
        schema: &[(AttrId, PhysDomId)],
    ) -> Result<Relation, JeddError> {
        let schema = Self::check_schema(universe, schema, "empty")?;
        Ok(Relation {
            universe: universe.clone(),
            schema,
            bdd: universe.bdd_manager().constant_false(),
        })
    }

    /// Reassembles a relation from its parts: a schema and an
    /// already-constructed BDD over the universe's manager. This is the
    /// constructor the snapshot layer uses after importing a node table —
    /// unlike [`Relation::from_tuples`] it does not re-encode anything, so
    /// the restored relation keeps the imported BDD (and thus its node
    /// identity).
    ///
    /// # Errors
    ///
    /// Returns the usual schema-validation errors, or
    /// [`JeddError::InvalidRestore`] if `bdd` belongs to a different
    /// manager than the universe's.
    pub fn from_parts(
        universe: &Universe,
        schema: &[(AttrId, PhysDomId)],
        bdd: Bdd,
    ) -> Result<Relation, JeddError> {
        let schema = Self::check_schema(universe, schema, "from_parts")?;
        if !universe.bdd_manager().owns(&bdd) {
            return Err(JeddError::InvalidRestore {
                detail: "from_parts: BDD belongs to a different manager".to_string(),
            });
        }
        Ok(Relation {
            universe: universe.clone(),
            schema,
            bdd,
        })
    }

    /// The full relation (`1B`): all tuples of valid objects under the
    /// schema.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Relation::empty`].
    pub fn full(
        universe: &Universe,
        schema: &[(AttrId, PhysDomId)],
    ) -> Result<Relation, JeddError> {
        let schema = Self::check_schema(universe, schema, "full")?;
        let mgr = universe.bdd_manager();
        let mut bdd = mgr.constant_true();
        for &(a, p) in &schema {
            bdd = universe
                .try_valid_codes(universe.attribute_domain(a), p)
                .and_then(|valid| bdd.try_and(&valid))
                .map_err(|e| universe.resource_exhausted("full", e))?;
        }
        Ok(Relation {
            universe: universe.clone(),
            schema,
            bdd,
        })
    }

    /// A single-tuple relation — Jedd's `new { obj => attr, ... }` literal
    /// (paper §2.1).
    ///
    /// # Errors
    ///
    /// Returns an error for schema violations or object indices outside
    /// their domain.
    pub fn tuple(
        universe: &Universe,
        fields: &[(AttrId, PhysDomId, u64)],
    ) -> Result<Relation, JeddError> {
        let schema: Vec<(AttrId, PhysDomId)> = fields.iter().map(|&(a, p, _)| (a, p)).collect();
        let schema = Self::check_schema(universe, &schema, "literal")?;
        let mgr = universe.bdd_manager();
        let mut bdd = mgr.constant_true();
        for &(a, p, value) in fields {
            let d = universe.attribute_domain(a);
            let size = universe.domain_size(d);
            if value >= size {
                return Err(JeddError::ObjectOutOfRange {
                    domain: universe.domain_name(d),
                    index: value,
                    size,
                });
            }
            bdd = mgr
                .try_encode_value(&universe.physdom_bits(p), value)
                .and_then(|enc| bdd.try_and(&enc))
                .map_err(|e| universe.resource_exhausted("literal", e))?;
        }
        Ok(Relation {
            universe: universe.clone(),
            schema,
            bdd,
        })
    }

    /// Builds a relation from explicit tuples; each tuple lists object
    /// indices in the column order of the `schema` argument *as given*
    /// (the stored schema, and the order used by [`Relation::tuples`] and
    /// [`Relation::contains`], is attribute-registration order).
    ///
    /// # Errors
    ///
    /// Returns an error for schema violations, wrong tuple arity or
    /// out-of-range objects.
    pub fn from_tuples(
        universe: &Universe,
        schema: &[(AttrId, PhysDomId)],
        tuples: &[Vec<u64>],
    ) -> Result<Relation, JeddError> {
        let sorted = Self::check_schema(universe, schema, "from_tuples")?;
        let mut rel = Relation {
            universe: universe.clone(),
            schema: sorted,
            bdd: universe.bdd_manager().constant_false(),
        };
        for t in tuples {
            assert_eq!(
                t.len(),
                schema.len(),
                "tuple arity {} does not match schema arity {}",
                t.len(),
                schema.len()
            );
            let fields: Vec<(AttrId, PhysDomId, u64)> = schema
                .iter()
                .zip(t.iter())
                .map(|(&(a, p), &v)| (a, p, v))
                .collect();
            let one = Relation::tuple(universe, &fields)?;
            rel.bdd = rel
                .bdd
                .try_or(&one.bdd)
                .map_err(|e| universe.resource_exhausted("from_tuples", e))?;
        }
        Ok(rel)
    }

    /// The universe this relation belongs to.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The schema as `(attribute, physical domain)` pairs, sorted by
    /// attribute.
    pub fn schema(&self) -> &[(AttrId, PhysDomId)] {
        &self.schema
    }

    /// The attributes of the schema.
    pub fn attributes(&self) -> Vec<AttrId> {
        self.schema.iter().map(|&(a, _)| a).collect()
    }

    /// The physical domain currently holding `attr`, if present.
    pub fn physdom_of(&self, attr: AttrId) -> Option<PhysDomId> {
        self.schema
            .iter()
            .find(|&&(a, _)| a == attr)
            .map(|&(_, p)| p)
    }

    /// The underlying BDD (shared).
    pub fn bdd(&self) -> &Bdd {
        &self.bdd
    }

    /// Number of BDD nodes representing this relation.
    pub fn node_count(&self) -> usize {
        self.bdd.node_count()
    }

    /// Nodes per BDD level (the profiler's "shape", §4.3).
    pub fn shape(&self) -> Vec<usize> {
        self.bdd.shape()
    }

    /// The node count of this relation in its universe's storage backend.
    ///
    /// For [`Backend::Bdd`](crate::Backend::Bdd) and
    /// [`Backend::Cbdd`](crate::Backend::Cbdd) this is
    /// [`Relation::node_count`] — the (chain-reduced) BDD the operations
    /// actually run on. For the zero-suppressed backends the tuple set is
    /// re-encoded into a fresh (plain or chain-reduced) ZDD and its node
    /// count is returned; this enumerates the tuples, so it is a
    /// measurement facility for benches and the profiler, not an
    /// operational path.
    pub fn storage_nodes(&self) -> usize {
        let backend = self.universe.backend();
        if !backend.is_zdd_storage() {
            return self.node_count();
        }
        let nvars = self.universe.bdd_manager().num_vars();
        let z = if backend.is_chained() {
            jedd_bdd::ZddManager::new_chained(nvars)
        } else {
            jedd_bdd::ZddManager::new(nvars)
        };
        let fields: Vec<Vec<u32>> = self
            .schema
            .iter()
            .map(|&(_, p)| self.universe.physdom_bits(p))
            .collect();
        let mut acc = jedd_bdd::ZddId::EMPTY;
        for tuple in self.tuples() {
            let field_refs: Vec<(&[u32], u64)> = fields
                .iter()
                .zip(&tuple)
                .map(|(bits, &v)| (bits.as_slice(), v))
                .collect();
            acc = z.union(acc, z.encode_tuple(&field_refs));
        }
        z.node_count(acc)
    }

    /// All BDD levels used by the schema's physical domains, sorted.
    pub(crate) fn schema_bits(&self) -> Vec<u32> {
        let mut bits: Vec<u32> = self
            .schema
            .iter()
            .flat_map(|&(_, p)| self.universe.physdom_bits(p))
            .collect();
        bits.sort_unstable();
        bits.dedup();
        bits
    }

    /// Number of tuples in the relation (Jedd's `size()`, §2.3).
    pub fn size(&self) -> u64 {
        if self.bdd.is_false() {
            return 0;
        }
        let bits = self.schema_bits();
        self.bdd.satcount_over(&bits) as u64
    }

    /// `true` if the relation contains no tuples (`== 0B`).
    pub fn is_empty(&self) -> bool {
        self.bdd.is_false()
    }

    fn names(&self) -> Vec<String> {
        self.schema
            .iter()
            .map(|&(a, _)| self.universe.attribute_name(a))
            .collect()
    }

    /// Checks set-operation compatibility ([SetOp]/[Compare] rules) and
    /// returns `other` re-assigned to `self`'s physical domains, inserting
    /// an implicit replace when the assignments differ.
    pub(crate) fn aligned(
        &self,
        other: &Relation,
        op: &'static str,
    ) -> Result<Relation, JeddError> {
        if !self.universe.same_universe(&other.universe) {
            return Err(JeddError::UniverseMismatch);
        }
        let same_attrs = self.schema.len() == other.schema.len()
            && self
                .schema
                .iter()
                .zip(other.schema.iter())
                .all(|(&(a, _), &(b, _))| a == b);
        if !same_attrs {
            return Err(JeddError::SchemaMismatch {
                left: self.names(),
                right: other.names(),
                op,
            });
        }
        let moves: Vec<(PhysDomId, PhysDomId)> = self
            .schema
            .iter()
            .zip(other.schema.iter())
            .filter(|(&(_, p_self), &(_, p_other))| p_self != p_other)
            .map(|(&(_, p_self), &(_, p_other))| (p_other, p_self))
            .collect();
        if moves.is_empty() {
            return Ok(other.clone());
        }
        self.universe.count_auto_replace();
        let bdd = self.profiled("replace", &[&other.bdd], || {
            crate::ops::apply_moves(&self.universe, &other.bdd, &moves)
        })?;
        Ok(Relation {
            universe: self.universe.clone(),
            schema: self.schema.clone(),
            bdd,
        })
    }

    /// Runs the fallible BDD work `f` and, when a profiler is installed,
    /// records an event. A kernel budget failure is wrapped in
    /// [`JeddError::ResourceExhausted`] carrying the operation name and
    /// the kernel counters at the point of failure.
    pub(crate) fn profiled(
        &self,
        op: &'static str,
        operands: &[&Bdd],
        f: impl FnOnce() -> Result<Bdd, jedd_bdd::BddError>,
    ) -> Result<Bdd, JeddError> {
        self.universe.count_op();
        if !self.universe.profiler_enabled() {
            return f().map_err(|e| self.universe.resource_exhausted(op, e));
        }
        let operand_nodes = operands.iter().map(|b| b.node_count()).max().unwrap_or(0);
        let start = Instant::now();
        let result = f().map_err(|e| self.universe.resource_exhausted(op, e))?;
        let nanos = start.elapsed().as_nanos() as u64;
        let shape = if self.universe.profiler_wants_shapes() {
            Some(result.shape())
        } else {
            None
        };
        let event = crate::profile::OpEvent {
            op,
            site: self.universe.current_site(),
            nanos,
            operand_nodes,
            result_nodes: result.node_count(),
            shape,
        };
        self.universe.profile(event);
        Ok(result)
    }

    /// Set union (`|` in Jedd).
    ///
    /// # Errors
    ///
    /// Returns [`JeddError::SchemaMismatch`] unless both operands have the
    /// same attribute set.
    pub fn union(&self, other: &Relation) -> Result<Relation, JeddError> {
        let o = self.aligned(other, "union")?;
        let bdd = self.profiled("union", &[&self.bdd, &o.bdd], || self.bdd.try_or(&o.bdd))?;
        Ok(Relation {
            universe: self.universe.clone(),
            schema: self.schema.clone(),
            bdd,
        })
    }

    /// Set intersection (`&` in Jedd).
    ///
    /// # Errors
    ///
    /// Returns [`JeddError::SchemaMismatch`] unless both operands have the
    /// same attribute set.
    pub fn intersect(&self, other: &Relation) -> Result<Relation, JeddError> {
        let o = self.aligned(other, "intersect")?;
        let bdd = self.profiled("intersect", &[&self.bdd, &o.bdd], || {
            self.bdd.try_and(&o.bdd)
        })?;
        Ok(Relation {
            universe: self.universe.clone(),
            schema: self.schema.clone(),
            bdd,
        })
    }

    /// Set difference (`-` in Jedd).
    ///
    /// # Errors
    ///
    /// Returns [`JeddError::SchemaMismatch`] unless both operands have the
    /// same attribute set.
    pub fn minus(&self, other: &Relation) -> Result<Relation, JeddError> {
        let o = self.aligned(other, "minus")?;
        let bdd = self.profiled("minus", &[&self.bdd, &o.bdd], || self.bdd.try_diff(&o.bdd))?;
        Ok(Relation {
            universe: self.universe.clone(),
            schema: self.schema.clone(),
            bdd,
        })
    }

    /// Relation equality (`==` in Jedd) — constant time on the aligned
    /// BDDs (§2.2.1).
    ///
    /// # Errors
    ///
    /// Returns [`JeddError::SchemaMismatch`] unless both operands have the
    /// same attribute set.
    pub fn equals(&self, other: &Relation) -> Result<bool, JeddError> {
        // Fast path: identical schema *and* identical physical assignment
        // means the canonical node ids are directly comparable — no
        // alignment replace, no profiler event, O(1).
        if self.universe.same_universe(&other.universe) && self.schema == other.schema {
            return Ok(self.bdd == other.bdd);
        }
        let o = self.aligned(other, "compare")?;
        Ok(self.bdd == o.bdd)
    }

    /// Set containment `self ⊆ other`, decided by the kernel's cached
    /// subset probe without materialising the difference BDD — the
    /// frontier-emptiness primitive of the semi-naive fixpoint engine.
    ///
    /// # Errors
    ///
    /// Returns [`JeddError::SchemaMismatch`] unless both operands have the
    /// same attribute set, or [`JeddError::ResourceExhausted`] on budget
    /// exhaustion.
    pub fn is_subset(&self, other: &Relation) -> Result<bool, JeddError> {
        let o = if self.universe.same_universe(&other.universe) && self.schema == other.schema {
            other.clone() // same assignment: probe the raw BDDs directly
        } else {
            self.aligned(other, "subset")?
        };
        self.universe.count_op();
        self.bdd
            .try_is_subset(&o.bdd)
            .map_err(|e| self.universe.resource_exhausted("subset", e))
    }

    /// Re-assigns attributes to the given physical domains, inserting the
    /// replace operation Jedd generates when an expression's assignment
    /// differs from its context's (paper §3.2.2).
    ///
    /// Attributes not mentioned keep their physical domain.
    ///
    /// # Errors
    ///
    /// Returns an error if an attribute is missing, the resulting schema
    /// reuses a physical domain, or the domain does not fit.
    pub fn with_assignment(
        &self,
        assignment: &[(AttrId, PhysDomId)],
    ) -> Result<Relation, JeddError> {
        let mut new_schema = self.schema.clone();
        for &(a, p) in assignment {
            match new_schema.iter_mut().find(|(sa, _)| *sa == a) {
                Some(slot) => slot.1 = p,
                None => {
                    return Err(JeddError::NoSuchAttribute {
                        attribute: self.universe.attribute_name(a),
                        op: "replace",
                    })
                }
            }
        }
        let new_schema = Self::check_schema(&self.universe, &new_schema, "replace")?;
        let moves: Vec<(PhysDomId, PhysDomId)> = self
            .schema
            .iter()
            .zip(new_schema.iter())
            .filter(|(&(_, p_old), &(_, p_new))| p_old != p_new)
            .map(|(&(_, p_old), &(_, p_new))| (p_old, p_new))
            .collect();
        let bdd = if moves.is_empty() {
            self.bdd.clone()
        } else {
            self.profiled("replace", &[&self.bdd], || {
                crate::ops::apply_moves(&self.universe, &self.bdd, &moves)
            })?
        };
        Ok(Relation {
            universe: self.universe.clone(),
            schema: new_schema,
            bdd,
        })
    }

    /// Returns the tuples of the relation as vectors of object indices in
    /// schema order — the basis of Jedd's relation iterators (§2.3).
    pub fn tuples(&self) -> Vec<Vec<u64>> {
        let bits = self.schema_bits();
        // Positions of each attribute's bits within `bits`.
        let layouts: Vec<Vec<usize>> = self
            .schema
            .iter()
            .map(|&(_, p)| {
                self.universe
                    .physdom_bits(p)
                    .iter()
                    .map(|b| bits.binary_search(b).expect("schema bit"))
                    .collect()
            })
            .collect();
        let mut out: Vec<Vec<u64>> = Vec::new();
        self.bdd.foreach_sat(&bits, |assignment| {
            let mut tuple = Vec::with_capacity(self.schema.len());
            for layout in &layouts {
                let mut v: u64 = 0;
                for &pos in layout {
                    v = (v << 1) | u64::from(assignment[pos]);
                }
                tuple.push(v);
            }
            out.push(tuple);
            true
        });
        out.sort();
        out.dedup();
        out
    }

    /// Renders the relation as lines of `{attr=label, ...}` — Jedd's
    /// `toString()` debugging aid (§2.3).
    pub fn display_tuples(&self) -> String {
        let mut lines = Vec::new();
        for t in self.tuples() {
            let fields: Vec<String> = self
                .schema
                .iter()
                .zip(t.iter())
                .map(|(&(a, _), &v)| {
                    let d = self.universe.attribute_domain(a);
                    format!(
                        "{}={}",
                        self.universe.attribute_name(a),
                        self.universe.element_name(d, v)
                    )
                })
                .collect();
            lines.push(format!("{{{}}}", fields.join(", ")));
        }
        lines.join("\n")
    }

    /// `true` if the relation contains the given tuple (object indices in
    /// schema order).
    pub fn contains(&self, tuple: &[u64]) -> bool {
        assert_eq!(tuple.len(), self.schema.len(), "tuple arity mismatch");
        let fields: Vec<(AttrId, PhysDomId, u64)> = self
            .schema
            .iter()
            .zip(tuple.iter())
            .map(|(&(a, p), &v)| (a, p, v))
            .collect();
        match Relation::tuple(&self.universe, &fields) {
            Ok(t) => t.bdd.and(&self.bdd) == t.bdd,
            Err(_) => false,
        }
    }
}
