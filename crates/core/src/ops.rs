//! Attribute operations (projection, renaming, copying) and the join and
//! composition operators (paper §2.2.2–§2.2.3, implementation §3.2.2).

use crate::error::JeddError;
use crate::relation::Relation;
use crate::universe::{AttrId, PhysDomId, Universe};
use jedd_bdd::{Bdd, BddError, Permutation};
use std::time::Instant;

/// One `left{left_attrs} <> right{right_attrs}` composition inside a
/// [`Relation::compose_batch`] call. Each job is validated and evaluated
/// exactly like the corresponding [`Relation::compose`].
#[derive(Clone, Copy)]
pub struct ComposeJob<'a> {
    /// Left operand.
    pub left: &'a Relation,
    /// Compared attributes of the left operand (projected away).
    pub left_attrs: &'a [AttrId],
    /// Right operand.
    pub right: &'a Relation,
    /// Compared attributes of the right operand (projected away).
    pub right_attrs: &'a [AttrId],
}

/// Moves attribute values between physical domains in one simultaneous
/// step: quantifies surplus source high bits, permutes the common low
/// bits, and re-constrains surplus target high bits to zero. All `moves`
/// are applied together so exchanges work.
///
/// Budget-respecting: returns the kernel error when the manager's
/// resource budget is exhausted mid-move.
pub(crate) fn apply_moves(
    universe: &Universe,
    bdd: &Bdd,
    moves: &[(PhysDomId, PhysDomId)],
) -> Result<Bdd, BddError> {
    let mgr = universe.bdd_manager();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut drop_bits: Vec<u32> = Vec::new();
    let mut zero_bits: Vec<u32> = Vec::new();
    for &(from_pd, to_pd) in moves {
        if from_pd == to_pd {
            continue;
        }
        let from = universe.physdom_bits(from_pd);
        let to = universe.physdom_bits(to_pd);
        let n = from.len().min(to.len());
        for i in 0..n {
            pairs.push((from[from.len() - n + i], to[to.len() - n + i]));
        }
        // Surplus source bits hold leading zeros of the value; quantify
        // them away before the permutation.
        drop_bits.extend_from_slice(&from[..from.len() - n]);
        // Surplus target bits must become leading zeros.
        zero_bits.extend_from_slice(&to[..to.len() - n]);
    }
    if pairs.is_empty() && drop_bits.is_empty() && zero_bits.is_empty() {
        return Ok(bdd.clone());
    }
    let mut result = if drop_bits.is_empty() {
        bdd.clone()
    } else {
        bdd.try_exists(&mgr.try_cube(&drop_bits)?)?
    };
    if !pairs.is_empty() {
        // `try_from_pairs` keeps the whole move fallible: a malformed
        // bit mapping surfaces as `BddError::InvalidPermutation` instead
        // of a panic inside the kernel.
        result = result.try_replace(&Permutation::try_from_pairs(&pairs)?)?;
    }
    for b in zero_bits {
        result = result.try_and(&mgr.try_nvar(b)?)?;
    }
    Ok(result)
}

impl Relation {
    /// Projects the given attributes *away* — Jedd's `(a=>) x` (the
    /// \[Project\] rule). Implemented as existential quantification over the
    /// attributes' physical domains (§3.2.2).
    ///
    /// # Errors
    ///
    /// Returns [`JeddError::NoSuchAttribute`] if an attribute is not in
    /// the schema.
    pub fn project_away(&self, attrs: &[AttrId]) -> Result<Relation, JeddError> {
        let mut bits: Vec<u32> = Vec::new();
        let mut new_schema = self.schema.clone();
        for &a in attrs {
            match self.physdom_of(a) {
                Some(p) => {
                    bits.extend(self.universe.physdom_bits(p));
                    new_schema.retain(|&(sa, _)| sa != a);
                }
                None => {
                    return Err(JeddError::NoSuchAttribute {
                        attribute: self.universe.attribute_name(a),
                        op: "project",
                    })
                }
            }
        }
        let mgr = self.universe.bdd_manager();
        let bdd = self.profiled("project", &[&self.bdd], || {
            self.bdd.try_exists(&mgr.try_cube(&bits)?)
        })?;
        Ok(Relation {
            universe: self.universe.clone(),
            schema: new_schema,
            bdd,
        })
    }

    /// Keeps only the given attributes, projecting everything else away.
    pub fn project_onto(&self, attrs: &[AttrId]) -> Result<Relation, JeddError> {
        for &a in attrs {
            if self.physdom_of(a).is_none() {
                return Err(JeddError::NoSuchAttribute {
                    attribute: self.universe.attribute_name(a),
                    op: "project",
                });
            }
        }
        let away: Vec<AttrId> = self
            .schema
            .iter()
            .map(|&(a, _)| a)
            .filter(|a| !attrs.contains(a))
            .collect();
        self.project_away(&away)
    }

    /// Renames attribute `from` to `to` — Jedd's `(from=>to) x` (the
    /// \[Rename\] rule). No BDD work is required: only the attribute →
    /// physical-domain mapping changes (§3.2.2).
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is absent, `to` already present, or the
    /// attributes draw from different domains.
    pub fn rename(&self, from: AttrId, to: AttrId) -> Result<Relation, JeddError> {
        let p = self.physdom_of(from).ok_or_else(|| JeddError::NoSuchAttribute {
            attribute: self.universe.attribute_name(from),
            op: "rename",
        })?;
        if from != to && self.physdom_of(to).is_some() {
            return Err(JeddError::DuplicateAttribute {
                attribute: self.universe.attribute_name(to),
                op: "rename",
            });
        }
        if self.universe.attribute_domain(from) != self.universe.attribute_domain(to) {
            return Err(JeddError::DomainMismatch {
                left: self.universe.attribute_name(from),
                right: self.universe.attribute_name(to),
            });
        }
        let mut schema = self.schema.clone();
        schema.retain(|&(a, _)| a != from);
        schema.push((to, p));
        schema.sort_by_key(|&(a, _)| a);
        self.universe.count_op();
        Ok(Relation {
            universe: self.universe.clone(),
            schema,
            bdd: self.bdd.clone(),
        })
    }

    /// Renames several attributes simultaneously (so exchanges like
    /// `a=>b, b=>a` work). Like [`Relation::rename`], no BDD work is
    /// required.
    ///
    /// # Errors
    ///
    /// Returns an error if a source attribute is absent or renamed twice,
    /// a target collides with the resulting schema, or domains mismatch.
    pub fn rename_many(&self, pairs: &[(AttrId, AttrId)]) -> Result<Relation, JeddError> {
        let mut schema = self.schema.clone();
        let mut sources: Vec<AttrId> = Vec::new();
        for &(from, to) in pairs {
            if self.physdom_of(from).is_none() {
                return Err(JeddError::NoSuchAttribute {
                    attribute: self.universe.attribute_name(from),
                    op: "rename",
                });
            }
            if sources.contains(&from) {
                return Err(JeddError::DuplicateAttribute {
                    attribute: self.universe.attribute_name(from),
                    op: "rename",
                });
            }
            sources.push(from);
            if self.universe.attribute_domain(from) != self.universe.attribute_domain(to) {
                return Err(JeddError::DomainMismatch {
                    left: self.universe.attribute_name(from),
                    right: self.universe.attribute_name(to),
                });
            }
        }
        // Map each original slot through the pairs exactly once, so
        // exchanges do not chain.
        for (i, &(orig, _)) in self.schema.iter().enumerate() {
            if let Some(&(_, to)) = pairs.iter().find(|&&(from, _)| from == orig) {
                schema[i].0 = to;
            }
        }
        let schema = Self::check_schema(&self.universe, &schema, "rename")?;
        self.universe.count_op();
        Ok(Relation {
            universe: self.universe.clone(),
            schema,
            bdd: self.bdd.clone(),
        })
    }

    /// Copies attribute `from` into two attributes `to1` and `to2`, both
    /// holding `from`'s value in every tuple — Jedd's `(from=>to1 to2) x`
    /// (the \[Copy\] rule). `to1` keeps `from`'s physical domain; `to2` goes
    /// to `to2_physdom` (or a scratch domain when `None`).
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is absent, `to1`/`to2` collide with the
    /// remaining schema or each other, or domains mismatch.
    pub fn copy(
        &self,
        from: AttrId,
        to1: AttrId,
        to2: AttrId,
        to2_physdom: Option<PhysDomId>,
    ) -> Result<Relation, JeddError> {
        let p_from = self
            .physdom_of(from)
            .ok_or_else(|| JeddError::NoSuchAttribute {
                attribute: self.universe.attribute_name(from),
                op: "copy",
            })?;
        if to1 == to2 {
            return Err(JeddError::DuplicateAttribute {
                attribute: self.universe.attribute_name(to1),
                op: "copy",
            });
        }
        for t in [to1, to2] {
            if t != from && self.physdom_of(t).is_some() {
                return Err(JeddError::DuplicateAttribute {
                    attribute: self.universe.attribute_name(t),
                    op: "copy",
                });
            }
            if self.universe.attribute_domain(t) != self.universe.attribute_domain(from) {
                return Err(JeddError::DomainMismatch {
                    left: self.universe.attribute_name(from),
                    right: self.universe.attribute_name(t),
                });
            }
        }
        let in_use: Vec<PhysDomId> = self.schema.iter().map(|&(_, p)| p).collect();
        let p_to2 = match to2_physdom {
            Some(p) => p,
            None => {
                let bits = self.universe.physdom_bits(p_from).len();
                self.universe.scratch_physdom(bits, &in_use)
            }
        };
        if in_use.contains(&p_to2) {
            return Err(JeddError::DuplicateAttribute {
                attribute: format!(
                    "physical domain {} already in use",
                    self.universe.physdom_name(p_to2)
                ),
                op: "copy",
            });
        }
        self.universe.check_fits(to2, p_to2)?;
        let from_bits = self.universe.physdom_bits(p_from);
        let to2_bits = self.universe.physdom_bits(p_to2);
        let mgr = self.universe.bdd_manager();
        // Equality constraint over the common width; surplus bits of the
        // wider vector are constrained to zero.
        let n = from_bits.len().min(to2_bits.len());
        let bdd = self.profiled("copy", &[&self.bdd], || {
            let eq = mgr.try_equal_vectors(
                &from_bits[from_bits.len() - n..],
                &to2_bits[to2_bits.len() - n..],
            )?;
            let mut acc = self.bdd.try_and(&eq)?;
            for &b in &to2_bits[..to2_bits.len() - n] {
                acc = acc.try_and(&mgr.try_nvar(b)?)?;
            }
            Ok(acc)
        })?;
        let mut schema = self.schema.clone();
        schema.retain(|&(a, _)| a != from);
        schema.push((to1, p_from));
        schema.push((to2, p_to2));
        schema.sort_by_key(|&(a, _)| a);
        Ok(Relation {
            universe: self.universe.clone(),
            schema,
            bdd,
        })
    }

    /// Validates the shared preconditions of join and compose and returns
    /// `other` with its physical domains aligned: compared attributes on
    /// the matching physical domain of `self`, kept attributes moved off
    /// any physical domain `self` uses.
    fn align_for_combine(
        &self,
        self_attrs: &[AttrId],
        other: &Relation,
        other_attrs: &[AttrId],
        op: &'static str,
        // For compose, self's kept attributes exclude the compared ones.
        self_keeps_compared: bool,
    ) -> Result<Relation, JeddError> {
        if !self.universe.same_universe(&other.universe) {
            return Err(JeddError::UniverseMismatch);
        }
        if self_attrs.len() != other_attrs.len() {
            return Err(JeddError::ComparedListLength {
                left: self_attrs.len(),
                right: other_attrs.len(),
            });
        }
        // Compared attribute lists must be duplicate-free and present.
        for (list, rel) in [(self_attrs, self), (other_attrs, other)] {
            for (i, &a) in list.iter().enumerate() {
                if rel.physdom_of(a).is_none() {
                    return Err(JeddError::NoSuchAttribute {
                        attribute: self.universe.attribute_name(a),
                        op,
                    });
                }
                if list[..i].contains(&a) {
                    return Err(JeddError::DuplicateAttribute {
                        attribute: self.universe.attribute_name(a),
                        op,
                    });
                }
            }
        }
        // Domains of compared pairs must agree.
        for (&a, &b) in self_attrs.iter().zip(other_attrs.iter()) {
            if self.universe.attribute_domain(a) != self.universe.attribute_domain(b) {
                return Err(JeddError::DomainMismatch {
                    left: self.universe.attribute_name(a),
                    right: self.universe.attribute_name(b),
                });
            }
        }
        // Result schema disjointness: T (or T') and U' must not overlap.
        let self_result: Vec<AttrId> = self
            .schema
            .iter()
            .map(|&(a, _)| a)
            .filter(|a| self_keeps_compared || !self_attrs.contains(a))
            .collect();
        let other_kept: Vec<AttrId> = other
            .schema
            .iter()
            .map(|&(a, _)| a)
            .filter(|a| !other_attrs.contains(a))
            .collect();
        let shared: Vec<String> = self_result
            .iter()
            .filter(|a| other_kept.contains(a))
            .map(|&a| self.universe.attribute_name(a))
            .collect();
        if !shared.is_empty() {
            return Err(JeddError::OverlappingSchemas { shared });
        }
        // Physical alignment of `other`:
        //  * each compared attribute must sit in the physical domain of its
        //    partner in `self`;
        //  * each kept attribute must sit in a physical domain unused by
        //    `self` and by the other targets.
        let mut target: Vec<(AttrId, PhysDomId)> = Vec::new();
        let mut used: Vec<PhysDomId> = self.schema.iter().map(|&(_, p)| p).collect();
        for (&a, &b) in self_attrs.iter().zip(other_attrs.iter()) {
            let p = self.physdom_of(a).expect("validated");
            target.push((b, p));
        }
        for &k in &other_kept {
            let cur = other.physdom_of(k).expect("validated");
            let taken: Vec<PhysDomId> = used
                .iter()
                .copied()
                .chain(target.iter().map(|&(_, p)| p))
                .collect();
            let p = if taken.contains(&cur) {
                let bits = self.universe.physdom_bits(cur).len();
                let p = self.universe.scratch_physdom(bits, &taken);
                self.universe.count_auto_replace();
                p
            } else {
                cur
            };
            self.universe.check_fits(k, p)?;
            target.push((k, p));
            used.push(p);
        }
        let moves: Vec<(PhysDomId, PhysDomId)> = target
            .iter()
            .map(|&(b, p)| (other.physdom_of(b).expect("validated"), p))
            .filter(|&(f, t)| f != t)
            .collect();
        let new_schema = {
            let mut s: Vec<(AttrId, PhysDomId)> = target;
            s.sort_by_key(|&(a, _)| a);
            s
        };
        let bdd = if moves.is_empty() {
            other.bdd.clone()
        } else {
            self.universe.count_auto_replace();
            self.profiled("replace", &[&other.bdd], || {
                apply_moves(&self.universe, &other.bdd, &moves)
            })?
        };
        Ok(Relation {
            universe: self.universe.clone(),
            schema: new_schema,
            bdd,
        })
    }

    /// Join (`x{a...} >< y{b...}`): pairs of tuples matching on the
    /// compared attributes, keeping the compared attributes (from the left
    /// operand) in the result — the \[Join\] rule. Implemented as a BDD
    /// intersection once the physical domains are aligned (§3.2.2).
    ///
    /// # Errors
    ///
    /// Returns an error for missing/duplicate attributes, mismatched
    /// domains or overlapping result schemas.
    pub fn join(
        &self,
        self_attrs: &[AttrId],
        other: &Relation,
        other_attrs: &[AttrId],
    ) -> Result<Relation, JeddError> {
        let o = self.align_for_combine(self_attrs, other, other_attrs, "join", true)?;
        let bdd = self.profiled("join", &[&self.bdd, &o.bdd], || self.bdd.try_and(&o.bdd))?;
        let mut schema = self.schema.clone();
        for &(a, p) in o.schema.iter() {
            if !other_attrs.contains(&a) {
                schema.push((a, p));
            }
        }
        schema.sort_by_key(|&(a, _)| a);
        Ok(Relation {
            universe: self.universe.clone(),
            schema,
            bdd,
        })
    }

    /// Composition (`x{a...} <> y{b...}`): like a join followed by
    /// projecting the compared attributes away, but implemented with the
    /// fused `and_exists` BDD operation — the \[Compose\] rule; the paper
    /// notes the fused form "is implemented more efficiently" (§2.2.3).
    ///
    /// # Errors
    ///
    /// Returns an error for missing/duplicate attributes, mismatched
    /// domains or overlapping result schemas.
    pub fn compose(
        &self,
        self_attrs: &[AttrId],
        other: &Relation,
        other_attrs: &[AttrId],
    ) -> Result<Relation, JeddError> {
        let o = self.align_for_combine(self_attrs, other, other_attrs, "compose", false)?;
        let mut cube_bits: Vec<u32> = Vec::new();
        for &a in self_attrs {
            cube_bits.extend(self.universe.physdom_bits(self.physdom_of(a).expect("validated")));
        }
        let mgr = self.universe.bdd_manager();
        let bdd = self.profiled("compose", &[&self.bdd, &o.bdd], || {
            self.bdd.try_and_exists(&o.bdd, &mgr.try_cube(&cube_bits)?)
        })?;
        let mut schema: Vec<(AttrId, PhysDomId)> = self
            .schema
            .iter()
            .copied()
            .filter(|&(a, _)| !self_attrs.contains(&a))
            .collect();
        for &(a, p) in o.schema.iter() {
            if !other_attrs.contains(&a) {
                schema.push((a, p));
            }
        }
        schema.sort_by_key(|&(a, _)| a);
        Ok(Relation {
            universe: self.universe.clone(),
            schema,
            bdd,
        })
    }

    /// Evaluates several independent compositions together. Results match
    /// [`Relation::compose`] job for job (same tuples, same schemas, same
    /// typed errors); what changes is the execution: with the parallel
    /// engine engaged ([`jedd_bdd::BddManager::set_threads`] >= 2) the
    /// fused relational products of all jobs are lowered into one
    /// [`jedd_bdd::BddBatch`] and run concurrently on the shared-table
    /// kernel, so the independent delta rules of a fixpoint round can
    /// occupy every worker even when no single product is large enough to
    /// split profitably.
    ///
    /// Validation and physical-domain alignment stay sequential — they
    /// are schema-driven and cheap next to the products — so the first
    /// job with a malformed schema reports its error before any BDD work
    /// is batched.
    ///
    /// # Errors
    ///
    /// Returns the first error any job would report from
    /// [`Relation::compose`]: missing/duplicate attributes, mismatched
    /// domains, overlapping result schemas, universe mismatches between
    /// any pair of operands, or [`JeddError::ResourceExhausted`] when the
    /// kernel budget trips after the recovery ladder.
    pub fn compose_batch(jobs: &[ComposeJob<'_>]) -> Result<Vec<Relation>, JeddError> {
        let Some(first) = jobs.first() else {
            return Ok(Vec::new());
        };
        let universe = first.left.universe.clone();
        for j in jobs {
            if !universe.same_universe(&j.left.universe)
                || !universe.same_universe(&j.right.universe)
            {
                return Err(JeddError::UniverseMismatch);
            }
        }
        let mgr = universe.bdd_manager();
        if mgr.threads() < 2 || jobs.len() < 2 {
            // Sequential composition is bit-identical to hand-written
            // loops (including node ids), so single jobs and threads = 1
            // take the ordinary path.
            return jobs
                .iter()
                .map(|j| j.left.compose(j.left_attrs, j.right, j.right_attrs))
                .collect();
        }
        let mut schemas: Vec<Vec<(AttrId, PhysDomId)>> = Vec::with_capacity(jobs.len());
        let mut operand_nodes: Vec<usize> = Vec::with_capacity(jobs.len());
        let mut batch = mgr.batch();
        let mut roots = Vec::with_capacity(jobs.len());
        for j in jobs {
            let o = j
                .left
                .align_for_combine(j.left_attrs, j.right, j.right_attrs, "compose", false)?;
            let mut cube_bits: Vec<u32> = Vec::new();
            for &a in j.left_attrs {
                cube_bits.extend(
                    universe.physdom_bits(j.left.physdom_of(a).expect("validated")),
                );
            }
            let cube = mgr
                .try_cube(&cube_bits)
                .map_err(|e| universe.resource_exhausted("compose", e))?;
            let tf = batch.leaf(&j.left.bdd);
            let tg = batch.leaf(&o.bdd);
            roots.push(batch.and_exists(tf, tg, &cube));
            operand_nodes.push(j.left.bdd.node_count().max(o.bdd.node_count()));
            let mut schema: Vec<(AttrId, PhysDomId)> = j
                .left
                .schema
                .iter()
                .copied()
                .filter(|&(a, _)| !j.left_attrs.contains(&a))
                .collect();
            for &(a, p) in o.schema.iter() {
                if !j.right_attrs.contains(&a) {
                    schema.push((a, p));
                }
            }
            schema.sort_by_key(|&(a, _)| a);
            schemas.push(schema);
            universe.count_op();
        }
        let start = Instant::now();
        let results = batch
            .try_run(&roots)
            .map_err(|e| universe.resource_exhausted("compose", e))?;
        if universe.profiler_enabled() {
            // Per-job attribution of a jointly-measured run: split the
            // batch's wall time evenly so aggregate timings stay honest.
            let share = start.elapsed().as_nanos() as u64 / jobs.len() as u64;
            let wants_shapes = universe.profiler_wants_shapes();
            for (bdd, &nodes) in results.iter().zip(operand_nodes.iter()) {
                universe.profile(crate::profile::OpEvent {
                    op: "compose",
                    site: universe.current_site(),
                    nanos: share,
                    operand_nodes: nodes,
                    result_nodes: bdd.node_count(),
                    shape: if wants_shapes { Some(bdd.shape()) } else { None },
                });
            }
        }
        Ok(results
            .into_iter()
            .zip(schemas)
            .map(|(bdd, schema)| Relation {
                universe: universe.clone(),
                schema,
                bdd,
            })
            .collect())
    }

    /// Selection: the subset of tuples whose attribute `attr` holds the
    /// object `value`. The paper (§2.2.4) notes selection is expressed as
    /// a join with a single-attribute relation; this convenience method
    /// does exactly that.
    ///
    /// # Errors
    ///
    /// Returns an error if `attr` is absent or `value` out of range.
    pub fn select(&self, attr: AttrId, value: u64) -> Result<Relation, JeddError> {
        let p = self.physdom_of(attr).ok_or_else(|| JeddError::NoSuchAttribute {
            attribute: self.universe.attribute_name(attr),
            op: "select",
        })?;
        let single = Relation::tuple(&self.universe, &[(attr, p, value)])?;
        self.join(&[attr], &single, &[attr])
    }
}
