//! # jedd-core
//!
//! The relational heart of the Jedd system (Lhoták & Hendren, PLDI 2004):
//! database-style relations as an abstraction over BDDs.
//!
//! * [`Universe`] — registries of domains, attributes and physical
//!   domains, plus the shared BDD manager (paper §2.1).
//! * [`Relation`] — the relation data type with Jedd's operation set:
//!   set union/intersection/difference and equality, projection, attribute
//!   renaming and copying, join (`><`), composition (`<>`), tuple literals
//!   and extraction back to values (paper §2.2–§2.3). All the typing rules
//!   of the paper's Fig. 6 are enforced (dynamically) and the physical
//!   alignment machinery of §3.2.2 — including automatically inserted
//!   `replace` operations — is implemented underneath.
//! * [`assign`] — the physical-domain-assignment engine of §3.3: the
//!   constraint graph, the SAT encoding (clause types 1–7), decoding, and
//!   the unsat-core-driven error reporting of §3.3.3.
//! * [`fixpoint`] — the semi-naive (delta) fixpoint engine used by the
//!   relational analyses: [`DeltaRel`] current/frontier pairs, the
//!   [`Fixpoint`] round driver with per-round profiler events, and the
//!   [`Strategy`] switch between the delta engine and the naive oracle.
//!
//! # Examples
//!
//! ```
//! use jedd_core::{Relation, Universe};
//! # fn main() -> Result<(), jedd_core::JeddError> {
//! let u = Universe::new();
//! let ty = u.add_domain_with_elements("Type", &["A", "B"]);
//! let t1 = u.add_physical_domain("T1", 1);
//! let t2 = u.add_physical_domain("T2", 1);
//! let sub = u.add_attribute("subtype", ty);
//! let sup = u.add_attribute("supertype", ty);
//!
//! // extend = {(B, A)}: B extends A.
//! let extend = Relation::from_tuples(&u, &[(sub, t1), (sup, t2)], &[vec![1, 0]])?;
//! assert!(extend.contains(&[1, 0]));
//! assert_eq!(extend.size(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
mod error;
pub mod fixpoint;
mod iter;
mod ops;
mod profile;
mod relation;
mod universe;

pub use error::JeddError;
pub use fixpoint::{DeltaRel, Fixpoint, Strategy};
pub use iter::{Objects, Tuples};
// Budget/error vocabulary of the kernel, re-exported so budget-aware
// callers need not depend on `jedd-bdd` directly.
pub use jedd_bdd::{BddError, Budget, CancelToken, FailPlan, KernelStats};
pub use ops::ComposeJob;
pub use profile::{OpEvent, ProfileSink};
pub use relation::Relation;
pub use universe::{AttrId, Backend, DomainId, PhysDomId, Universe, UniverseStats};
