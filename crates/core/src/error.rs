//! Error types for the relational layer.
//!
//! Jedd enforces its typing rules (paper Fig. 6) statically in the
//! translator; the runtime relational API enforces the same rules
//! dynamically and reports violations through [`JeddError`].

use std::fmt;

/// An error raised by a relational operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JeddError {
    /// Operands of a set operation, assignment or comparison do not have
    /// the same attribute schema (\[SetOp\]/\[Assign\]/\[Compare\] rules).
    SchemaMismatch {
        /// Schema of the left operand (attribute names).
        left: Vec<String>,
        /// Schema of the right operand (attribute names).
        right: Vec<String>,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An expression would contain the same attribute twice.
    DuplicateAttribute {
        /// The offending attribute name.
        attribute: String,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An attribute named in a projection, rename, copy, join or compose
    /// does not occur in the operand's schema.
    NoSuchAttribute {
        /// The missing attribute name.
        attribute: String,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// Join/compose compared attribute lists have different lengths.
    ComparedListLength {
        /// Length of the left attribute list.
        left: usize,
        /// Length of the right attribute list.
        right: usize,
    },
    /// Two compared attributes draw from different domains.
    DomainMismatch {
        /// The left attribute name.
        left: String,
        /// The right attribute name.
        right: String,
    },
    /// The non-compared attributes of join/compose operands overlap
    /// (violates `T ∩ U\' = ∅` of the \[Join\]/\[Compose\] rules).
    OverlappingSchemas {
        /// The attributes present on both sides.
        shared: Vec<String>,
    },
    /// A domain does not fit in the physical domain assigned to it.
    PhysicalDomainTooSmall {
        /// The attribute being stored.
        attribute: String,
        /// The physical domain's name.
        physical: String,
        /// Bits available.
        bits: usize,
        /// Objects that must be representable.
        domain_size: u64,
    },
    /// An object index is outside its domain.
    ObjectOutOfRange {
        /// The domain name.
        domain: String,
        /// The out-of-range index.
        index: u64,
        /// The domain size.
        size: u64,
    },
    /// Relations from different universes were combined.
    UniverseMismatch,
    /// The BDD kernel exhausted its resource budget (node limit, step
    /// limit, deadline or cancellation) while executing a relational
    /// operation, even after the manager's GC-and-reorder recovery
    /// ladder.
    ResourceExhausted {
        /// The relational operation that hit the limit.
        op: &'static str,
        /// The kernel-level cause.
        cause: jedd_bdd::BddError,
        /// Kernel counters at the point of failure (boxed to keep the
        /// error type small).
        stats: Box<jedd_bdd::KernelStats>,
    },
    /// Serialized universe metadata does not describe a state this
    /// universe can be restored into: a replayed registration produced a
    /// different id, a bit index is out of range, or a relation refers to
    /// ids that were never registered. Raised by the snapshot-restore path
    /// (`jedd-store`); like the schema errors it indicates corrupt or
    /// mismatched input, not resource exhaustion.
    InvalidRestore {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for JeddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JeddError::SchemaMismatch { left, right, op } => write!(
                f,
                "schema mismatch in {op}: <{}> vs <{}>",
                left.join(", "),
                right.join(", ")
            ),
            JeddError::DuplicateAttribute { attribute, op } => {
                write!(f, "duplicate attribute {attribute} in {op}")
            }
            JeddError::NoSuchAttribute { attribute, op } => {
                write!(f, "no attribute {attribute} in operand of {op}")
            }
            JeddError::ComparedListLength { left, right } => write!(
                f,
                "compared attribute lists have different lengths ({left} vs {right})"
            ),
            JeddError::DomainMismatch { left, right } => write!(
                f,
                "compared attributes {left} and {right} have different domains"
            ),
            JeddError::OverlappingSchemas { shared } => write!(
                f,
                "operand schemas share non-compared attributes: {}",
                shared.join(", ")
            ),
            JeddError::PhysicalDomainTooSmall {
                attribute,
                physical,
                bits,
                domain_size,
            } => write!(
                f,
                "physical domain {physical} ({bits} bits) cannot hold attribute {attribute} \
                 (domain size {domain_size})"
            ),
            JeddError::ObjectOutOfRange {
                domain,
                index,
                size,
            } => write!(
                f,
                "object index {index} out of range for domain {domain} (size {size})"
            ),
            JeddError::UniverseMismatch => {
                write!(f, "relations belong to different universes")
            }
            JeddError::ResourceExhausted { op, cause, stats } => write!(
                f,
                "resource budget exhausted in {op}: {cause} \
                 ({} governed steps, {} GC retries, {} reorder retries)",
                stats.governed_steps, stats.ladder_gc_retries, stats.ladder_reorder_retries
            ),
            JeddError::InvalidRestore { detail } => {
                write!(f, "invalid universe restore: {detail}")
            }
        }
    }
}

impl std::error::Error for JeddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            JeddError::SchemaMismatch {
                left: vec!["a".into()],
                right: vec!["b".into()],
                op: "union",
            },
            JeddError::DuplicateAttribute {
                attribute: "x".into(),
                op: "rename",
            },
            JeddError::NoSuchAttribute {
                attribute: "x".into(),
                op: "project",
            },
            JeddError::ComparedListLength { left: 1, right: 2 },
            JeddError::DomainMismatch {
                left: "a".into(),
                right: "b".into(),
            },
            JeddError::OverlappingSchemas {
                shared: vec!["a".into()],
            },
            JeddError::PhysicalDomainTooSmall {
                attribute: "a".into(),
                physical: "T1".into(),
                bits: 2,
                domain_size: 10,
            },
            JeddError::ObjectOutOfRange {
                domain: "Type".into(),
                index: 9,
                size: 4,
            },
            JeddError::UniverseMismatch,
            JeddError::ResourceExhausted {
                op: "join",
                cause: jedd_bdd::BddError::StepLimit {
                    steps: 101,
                    limit: 100,
                },
                stats: Box::default(),
            },
            JeddError::InvalidRestore {
                detail: "domain count mismatch".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
