//! Relation iterators (paper §2.3).
//!
//! Jedd provides two versions of `java.util.Iterator` for extracting
//! objects from relations back into Java: one over the single objects of a
//! unary relation, one over full tuples. These are their Rust
//! counterparts; both are driven by the BDD assignment enumeration and
//! respect the column convention of [`Relation::tuples`]
//! (attribute-registration order).

use crate::relation::Relation;
use crate::universe::AttrId;

/// Iterator over the object indices of a single-attribute relation.
///
/// Created by [`Relation::iter_objects`].
#[derive(Debug)]
pub struct Objects {
    values: std::vec::IntoIter<u64>,
}

impl Iterator for Objects {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.values.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.values.size_hint()
    }
}

impl ExactSizeIterator for Objects {}

/// Iterator over the tuples of a relation, each a `Vec<u64>` of object
/// indices in attribute-registration order.
///
/// Created by [`Relation::iter_tuples`].
#[derive(Debug)]
pub struct Tuples {
    tuples: std::vec::IntoIter<Vec<u64>>,
}

impl Iterator for Tuples {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        self.tuples.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.tuples.size_hint()
    }
}

impl ExactSizeIterator for Tuples {}

impl Relation {
    /// Iterates over the objects of a single-attribute relation — Jedd's
    /// first iterator flavour (§2.3).
    ///
    /// # Panics
    ///
    /// Panics if the relation does not have exactly one attribute.
    pub fn iter_objects(&self) -> Objects {
        assert_eq!(
            self.schema().len(),
            1,
            "iter_objects requires a single-attribute relation"
        );
        let values: Vec<u64> = self.tuples().into_iter().map(|t| t[0]).collect();
        Objects {
            values: values.into_iter(),
        }
    }

    /// Iterates over full tuples — Jedd's second iterator flavour (§2.3).
    pub fn iter_tuples(&self) -> Tuples {
        Tuples {
            tuples: self.tuples().into_iter(),
        }
    }

    /// Returns the tuples with columns reordered to the given attribute
    /// order (which must be a permutation of the schema's attributes).
    ///
    /// # Errors
    ///
    /// Returns [`crate::JeddError::NoSuchAttribute`] if `order` is not a
    /// permutation of the schema.
    pub fn tuples_by(&self, order: &[AttrId]) -> Result<Vec<Vec<u64>>, crate::JeddError> {
        let attrs = self.attributes();
        if order.len() != attrs.len() {
            return Err(crate::JeddError::SchemaMismatch {
                left: attrs
                    .iter()
                    .map(|&a| self.universe.attribute_name(a))
                    .collect(),
                right: order
                    .iter()
                    .map(|&a| self.universe.attribute_name(a))
                    .collect(),
                op: "tuples_by",
            });
        }
        let mut perm = Vec::with_capacity(order.len());
        for &a in order {
            match attrs.iter().position(|&x| x == a) {
                Some(i) => perm.push(i),
                None => {
                    return Err(crate::JeddError::NoSuchAttribute {
                        attribute: self.universe.attribute_name(a),
                        op: "tuples_by",
                    })
                }
            }
        }
        let mut out: Vec<Vec<u64>> = self
            .tuples()
            .into_iter()
            .map(|t| perm.iter().map(|&i| t[i]).collect())
            .collect();
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    fn setup() -> (Universe, Relation, AttrId, AttrId) {
        let u = Universe::new();
        let d = u.add_domain("D", 8);
        let p1 = u.add_physical_domain("P1", 3);
        let p2 = u.add_physical_domain("P2", 3);
        let a = u.add_attribute("a", d);
        let b = u.add_attribute("b", d);
        let r = Relation::from_tuples(
            &u,
            &[(a, p1), (b, p2)],
            &[vec![1, 2], vec![3, 4], vec![5, 6]],
        )
        .unwrap();
        (u, r, a, b)
    }

    #[test]
    fn iter_tuples_yields_all() {
        let (_u, r, _, _) = setup();
        let it = r.iter_tuples();
        assert_eq!(it.len(), 3);
        let collected: Vec<Vec<u64>> = it.collect();
        assert_eq!(collected, vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
    }

    #[test]
    fn iter_objects_on_unary() {
        let (_u, r, _a, b) = setup();
        let unary = r.project_away(&[b]).unwrap();
        let objs: Vec<u64> = unary.iter_objects().collect();
        assert_eq!(objs, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "single-attribute")]
    fn iter_objects_rejects_wide() {
        let (_u, r, _, _) = setup();
        let _ = r.iter_objects();
    }

    #[test]
    fn tuples_by_reorders_columns() {
        let (_u, r, a, b) = setup();
        let swapped = r.tuples_by(&[b, a]).unwrap();
        assert_eq!(swapped, vec![vec![2, 1], vec![4, 3], vec![6, 5]]);
        let same = r.tuples_by(&[a, b]).unwrap();
        assert_eq!(same, r.tuples());
    }

    #[test]
    fn tuples_by_rejects_bad_order() {
        let (u, r, a, _) = setup();
        let d = u.add_domain("E", 2);
        let c = u.add_attribute("c", d);
        assert!(r.tuples_by(&[a, c]).is_err());
        assert!(r.tuples_by(&[a]).is_err());
    }
}
