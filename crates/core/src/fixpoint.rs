//! Semi-naive (delta) fixpoint evaluation for relational analyses.
//!
//! The analyses in the paper's flagship workload (§6) are mutually
//! recursive Datalog-style fixpoints. A naive driver re-derives from the
//! *full* relations every round, so each iteration's composes and unions
//! grow with everything accumulated so far. The semi-naive discipline from
//! the deductive-database tradition fixes this: each round derives new
//! tuples only from the *frontier* (delta) of the previous round, e.g.
//! `step = Δedges <> pt  ∪  edges <> Δpt`.
//!
//! With hash-consed BDDs the bookkeeping is nearly free: a frontier is one
//! `diff`, relation equality is an O(1) canonical-node-id comparison, and
//! the kernel's non-materialising subset probe ([`crate::Relation::is_subset`])
//! decides "did this round derive anything new?" without allocating a
//! single node.
//!
//! [`DeltaRel`] maintains the `current`/`delta` pair for one relation;
//! [`Fixpoint`] drives rounds, bounds divergence, and reports per-round
//! delta sizes and per-rule timings to the installed profiler.

use crate::error::JeddError;
use crate::ops::ComposeJob;
use crate::relation::Relation;
use crate::universe::Universe;
use std::time::Instant;

/// Evaluation strategy for the relational fixpoint drivers: the semi-naive
/// delta engine, or the naive re-derive-everything oracle it is checked
/// against.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Re-derive from the full relations every round. Kept as the
    /// correctness oracle; every driver must produce bit-identical
    /// relations under both strategies.
    Naive,
    /// Derive new tuples only from the per-round deltas (default).
    #[default]
    SemiNaive,
}

/// A monotonically growing relation tracked as `current` plus the
/// `delta` frontier discovered in the most recent round.
///
/// Round protocol: rules read [`DeltaRel::delta`] (and
/// [`DeltaRel::current`]) and [`DeltaRel::stage`] their derivations; at
/// the end of the round [`DeltaRel::advance`] turns everything staged
/// into the next frontier (`staged \ current`) and folds it into
/// `current`. [`DeltaRel::absorb`] combines both steps for
/// single-rule loops.
#[derive(Clone, Debug)]
pub struct DeltaRel {
    name: &'static str,
    current: Relation,
    delta: Relation,
    staged: Option<Relation>,
}

impl DeltaRel {
    /// Starts tracking `initial`; the whole initial relation is the first
    /// frontier (round zero must look at every tuple once).
    pub fn new(name: &'static str, initial: Relation) -> DeltaRel {
        DeltaRel {
            name,
            delta: initial.clone(),
            current: initial,
            staged: None,
        }
    }

    /// The label used in profiler events.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Everything derived so far.
    pub fn current(&self) -> &Relation {
        &self.current
    }

    /// The tuples first derived in the most recent round.
    pub fn delta(&self) -> &Relation {
        &self.delta
    }

    /// `true` while the frontier is non-empty — an O(1) check on the
    /// canonical node id.
    pub fn has_delta(&self) -> bool {
        !self.delta.is_empty()
    }

    /// Consumes the tracker, returning the accumulated relation.
    pub fn into_current(self) -> Relation {
        self.current
    }

    /// Adds `derived` to this round's staged derivations (tuples already
    /// in `current` are filtered out at [`DeltaRel::advance`]).
    ///
    /// `derived` is re-assigned to `current`'s physical domains here, at
    /// the point where it is smallest. Rule outputs routinely sit in
    /// scratch physdoms picked by join alignment; deferring the move to
    /// [`DeltaRel::advance`] would instead align the *accumulated*
    /// relation onto the scratch layout — a full replace of the large
    /// side on every round.
    ///
    /// # Errors
    ///
    /// Returns [`JeddError::SchemaMismatch`] unless `derived` has the
    /// same attribute set as the tracked relation.
    pub fn stage(&mut self, derived: &Relation) -> Result<(), JeddError> {
        let d = self.current.aligned(derived, "stage")?;
        self.staged = Some(match self.staged.take() {
            Some(s) => s.union(&d)?,
            None => d,
        });
        Ok(())
    }

    /// Ends the round for this relation: the next frontier becomes
    /// `staged \ current`, `current` absorbs it, and the stage empties.
    /// Returns `true` when the frontier is non-empty.
    ///
    /// The common convergence case — nothing staged is new — is decided by
    /// the kernel's subset probe, which materialises no nodes at all.
    ///
    /// # Errors
    ///
    /// Propagates schema mismatches and resource exhaustion from the
    /// underlying set operations.
    pub fn advance(&mut self) -> Result<bool, JeddError> {
        let staged = match self.staged.take() {
            Some(s) => s,
            None => {
                self.delta = self.empty()?;
                return Ok(false);
            }
        };
        if staged.is_subset(&self.current)? {
            self.delta = self.empty()?;
            return Ok(false);
        }
        let frontier = staged.minus(&self.current)?;
        self.current = self.current.union(&frontier)?;
        self.delta = frontier;
        Ok(true)
    }

    /// [`DeltaRel::stage`] followed by [`DeltaRel::advance`]: absorbs one
    /// round's derivations in a single call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeltaRel::stage`] and [`DeltaRel::advance`].
    pub fn absorb(&mut self, derived: &Relation) -> Result<bool, JeddError> {
        self.stage(derived)?;
        self.advance()
    }

    /// Reconstructs a tracker from a checkpointed `current`/`delta` pair.
    /// Checkpoints are only taken at round boundaries, where nothing is
    /// staged, so the pair is the tracker's complete state.
    ///
    /// # Errors
    ///
    /// Returns [`JeddError::SchemaMismatch`] if the two relations disagree
    /// on their attribute schema.
    pub fn from_parts(
        name: &'static str,
        current: Relation,
        delta: Relation,
    ) -> Result<DeltaRel, JeddError> {
        // Aligning delta onto current's layout both validates the schema
        // and restores the invariant that the pair shares physdoms.
        let delta = current.aligned(&delta, "from_parts")?;
        Ok(DeltaRel {
            name,
            current,
            delta,
            staged: None,
        })
    }

    fn empty(&self) -> Result<Relation, JeddError> {
        Relation::empty(&self.current.universe, &self.current.schema)
    }
}

/// Drives a semi-naive fixpoint: counts rounds, bounds divergence, and
/// emits per-round profiler events (round timings, per-rule timings,
/// per-relation delta sizes) through the universe's installed profiler.
///
/// # Examples
///
/// ```
/// use jedd_core::fixpoint::{DeltaRel, Fixpoint};
/// use jedd_core::{Relation, Universe};
/// # fn main() -> Result<(), jedd_core::JeddError> {
/// let u = Universe::new();
/// let d = u.add_domain("N", 8);
/// let p1 = u.add_physical_domain("P1", 3);
/// let p2 = u.add_physical_domain("P2", 3);
/// let x = u.add_attribute("x", d);
/// let y = u.add_attribute("y", d);
/// // Transitive closure of a chain 0 -> 1 -> 2 -> 3.
/// let edges = Relation::from_tuples(
///     &u,
///     &[(x, p1), (y, p2)],
///     &[vec![0, 1], vec![1, 2], vec![2, 3]],
/// )?;
/// let mut reach = DeltaRel::new("reach", edges.clone());
/// let mut fp = Fixpoint::new(&u, "closure");
/// while reach.has_delta() {
///     fp.begin_round()?;
///     // New paths this round: Δreach(x, y) <> edges(y, z).
///     let step = reach
///         .delta()
///         .compose(&[y], &edges, &[x])?
///         .with_assignment(&[(y, p2)])?;
///     reach.absorb(&step)?;
///     fp.end_round(&[&reach]);
/// }
/// assert_eq!(reach.current().size(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Fixpoint {
    universe: Universe,
    name: &'static str,
    rounds: u64,
    max_rounds: u64,
    round_started: Option<Instant>,
}

/// Default divergence bound: analyses on realistic inputs converge in tens
/// of rounds, so ten thousand means a non-monotone rule or a broken delta.
pub const DEFAULT_MAX_ROUNDS: u64 = 10_000;

impl Fixpoint {
    /// Creates a driver; `name` labels the divergence error and all
    /// profiler events.
    pub fn new(universe: &Universe, name: &'static str) -> Fixpoint {
        Fixpoint {
            universe: universe.clone(),
            name,
            rounds: 0,
            max_rounds: DEFAULT_MAX_ROUNDS,
            round_started: None,
        }
    }

    /// Overrides the divergence bound.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Fixpoint {
        self.max_rounds = max_rounds;
        self
    }

    /// Starts the round counter at `rounds` instead of zero. Resume uses
    /// this so a continued fixpoint keeps the original divergence bound —
    /// the rounds already completed before the crash still count against
    /// `max_rounds` — and so profiler round numbering stays monotone
    /// across the crash/resume boundary.
    pub fn with_start_round(mut self, rounds: u64) -> Fixpoint {
        self.rounds = rounds;
        self
    }

    /// Completed rounds so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Starts a round.
    ///
    /// # Errors
    ///
    /// Returns a [`JeddError::ResourceExhausted`] divergence error once
    /// the round bound is hit, so a runaway fixpoint degrades through the
    /// governor ladder instead of aborting the process.
    pub fn begin_round(&mut self) -> Result<(), JeddError> {
        if self.rounds >= self.max_rounds {
            return Err(self.universe.resource_exhausted(
                self.name,
                jedd_bdd::BddError::StepLimit {
                    steps: self.rounds,
                    limit: self.max_rounds,
                },
            ));
        }
        self.round_started = Some(Instant::now());
        Ok(())
    }

    /// Times one rule application and reports it to the profiler as a
    /// `fixpoint-rule` event at site `"{fixpoint}: {rule}"` (one event per
    /// round, so the profile's detail view lists the per-round timings).
    ///
    /// # Errors
    ///
    /// Propagates the rule closure's error.
    pub fn rule(
        &self,
        rule: &str,
        f: impl FnOnce() -> Result<Relation, JeddError>,
    ) -> Result<Relation, JeddError> {
        if !self.universe.profiler_enabled() {
            return f();
        }
        let start = Instant::now();
        let result = f()?;
        self.universe.profile(crate::profile::OpEvent {
            op: "fixpoint-rule",
            site: format!("{}: {}", self.name, rule),
            nanos: start.elapsed().as_nanos() as u64,
            operand_nodes: 0,
            result_nodes: result.node_count(),
            shape: None,
        });
        Ok(result)
    }

    /// Applies several *independent* compose-shaped delta rules in one
    /// kernel batch. Semi-naive rounds are full of these: the bilinear
    /// rules split into `Δa <> b_full` and `a_full <> Δb` terms that read
    /// only the previous round's state, so nothing orders them. With the
    /// parallel engine engaged ([`jedd_bdd::BddManager::set_threads`] of
    /// 2 or more) the whole group runs concurrently on the shared-table kernel
    /// through [`Relation::compose_batch`]; at `threads = 1` it is
    /// exactly a loop of [`Fixpoint::rule`] + [`Relation::compose`]
    /// calls.
    ///
    /// Returns the results in rule order and emits one `fixpoint-rule`
    /// profiler event per rule (the jointly-measured batch time is split
    /// evenly), so profiles keep per-rule attribution.
    ///
    /// # Errors
    ///
    /// Propagates the first error any job's [`Relation::compose`] would
    /// report.
    pub fn compose_rules(
        &self,
        rules: &[(&str, ComposeJob<'_>)],
    ) -> Result<Vec<Relation>, JeddError> {
        let jobs: Vec<ComposeJob<'_>> = rules.iter().map(|&(_, j)| j).collect();
        if !self.universe.profiler_enabled() {
            return Relation::compose_batch(&jobs);
        }
        let start = Instant::now();
        let results = Relation::compose_batch(&jobs)?;
        let share = start.elapsed().as_nanos() as u64 / rules.len().max(1) as u64;
        for ((name, _), r) in rules.iter().zip(results.iter()) {
            self.universe.profile(crate::profile::OpEvent {
                op: "fixpoint-rule",
                site: format!("{}: {}", self.name, name),
                nanos: share,
                operand_nodes: 0,
                result_nodes: r.node_count(),
                shape: None,
            });
        }
        Ok(results)
    }

    /// Ends a round: emits the round timing and each relation's delta size
    /// to the profiler, then reports whether any frontier is still
    /// non-empty (i.e. whether another round is needed).
    pub fn end_round(&mut self, deltas: &[&DeltaRel]) -> bool {
        let elapsed = self
            .round_started
            .take()
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        self.rounds += 1;
        if self.universe.profiler_enabled() {
            let mut total_tuples = 0u64;
            let mut total_nodes = 0usize;
            for d in deltas {
                let tuples = d.delta().size();
                let nodes = d.delta().node_count();
                total_tuples += tuples;
                total_nodes += nodes;
                self.universe.profile(crate::profile::OpEvent {
                    op: "fixpoint-delta",
                    site: format!("{}: Δ{}", self.name, d.name()),
                    nanos: 0,
                    operand_nodes: nodes,
                    result_nodes: tuples as usize,
                    shape: None,
                });
            }
            self.universe.profile(crate::profile::OpEvent {
                op: "fixpoint-round",
                site: self.name.to_string(),
                nanos: elapsed,
                operand_nodes: total_nodes,
                result_nodes: total_tuples as usize,
                shape: None,
            });
        }
        deltas.iter().any(|d| d.has_delta())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{AttrId, PhysDomId};

    struct Setup {
        u: Universe,
        x: AttrId,
        y: AttrId,
        p1: PhysDomId,
        p2: PhysDomId,
    }

    fn setup() -> Setup {
        let u = Universe::new();
        let d = u.add_domain("N", 16);
        let p1 = u.add_physical_domain("P1", 4);
        let p2 = u.add_physical_domain("P2", 4);
        let x = u.add_attribute("x", d);
        let y = u.add_attribute("y", d);
        Setup { u, x, y, p1, p2 }
    }

    fn edges(s: &Setup, pairs: &[(u64, u64)]) -> Relation {
        let tuples: Vec<Vec<u64>> = pairs.iter().map(|&(a, b)| vec![a, b]).collect();
        Relation::from_tuples(&s.u, &[(s.x, s.p1), (s.y, s.p2)], &tuples).unwrap()
    }

    /// Transitive closure of `e` via the delta engine.
    fn closure(s: &Setup, e: &Relation) -> (Relation, u64) {
        let mut reach = DeltaRel::new("reach", e.clone());
        let mut fp = Fixpoint::new(&s.u, "closure");
        while reach.has_delta() {
            fp.begin_round().unwrap();
            let step = reach
                .delta()
                .compose(&[s.y], e, &[s.x])
                .unwrap()
                .with_assignment(&[(s.y, s.p2)])
                .unwrap();
            reach.absorb(&step).unwrap();
            fp.end_round(&[&reach]);
        }
        (reach.into_current(), fp.rounds())
    }

    #[test]
    fn delta_closure_matches_naive_closure() {
        let s = setup();
        let e = edges(&s, &[(0, 1), (1, 2), (2, 3), (3, 4), (7, 8)]);
        let (got, _) = closure(&s, &e);
        // Naive oracle.
        let mut naive = e.clone();
        loop {
            let step = naive
                .compose(&[s.y], &e, &[s.x])
                .unwrap()
                .with_assignment(&[(s.y, s.p2)])
                .unwrap();
            let next = naive.union(&step).unwrap();
            if next.equals(&naive).unwrap() {
                break;
            }
            naive = next;
        }
        assert!(got.equals(&naive).unwrap());
        assert_eq!(got.size(), naive.size());
    }

    #[test]
    fn delta_goes_empty_at_fixpoint() {
        let s = setup();
        let e = edges(&s, &[(0, 1), (1, 2)]);
        let (got, rounds) = closure(&s, &e);
        assert_eq!(got.size(), 3); // (0,1) (1,2) (0,2)
        assert!(rounds >= 2, "needs at least a derive and a confirm round");
    }

    #[test]
    fn compose_rules_matches_sequential_composition() {
        // The grouped form must agree with looped composes at every
        // thread count (functions, not ids, above threads = 1).
        for threads in [1, 4] {
            let s = setup();
            let mgr = s.u.bdd_manager();
            mgr.set_threads(threads);
            mgr.set_par_cutoff(2);
            let e1 = edges(&s, &[(0, 1), (1, 2), (2, 3)]);
            let e2 = edges(&s, &[(1, 5), (2, 6), (3, 7)]);
            let fp = Fixpoint::new(&s.u, "group");
            let got = fp
                .compose_rules(&[
                    (
                        "forward",
                        ComposeJob {
                            left: &e1,
                            left_attrs: &[s.y],
                            right: &e2,
                            right_attrs: &[s.x],
                        },
                    ),
                    (
                        "backward",
                        ComposeJob {
                            left: &e2,
                            left_attrs: &[s.y],
                            right: &e1,
                            right_attrs: &[s.x],
                        },
                    ),
                ])
                .unwrap();
            let want = [
                e1.compose(&[s.y], &e2, &[s.x]).unwrap(),
                e2.compose(&[s.y], &e1, &[s.x]).unwrap(),
            ];
            assert_eq!(got.len(), 2);
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert!(g.equals(w).unwrap(), "rule {i} diverged at {threads} threads");
                assert_eq!(g.size(), w.size());
            }
        }
    }

    #[test]
    fn stage_accumulates_across_calls() {
        let s = setup();
        let a = edges(&s, &[(0, 1)]);
        let b = edges(&s, &[(2, 3)]);
        let mut dr = DeltaRel::new("r", edges(&s, &[]));
        dr.stage(&a).unwrap();
        dr.stage(&b).unwrap();
        assert!(dr.advance().unwrap());
        assert_eq!(dr.current().size(), 2);
        assert_eq!(dr.delta().size(), 2);
        // Re-staging known tuples yields an empty frontier without change.
        dr.stage(&a).unwrap();
        assert!(!dr.advance().unwrap());
        assert!(!dr.has_delta());
        assert_eq!(dr.current().size(), 2);
    }

    #[test]
    fn advance_without_stage_empties_delta() {
        let s = setup();
        let mut dr = DeltaRel::new("r", edges(&s, &[(0, 1)]));
        assert!(dr.has_delta());
        assert!(!dr.advance().unwrap());
        assert!(!dr.has_delta());
        assert_eq!(dr.current().size(), 1);
    }

    #[test]
    fn divergence_is_resource_exhausted_not_panic() {
        let s = setup();
        let mut fp = Fixpoint::new(&s.u, "diverging").with_max_rounds(3);
        let mut hit = None;
        for _ in 0..5 {
            match fp.begin_round() {
                Ok(()) => {
                    fp.end_round(&[]);
                }
                Err(e) => {
                    hit = Some(e);
                    break;
                }
            }
        }
        match hit.expect("must diverge") {
            JeddError::ResourceExhausted { op, cause, .. } => {
                assert_eq!(op, "diverging");
                assert!(matches!(cause, jedd_bdd::BddError::StepLimit { .. }));
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn profiler_sees_round_rule_and_delta_events() {
        use crate::profile::{OpEvent, ProfileSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Sink(RefCell<Vec<OpEvent>>);
        impl ProfileSink for Sink {
            fn record(&self, event: &OpEvent) {
                self.0.borrow_mut().push(event.clone());
            }
            fn wants_shapes(&self) -> bool {
                false
            }
        }

        let s = setup();
        let sink = Rc::new(Sink::default());
        s.u.set_profiler(Some(sink.clone()));
        let e = edges(&s, &[(0, 1), (1, 2), (2, 3)]);
        let mut reach = DeltaRel::new("reach", e.clone());
        let mut fp = Fixpoint::new(&s.u, "closure");
        while reach.has_delta() {
            fp.begin_round().unwrap();
            let step = fp
                .rule("step", || {
                    reach
                        .delta()
                        .compose(&[s.y], &e, &[s.x])?
                        .with_assignment(&[(s.y, s.p2)])
                })
                .unwrap();
            reach.absorb(&step).unwrap();
            fp.end_round(&[&reach]);
        }
        s.u.set_profiler(None);
        let events = sink.0.borrow();
        let rounds = events.iter().filter(|e| e.op == "fixpoint-round").count();
        assert_eq!(rounds as u64, fp.rounds());
        assert!(events
            .iter()
            .any(|e| e.op == "fixpoint-rule" && e.site == "closure: step"));
        assert!(events
            .iter()
            .any(|e| e.op == "fixpoint-delta" && e.site == "closure: Δreach"));
        // Round events carry the post-round frontier tuple counts: the
        // chain 0→1→2→3 derives (0,2),(1,3) in round one, (0,3) in round
        // two, and an empty frontier in the confirming final round.
        let round_tuples: Vec<usize> = events
            .iter()
            .filter(|e| e.op == "fixpoint-round")
            .map(|e| e.result_nodes)
            .collect();
        assert_eq!(round_tuples, vec![2, 1, 0]);
    }
}
