//! The physical-domain-assignment problem (paper §3.3).
//!
//! The problem is expressed over *occurrences*: attribute instances of
//! relational (sub)expressions. Three kinds of constraints relate them:
//!
//! * **conflict** — all attributes of one expression must live in distinct
//!   physical domains (implicit between all pairs within an expression);
//! * **equality** — an operation requires two attributes of its operands
//!   to share a physical domain (§3.2.2);
//! * **assignment** — a dummy-replace boundary that *may* be broken,
//!   inserting a real replace operation (§3.3.2).
//!
//! A subset of occurrences carries programmer-specified physical domains;
//! the solver must extend them to a complete, valid assignment, or explain
//! why none exists.

use std::fmt;

/// Index of an expression in the problem.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ExprId(pub u32);

/// Index of an attribute occurrence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OccId(pub u32);

/// Index of a physical domain in the problem.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PhysId(pub u32);

/// A source position for error reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SourcePos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.line, self.col)
    }
}

#[derive(Clone, Debug)]
pub(crate) struct ExprInfo {
    pub label: String,
    pub pos: SourcePos,
    pub occs: Vec<OccId>,
}

#[derive(Clone, Debug)]
pub(crate) struct OccInfo {
    pub expr: ExprId,
    pub attr: String,
}

/// A physical-domain-assignment problem under construction.
///
/// # Examples
///
/// ```
/// use jedd_core::assign::{AssignmentProblem, SourcePos};
/// let mut p = AssignmentProblem::new();
/// let t1 = p.add_physdom("T1");
/// let e = p.add_expr("toResolve", SourcePos { line: 3, col: 5 });
/// let o = p.add_occurrence(e, "rectype");
/// p.specify(o, t1);
/// let solution = p.solve().unwrap();
/// assert_eq!(solution.physdom_of(o), t1);
/// ```
#[derive(Clone, Debug)]
pub struct AssignmentProblem {
    pub(crate) file: String,
    pub(crate) exprs: Vec<ExprInfo>,
    pub(crate) occs: Vec<OccInfo>,
    pub(crate) physdoms: Vec<String>,
    pub(crate) specified: Vec<(OccId, PhysId)>,
    pub(crate) equality: Vec<(OccId, OccId)>,
    pub(crate) assignment: Vec<(OccId, OccId)>,
}

impl Default for AssignmentProblem {
    fn default() -> AssignmentProblem {
        AssignmentProblem {
            file: "Test.jedd".to_string(),
            exprs: Vec::new(),
            occs: Vec::new(),
            physdoms: Vec::new(),
            specified: Vec::new(),
            equality: Vec::new(),
            assignment: Vec::new(),
        }
    }
}

impl AssignmentProblem {
    /// Creates an empty problem. The source file name used in error
    /// messages defaults to `Test.jedd` (as in the paper's example) and
    /// can be changed with [`AssignmentProblem::set_file`].
    pub fn new() -> AssignmentProblem {
        AssignmentProblem::default()
    }

    /// Sets the source file name used in error messages.
    pub fn set_file(&mut self, file: &str) {
        self.file = file.to_string();
    }

    /// Registers a physical domain by name.
    pub fn add_physdom(&mut self, name: &str) -> PhysId {
        if let Some(i) = self.physdoms.iter().position(|n| n == name) {
            return PhysId(i as u32);
        }
        let id = PhysId(self.physdoms.len() as u32);
        self.physdoms.push(name.to_string());
        id
    }

    /// Registers a relational (sub)expression.
    pub fn add_expr(&mut self, label: &str, pos: SourcePos) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(ExprInfo {
            label: label.to_string(),
            pos,
            occs: Vec::new(),
        });
        id
    }

    /// Registers an attribute occurrence of an expression. Conflict edges
    /// to the expression's other occurrences are implicit.
    pub fn add_occurrence(&mut self, expr: ExprId, attr: &str) -> OccId {
        let id = OccId(self.occs.len() as u32);
        self.occs.push(OccInfo {
            expr,
            attr: attr.to_string(),
        });
        self.exprs[expr.0 as usize].occs.push(id);
        id
    }

    /// Pins an occurrence to a programmer-specified physical domain.
    pub fn specify(&mut self, occ: OccId, phys: PhysId) {
        self.specified.push((occ, phys));
    }

    /// Adds an equality edge: both occurrences must share a physical
    /// domain.
    pub fn add_equality(&mut self, a: OccId, b: OccId) {
        self.equality.push((a, b));
    }

    /// Adds an assignment edge (a breakable dummy-replace boundary).
    pub fn add_assignment(&mut self, a: OccId, b: OccId) {
        self.assignment.push((a, b));
    }

    /// Number of expressions.
    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Number of attribute occurrences.
    pub fn num_occurrences(&self) -> usize {
        self.occs.len()
    }

    /// Number of physical domains.
    pub fn num_physdoms(&self) -> usize {
        self.physdoms.len()
    }

    /// Number of implicit conflict edges (pairs within expressions).
    pub fn num_conflict_edges(&self) -> usize {
        self.exprs
            .iter()
            .map(|e| e.occs.len() * e.occs.len().saturating_sub(1) / 2)
            .sum()
    }

    /// Number of equality edges.
    pub fn num_equality_edges(&self) -> usize {
        self.equality.len()
    }

    /// Number of assignment edges.
    pub fn num_assignment_edges(&self) -> usize {
        self.assignment.len()
    }

    /// The display name of a physical domain.
    pub fn physdom_name(&self, p: PhysId) -> &str {
        &self.physdoms[p.0 as usize]
    }

    /// The label of an expression.
    pub fn expr_label(&self, e: ExprId) -> &str {
        &self.exprs[e.0 as usize].label
    }

    /// The source position of an expression.
    pub fn expr_pos(&self, e: ExprId) -> SourcePos {
        self.exprs[e.0 as usize].pos
    }

    /// The attribute name of an occurrence.
    pub fn occ_attr(&self, o: OccId) -> &str {
        &self.occs[o.0 as usize].attr
    }

    /// The expression an occurrence belongs to.
    pub fn occ_expr(&self, o: OccId) -> ExprId {
        self.occs[o.0 as usize].expr
    }

    /// All assignment (breakable dummy-replace) edges, in insertion order.
    pub fn assignment_edges(&self) -> &[(OccId, OccId)] {
        &self.assignment
    }

    /// The physical domain an occurrence was pinned to via
    /// [`AssignmentProblem::specify`], if any. When an occurrence was
    /// specified more than once, the most recent specification wins.
    pub fn specified_physdom(&self, occ: OccId) -> Option<PhysId> {
        self.specified
            .iter()
            .rev()
            .find(|&&(o, _)| o == occ)
            .map(|&(_, p)| p)
    }

    /// Replaces every specification for `occ` with a pin to `phys`.
    ///
    /// This is the knob the replace-cost advisory turns: re-pin one
    /// declaration-side occurrence, re-solve, and compare the resulting
    /// [`Solution::replace_estimate`] against the original.
    pub fn respecify(&mut self, occ: OccId, phys: PhysId) {
        self.specified.retain(|&(o, _)| o != occ);
        self.specified.push((occ, phys));
    }

    /// The assignment edges a solution *breaks*: edges whose endpoints were
    /// assigned different physical domains. Each broken edge is a replace
    /// operation the runtime must perform when values flow across that
    /// boundary (§3.3.2).
    pub fn broken_assignment_edges(&self, sol: &Solution) -> Vec<(OccId, OccId)> {
        self.assignment
            .iter()
            .copied()
            .filter(|&(a, b)| sol.physdom_of(a) != sol.physdom_of(b))
            .collect()
    }
}

/// Sizing and timing data for one assignment run — the columns of the
/// paper's Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AssignmentStats {
    /// Relational expressions in the problem.
    pub exprs: usize,
    /// Attribute occurrences.
    pub attrs: usize,
    /// Physical domains.
    pub physdoms: usize,
    /// Conflict constraint edges.
    pub conflict: usize,
    /// Equality constraint edges.
    pub equality: usize,
    /// Assignment constraint edges.
    pub assignment: usize,
    /// Distinct SAT variables.
    pub sat_vars: usize,
    /// CNF clauses.
    pub sat_clauses: usize,
    /// Total CNF literals.
    pub sat_literals: usize,
    /// Flow paths enumerated.
    pub flow_paths: usize,
    /// Time spent encoding + solving, seconds.
    pub solve_seconds: f64,
}

/// A complete, valid physical-domain assignment.
#[derive(Clone, Debug)]
pub struct Solution {
    pub(crate) assignment: Vec<PhysId>,
    pub(crate) stats: AssignmentStats,
}

impl Solution {
    /// The physical domain assigned to an occurrence.
    pub fn physdom_of(&self, occ: OccId) -> PhysId {
        self.assignment[occ.0 as usize]
    }

    /// Problem/solution statistics (Table 1 columns).
    pub fn stats(&self) -> AssignmentStats {
        self.stats
    }

    /// The number of replace operations this assignment forces: how many
    /// assignment edges of `problem` it breaks. Grouping broken edges into
    /// per-site replace calls is the front end's job; this is the raw
    /// per-edge count.
    pub fn replace_estimate(&self, problem: &AssignmentProblem) -> usize {
        problem.broken_assignment_edges(self).len()
    }
}

/// Why no assignment exists (paper §3.3.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssignError {
    /// An occurrence has no flow path from any specified occurrence — its
    /// connected component carries no physical domain. Detected while
    /// constructing the SAT input.
    Unreachable {
        /// Source file name.
        file: String,
        /// Expression label.
        expr: String,
        /// Source position of the expression.
        pos: SourcePos,
        /// The attribute with no reachable specification.
        attr: String,
    },
    /// The constraint graph cannot be partitioned: a conflict clause
    /// appears in every unsatisfiable core. Reported in the paper's error
    /// format.
    Conflict {
        /// Source file name.
        file: String,
        /// Label of the expression holding the first attribute.
        expr_a: String,
        /// Position of the first expression.
        pos_a: SourcePos,
        /// First conflicting attribute.
        attr_a: String,
        /// Label of the expression holding the second attribute.
        expr_b: String,
        /// Position of the second expression.
        pos_b: SourcePos,
        /// Second conflicting attribute.
        attr_b: String,
        /// The physical domain both attributes were forced into.
        physdom: String,
    },
    /// Two programmer specifications (or specification-connected equality
    /// chains) contradict each other directly, with no conflict edge
    /// involved. jeddc-constructed problems never produce this (specified
    /// occurrences only meet through breakable assignment edges); it can
    /// arise through the public [`AssignmentProblem`] API.
    Inconsistent {
        /// Source file name.
        file: String,
        /// Expression of the first specification.
        expr_a: String,
        /// Position of the first expression.
        pos_a: SourcePos,
        /// First specified attribute.
        attr_a: String,
        /// Expression of the second specification.
        expr_b: String,
        /// Position of the second expression.
        pos_b: SourcePos,
        /// Second specified attribute.
        attr_b: String,
    },
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::Unreachable {
                file,
                expr,
                pos,
                attr,
            } => write!(
                f,
                "No physical domain reaches {expr}:{attr} at {file}:{pos}; \
                 specify a physical domain for this attribute"
            ),
            AssignError::Conflict {
                file,
                expr_a,
                pos_a,
                attr_a,
                expr_b,
                pos_b,
                attr_b,
                physdom,
            } => write!(
                f,
                "Conflict between {expr_a}:{attr_a} at {file}:{pos_a} and \
                 {expr_b}:{attr_b} at {file}:{pos_b} over physical domain {physdom}"
            ),
            AssignError::Inconsistent {
                file,
                expr_a,
                pos_a,
                attr_a,
                expr_b,
                pos_b,
                attr_b,
            } => write!(
                f,
                "Contradictory physical domain specifications: {expr_a}:{attr_a} at \
                 {file}:{pos_a} and {expr_b}:{attr_b} at {file}:{pos_b}"
            ),
        }
    }
}

impl std::error::Error for AssignError {}
