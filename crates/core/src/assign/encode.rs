//! SAT encoding of the physical-domain-assignment problem (paper §3.3.2,
//! clause types 1–7) and unsat-core-based error reporting (§3.3.3).

use super::paths::enumerate_flow_paths;
use super::problem::{
    AssignError, AssignmentProblem, AssignmentStats, OccId, PhysId, Solution,
};
use jedd_sat::{Lit, SatOutcome, Solver, Var};
use std::time::Instant;

/// Clause provenance tags, mirroring the seven clause types of §3.3.2.
/// Tag 4 (conflict) carries enough detail to produce the paper's error
/// message.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ClauseTag {
    /// 1: each occurrence gets some physical domain.
    AtLeastOne(OccId),
    /// 2: no occurrence gets two physical domains.
    AtMostOne(OccId),
    /// 3: specified occurrences get their specified domain.
    Specified(OccId),
    /// 4: conflicting occurrences avoid sharing each physical domain.
    Conflict(OccId, OccId, PhysId),
    /// 5: equality-connected occurrences share every physical domain.
    Equality(OccId, OccId),
    /// 6: at least one flow path to each occurrence is active.
    FlowExists(OccId),
    /// 7: an active flow path assigns its domain to every occurrence on it.
    FlowImplies(OccId),
}

impl AssignmentProblem {
    /// Solves the physical-domain-assignment problem.
    ///
    /// # Errors
    ///
    /// * [`AssignError::Unreachable`] when an occurrence has no flow path
    ///   from any specified occurrence (detected while constructing the
    ///   SAT input, as in the paper);
    /// * [`AssignError::Conflict`] when the SAT instance is
    ///   unsatisfiable — the conflict clause found in the unsat core is
    ///   converted into the paper's diagnostic format.
    // `AssignError` inlines the full §3.3.3 diagnostic (file, expression
    // labels, attribute names) and is built only on the cold error path.
    #[allow(clippy::result_large_err)]
    pub fn solve(&self) -> Result<Solution, AssignError> {
        let start = Instant::now();
        let n_occs = self.num_occurrences();
        let n_phys = self.num_physdoms();
        let (paths, by_endpoint) = enumerate_flow_paths(self);

        // Pre-check for clause type 6 being unconstructible.
        for (o, endpoint_paths) in by_endpoint.iter().enumerate() {
            if endpoint_paths.is_empty() {
                let occ = OccId(o as u32);
                let e = self.occ_expr(occ);
                return Err(AssignError::Unreachable {
                    file: self.file.clone(),
                    expr: self.expr_label(e).to_string(),
                    pos: self.expr_pos(e),
                    attr: self.occ_attr(occ).to_string(),
                });
            }
        }

        let mut solver = Solver::new();
        let mut tags: Vec<ClauseTag> = Vec::new();
        let mut literals = 0usize;
        // Variables e_a:p, dense layout occ * n_phys + p.
        let xvars: Vec<Var> = solver.new_vars(n_occs * n_phys);
        let x = |o: OccId, p: PhysId| xvars[o.0 as usize * n_phys + p.0 as usize];
        // One variable per flow path.
        let pivars: Vec<Var> = solver.new_vars(paths.len());

        let mut add = |solver: &mut Solver, tags: &mut Vec<ClauseTag>, lits: &[Lit], tag: ClauseTag| {
            solver.add_clause(lits);
            tags.push(tag);
            literals += lits.len();
        };

        // 1. Each attribute is assigned to some physical domain.
        for o in 0..n_occs {
            let occ = OccId(o as u32);
            let lits: Vec<Lit> = (0..n_phys)
                .map(|p| x(occ, PhysId(p as u32)).positive())
                .collect();
            add(&mut solver, &mut tags, &lits, ClauseTag::AtLeastOne(occ));
        }
        // 2. No attribute is assigned to multiple physical domains.
        for o in 0..n_occs {
            let occ = OccId(o as u32);
            for p1 in 0..n_phys {
                for p2 in (p1 + 1)..n_phys {
                    add(
                        &mut solver,
                        &mut tags,
                        &[
                            x(occ, PhysId(p1 as u32)).negative(),
                            x(occ, PhysId(p2 as u32)).negative(),
                        ],
                        ClauseTag::AtMostOne(occ),
                    );
                }
            }
        }
        // 3. Specified assignments hold.
        for &(occ, phys) in &self.specified {
            add(
                &mut solver,
                &mut tags,
                &[x(occ, phys).positive()],
                ClauseTag::Specified(occ),
            );
        }
        // 4. Conflict edges: all pairs within each expression.
        for e in &self.exprs {
            for (i, &a) in e.occs.iter().enumerate() {
                for &b in &e.occs[i + 1..] {
                    for p in 0..n_phys {
                        let phys = PhysId(p as u32);
                        add(
                            &mut solver,
                            &mut tags,
                            &[x(a, phys).negative(), x(b, phys).negative()],
                            ClauseTag::Conflict(a, b, phys),
                        );
                    }
                }
            }
        }
        // 5. Equality edges share every physical domain.
        for &(a, b) in &self.equality {
            for p in 0..n_phys {
                let phys = PhysId(p as u32);
                add(
                    &mut solver,
                    &mut tags,
                    &[x(a, phys).negative(), x(b, phys).positive()],
                    ClauseTag::Equality(a, b),
                );
                add(
                    &mut solver,
                    &mut tags,
                    &[x(a, phys).positive(), x(b, phys).negative()],
                    ClauseTag::Equality(a, b),
                );
            }
        }
        // 6. At least one flow path to each occurrence is active.
        for (o, endpoint_paths) in by_endpoint.iter().enumerate() {
            let occ = OccId(o as u32);
            let lits: Vec<Lit> = endpoint_paths.iter().map(|&pi| pivars[pi].positive()).collect();
            add(&mut solver, &mut tags, &lits, ClauseTag::FlowExists(occ));
        }
        // 7. Active flow paths force their physical domain along the path.
        for (pi, path) in paths.iter().enumerate() {
            for &occ in &path.occs {
                add(
                    &mut solver,
                    &mut tags,
                    &[pivars[pi].negative(), x(occ, path.phys).positive()],
                    ClauseTag::FlowImplies(occ),
                );
            }
        }

        let mut stats = AssignmentStats {
            exprs: self.num_exprs(),
            attrs: n_occs,
            physdoms: n_phys,
            conflict: self.num_conflict_edges(),
            equality: self.num_equality_edges(),
            assignment: self.num_assignment_edges(),
            sat_vars: solver.num_vars(),
            sat_clauses: solver.num_clauses(),
            sat_literals: literals,
            flow_paths: paths.len(),
            solve_seconds: 0.0,
        };

        match solver.solve() {
            SatOutcome::Sat => {
                let mut assignment: Vec<PhysId> = Vec::with_capacity(n_occs);
                for o in 0..n_occs {
                    let occ = OccId(o as u32);
                    let p = (0..n_phys)
                        .find(|&p| solver.model_value(x(occ, PhysId(p as u32))))
                        .expect("clause 1 guarantees a domain");
                    assignment.push(PhysId(p as u32));
                }
                stats.solve_seconds = start.elapsed().as_secs_f64();
                Ok(Solution { assignment, stats })
            }
            SatOutcome::Unsat => {
                // Proposition (§3.3.3): for jeddc-constructed problems,
                // every unsatisfiable core contains a conflict clause;
                // report the first one in the paper's format.
                let core = solver.unsat_core();
                let conflict = core.iter().find_map(|cid| {
                    match &tags[cid.0 as usize] {
                        ClauseTag::Conflict(a, b, p) => Some((*a, *b, *p)),
                        _ => None,
                    }
                });
                if let Some((a, b, p)) = conflict {
                    let (ea, eb) = (self.occ_expr(a), self.occ_expr(b));
                    return Err(AssignError::Conflict {
                        file: self.file.clone(),
                        expr_a: self.expr_label(ea).to_string(),
                        pos_a: self.expr_pos(ea),
                        attr_a: self.occ_attr(a).to_string(),
                        expr_b: self.expr_label(eb).to_string(),
                        pos_b: self.expr_pos(eb),
                        attr_b: self.occ_attr(b).to_string(),
                        physdom: self.physdom_name(p).to_string(),
                    });
                }
                // No conflict clause: contradictory specifications met
                // through equality chains (possible only through the raw
                // API). Report the specified occurrences in the core.
                let mut spec_occs: Vec<OccId> = core
                    .iter()
                    .filter_map(|cid| match &tags[cid.0 as usize] {
                        ClauseTag::Specified(o) => Some(*o),
                        _ => None,
                    })
                    .collect();
                spec_occs.dedup();
                let a = spec_occs.first().copied().unwrap_or(OccId(0));
                let b = spec_occs.get(1).copied().unwrap_or(a);
                let (ea, eb) = (self.occ_expr(a), self.occ_expr(b));
                Err(AssignError::Inconsistent {
                    file: self.file.clone(),
                    expr_a: self.expr_label(ea).to_string(),
                    pos_a: self.expr_pos(ea),
                    attr_a: self.occ_attr(a).to_string(),
                    expr_b: self.expr_label(eb).to_string(),
                    pos_b: self.expr_pos(eb),
                    attr_b: self.occ_attr(b).to_string(),
                })
            }
        }
    }
}
