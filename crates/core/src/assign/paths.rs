//! Flow-path enumeration (paper §3.3.2).
//!
//! A *flow path* starts at an occurrence with a programmer-specified
//! physical domain, follows equality and assignment edges, visits no
//! occurrence twice, and is *minimal*: no other flow path with the same
//! endpoint has a proper subset of its occurrences. At least one flow path
//! must end at every occurrence; an active path forces its occurrences
//! into the same physical domain.

use super::problem::{AssignmentProblem, OccId, PhysId};

/// One enumerated flow path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct FlowPath {
    /// The specified physical domain at the start.
    pub phys: PhysId,
    /// Occurrences along the path, starting with the specified one.
    pub occs: Vec<OccId>,
}

/// Enumeration limits guarding pathological graphs: paths are capped per
/// (endpoint, starting physical domain) so every reachable domain keeps a
/// witness path — capping per endpoint alone can starve an endpoint of a
/// domain and make a satisfiable problem spuriously unsatisfiable.
pub(crate) const MAX_PATHS_PER_ENDPOINT_PER_DOMAIN: usize = 6;
pub(crate) const MAX_PATH_LEN: usize = 24;

/// Enumerates minimal flow paths and groups them by endpoint. The outer
/// index is the endpoint occurrence; each entry lists indices into the
/// returned path vector.
pub(crate) fn enumerate_flow_paths(
    problem: &AssignmentProblem,
) -> (Vec<FlowPath>, Vec<Vec<usize>>) {
    let n = problem.num_occurrences();
    // Adjacency over equality + assignment edges (undirected).
    let mut adj: Vec<Vec<OccId>> = vec![Vec::new(); n];
    for &(a, b) in problem.equality.iter().chain(problem.assignment.iter()) {
        adj[a.0 as usize].push(b);
        adj[b.0 as usize].push(a);
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }

    let mut paths: Vec<FlowPath> = Vec::new();
    let mut by_endpoint: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Kept-path counts per (endpoint, physical domain).
    let mut kept: std::collections::HashMap<(usize, PhysId), usize> =
        std::collections::HashMap::new();
    // Paths never extend *through* a specified occurrence: a path crossing
    // one with the same domain has a shorter suffix path starting there,
    // and one with a different domain could never be active.
    let mut is_specified = vec![false; n];
    for &(o, _) in &problem.specified {
        is_specified[o.0 as usize] = true;
    }

    // Breadth-first enumeration of simple paths from each specified
    // occurrence; BFS order yields shortest (hence subset-minimal-biased)
    // paths first.
    for &(start, phys) in &problem.specified {
        let mut frontier: Vec<Vec<OccId>> = vec![vec![start]];
        let mut depth = 0usize;
        while !frontier.is_empty() && depth < MAX_PATH_LEN {
            let mut next: Vec<Vec<OccId>> = Vec::new();
            for path in frontier.drain(..) {
                let end = *path.last().expect("non-empty path");
                let endpoint = end.0 as usize;
                let slot = kept.entry((endpoint, phys)).or_insert(0);
                if *slot < MAX_PATHS_PER_ENDPOINT_PER_DOMAIN {
                    // Minimality: drop the path if a kept path to the same
                    // endpoint uses a proper subset of its occurrences.
                    let dominated = by_endpoint[endpoint].iter().any(|&pi| {
                        let q = &paths[pi].occs;
                        q.len() < path.len() && q.iter().all(|o| path.contains(o))
                    });
                    if !dominated {
                        paths.push(FlowPath {
                            phys,
                            occs: path.clone(),
                        });
                        by_endpoint[endpoint].push(paths.len() - 1);
                        *slot += 1;
                    }
                }
                // Do not extend past a specified occurrence (other than
                // the path's own start).
                if path.len() > 1 && is_specified[endpoint] {
                    continue;
                }
                for &nb in &adj[end.0 as usize] {
                    if !path.contains(&nb)
                        && kept
                            .get(&(nb.0 as usize, phys))
                            .copied()
                            .unwrap_or(0)
                            < MAX_PATHS_PER_ENDPOINT_PER_DOMAIN
                    {
                        let mut p2 = path.clone();
                        p2.push(nb);
                        next.push(p2);
                    }
                }
            }
            frontier = next;
            depth += 1;
        }
    }
    (paths, by_endpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::problem::SourcePos;

    fn pos() -> SourcePos {
        SourcePos::default()
    }

    #[test]
    fn single_specified_occurrence() {
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let e = p.add_expr("e", pos());
        let o = p.add_occurrence(e, "a");
        p.specify(o, t1);
        let (paths, by_endpoint) = enumerate_flow_paths(&p);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].occs, vec![o]);
        assert_eq!(by_endpoint[o.0 as usize].len(), 1);
    }

    #[test]
    fn chain_paths_reach_all() {
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let e = p.add_expr("e", pos());
        let a = p.add_occurrence(e, "a");
        let f = p.add_expr("f", pos());
        let b = p.add_occurrence(f, "b");
        let g = p.add_expr("g", pos());
        let c = p.add_occurrence(g, "c");
        p.specify(a, t1);
        p.add_equality(a, b);
        p.add_assignment(b, c);
        let (paths, by_endpoint) = enumerate_flow_paths(&p);
        assert_eq!(by_endpoint[a.0 as usize].len(), 1);
        assert_eq!(by_endpoint[b.0 as usize].len(), 1);
        assert_eq!(by_endpoint[c.0 as usize].len(), 1);
        let pc = &paths[by_endpoint[c.0 as usize][0]];
        assert_eq!(pc.occs, vec![a, b, c]);
    }

    #[test]
    fn unreachable_occurrence_has_no_path() {
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let e = p.add_expr("e", pos());
        let a = p.add_occurrence(e, "a");
        let b = p.add_occurrence(e, "b");
        p.specify(a, t1);
        let (_, by_endpoint) = enumerate_flow_paths(&p);
        assert!(!by_endpoint[a.0 as usize].is_empty());
        assert!(by_endpoint[b.0 as usize].is_empty());
    }

    #[test]
    fn minimality_prefers_direct_path() {
        // start -- x -- end and start -- end: only the short path to `end`
        // should be kept for endpoint `end` once both are seen.
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let e = p.add_expr("e", pos());
        let start = p.add_occurrence(e, "s");
        let f = p.add_expr("f", pos());
        let x = p.add_occurrence(f, "x");
        let g = p.add_expr("g", pos());
        let end = p.add_occurrence(g, "t");
        p.specify(start, t1);
        p.add_equality(start, x);
        p.add_equality(x, end);
        p.add_equality(start, end);
        let (paths, by_endpoint) = enumerate_flow_paths(&p);
        let endpoint_paths: Vec<&FlowPath> = by_endpoint[end.0 as usize]
            .iter()
            .map(|&i| &paths[i])
            .collect();
        // The direct 2-occ path must be present and no superset-of-it path
        // that merely inserts x between the same endpoints survives
        // minimality.
        assert!(endpoint_paths.iter().any(|fp| fp.occs == vec![start, end]));
        assert!(!endpoint_paths
            .iter()
            .any(|fp| fp.occs == vec![start, x, end]));
    }

    #[test]
    fn two_specified_sources_give_two_path_families() {
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let t2 = p.add_physdom("T2");
        let e = p.add_expr("e", pos());
        let a = p.add_occurrence(e, "a");
        let f = p.add_expr("f", pos());
        let b = p.add_occurrence(f, "b");
        let g = p.add_expr("g", pos());
        let c = p.add_occurrence(g, "c");
        p.specify(a, t1);
        p.specify(c, t2);
        p.add_assignment(a, b);
        p.add_assignment(b, c);
        let (paths, by_endpoint) = enumerate_flow_paths(&p);
        let mid: Vec<&FlowPath> = by_endpoint[b.0 as usize].iter().map(|&i| &paths[i]).collect();
        assert_eq!(mid.len(), 2);
        let physes: Vec<PhysId> = mid.iter().map(|fp| fp.phys).collect();
        assert!(physes.contains(&t1) && physes.contains(&t2));
    }
}
