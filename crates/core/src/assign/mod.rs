//! The SAT-based physical-domain-assignment engine (paper §3.3).
//!
//! Jedd programs mention *attributes*; BDDs store values in *physical
//! domains* (blocks of BDD variables). Completing a partial,
//! programmer-specified attribute → physical-domain mapping into a valid
//! global assignment is NP-complete; the paper encodes it as SAT and
//! solves it with zchaff. This module reproduces that pipeline:
//!
//! 1. [`AssignmentProblem`] collects expressions, attribute occurrences,
//!    conflict/equality/assignment constraints and the specified domains;
//! 2. flow paths (§3.3.2) are enumerated from the specified occurrences;
//! 3. the constraints become CNF clause types 1–7 and go to `jedd-sat`;
//! 4. a model decodes into a [`Solution`]; an UNSAT result is turned into
//!    the paper's conflict diagnostic via unsat-core extraction (§3.3.3).
//!
//! # Examples
//!
//! Reproducing the paper's §3.3.3 error (the compose whose result needs
//! `rectype` and `supertype` in distinct domains but only `T1` is
//! reachable for both):
//!
//! ```
//! use jedd_core::assign::{AssignError, AssignmentProblem, SourcePos};
//!
//! let mut p = AssignmentProblem::new();
//! let t1 = p.add_physdom("T1");
//! let _t2 = p.add_physdom("T2");
//! let _s1 = p.add_physdom("S1");
//! let compose = p.add_expr("Compose_expression", SourcePos { line: 4, col: 25 });
//! let rectype = p.add_occurrence(compose, "rectype");
//! let supertype = p.add_occurrence(compose, "supertype");
//! p.specify(rectype, t1);
//! p.specify(supertype, t1);
//! let err = p.solve().unwrap_err();
//! assert!(matches!(err, AssignError::Conflict { .. }));
//! assert!(err.to_string().contains("over physical domain T1"));
//! ```

mod encode;
mod paths;
mod problem;

pub use problem::{
    AssignError, AssignmentProblem, AssignmentStats, ExprId, OccId, PhysId, Solution, SourcePos,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(line: u32, col: u32) -> SourcePos {
        SourcePos { line, col }
    }

    #[test]
    fn single_component_takes_specified_domain() {
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let _t2 = p.add_physdom("T2");
        let e1 = p.add_expr("a", pos(1, 1));
        let o1 = p.add_occurrence(e1, "x");
        let e2 = p.add_expr("b", pos(2, 1));
        let o2 = p.add_occurrence(e2, "x");
        p.specify(o1, t1);
        p.add_equality(o1, o2);
        let s = p.solve().unwrap();
        assert_eq!(s.physdom_of(o1), t1);
        assert_eq!(s.physdom_of(o2), t1);
    }

    #[test]
    fn assignment_edges_prefer_same_domain() {
        // An assignment edge that *can* stay unbroken keeps one domain.
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let _t2 = p.add_physdom("T2");
        let e1 = p.add_expr("sub", pos(1, 1));
        let o1 = p.add_occurrence(e1, "x");
        let e2 = p.add_expr("replace", pos(1, 1));
        let o2 = p.add_occurrence(e2, "x");
        p.specify(o1, t1);
        p.add_assignment(o1, o2);
        let s = p.solve().unwrap();
        assert_eq!(s.physdom_of(o2), t1);
    }

    #[test]
    fn conflict_splits_components_across_domains() {
        // One expression with two attributes, each pinned elsewhere via
        // equality chains; conflict forces them apart.
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let t2 = p.add_physdom("T2");
        let e = p.add_expr("join", pos(3, 3));
        let a = p.add_occurrence(e, "left");
        let b = p.add_occurrence(e, "right");
        p.specify(a, t1);
        p.specify(b, t2);
        let s = p.solve().unwrap();
        assert_eq!(s.physdom_of(a), t1);
        assert_eq!(s.physdom_of(b), t2);
    }

    #[test]
    fn figure7_components() {
        // The constraint graph of Fig. 7 (paper): the join on lines 6-7 of
        // Fig. 4. Four families of attributes must land on T1, S1, T2, M1.
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let s1 = p.add_physdom("S1");
        let t2 = p.add_physdom("T2");
        let m1 = p.add_physdom("M1");

        // resolved (the programmer-annotated result).
        let resolved = p.add_expr("resolved", pos(6, 9));
        let res_rectype = p.add_occurrence(resolved, "rectype");
        let res_signature = p.add_occurrence(resolved, "signature");
        let res_tgttype = p.add_occurrence(resolved, "tgttype");
        let res_method = p.add_occurrence(resolved, "method");
        p.specify(res_rectype, t1);
        p.specify(res_signature, s1);
        p.specify(res_tgttype, t2);
        p.specify(res_method, m1);

        // replace wrapped around the join result.
        let rep = p.add_expr("replace", pos(7, 9));
        let rep_rectype = p.add_occurrence(rep, "rectype");
        let rep_signature = p.add_occurrence(rep, "signature");
        let rep_tgttype = p.add_occurrence(rep, "tgttype");
        let rep_method = p.add_occurrence(rep, "method");
        p.add_assignment(rep_rectype, res_rectype);
        p.add_assignment(rep_signature, res_signature);
        p.add_assignment(rep_tgttype, res_tgttype);
        p.add_assignment(rep_method, res_method);

        // the join expression.
        let join = p.add_expr("join", pos(7, 9));
        let join_rectype = p.add_occurrence(join, "rectype");
        let join_signature = p.add_occurrence(join, "signature");
        let join_tgttype = p.add_occurrence(join, "tgttype");
        let join_method = p.add_occurrence(join, "method");
        p.add_equality(join_rectype, rep_rectype);
        p.add_equality(join_signature, rep_signature);
        p.add_equality(join_tgttype, rep_tgttype);
        p.add_equality(join_method, rep_method);

        // replace around toResolve; toResolve itself.
        let rep_tr = p.add_expr("replace", pos(7, 13));
        let tr_rec2 = p.add_occurrence(rep_tr, "rectype");
        let tr_sig2 = p.add_occurrence(rep_tr, "signature");
        let tr_tgt2 = p.add_occurrence(rep_tr, "tgttype");
        p.add_equality(tr_rec2, join_rectype);
        p.add_equality(tr_sig2, join_signature);
        p.add_equality(tr_tgt2, join_tgttype);
        let toresolve = p.add_expr("toResolve", pos(7, 13));
        let tr_rec = p.add_occurrence(toresolve, "rectype");
        let tr_sig = p.add_occurrence(toresolve, "signature");
        let tr_tgt = p.add_occurrence(toresolve, "tgttype");
        p.add_assignment(tr_rec, tr_rec2);
        p.add_assignment(tr_sig, tr_sig2);
        p.add_assignment(tr_tgt, tr_tgt2);

        // replace around declaresMethod; declaresMethod itself.
        let rep_dm = p.add_expr("replace", pos(7, 40));
        let dm_sig2 = p.add_occurrence(rep_dm, "signature");
        let dm_type2 = p.add_occurrence(rep_dm, "type");
        let dm_meth2 = p.add_occurrence(rep_dm, "method");
        // The join matches tgttype with type and signature with signature.
        p.add_equality(dm_type2, join_tgttype);
        p.add_equality(dm_sig2, join_signature);
        p.add_equality(dm_meth2, join_method);
        let dm = p.add_expr("declaresMethod", pos(7, 40));
        let dm_sig = p.add_occurrence(dm, "signature");
        let dm_type = p.add_occurrence(dm, "type");
        let dm_meth = p.add_occurrence(dm, "method");
        p.add_assignment(dm_sig, dm_sig2);
        p.add_assignment(dm_type, dm_type2);
        p.add_assignment(dm_meth, dm_meth2);

        let s = p.solve().unwrap();
        // All rectype occurrences -> T1.
        for o in [res_rectype, rep_rectype, join_rectype, tr_rec2, tr_rec] {
            assert_eq!(s.physdom_of(o), t1, "rectype family");
        }
        // All signature occurrences -> S1.
        for o in [
            res_signature,
            rep_signature,
            join_signature,
            tr_sig2,
            tr_sig,
            dm_sig2,
            dm_sig,
        ] {
            assert_eq!(s.physdom_of(o), s1, "signature family");
        }
        // tgttype + type family -> T2.
        for o in [
            res_tgttype,
            rep_tgttype,
            join_tgttype,
            tr_tgt2,
            tr_tgt,
            dm_type2,
            dm_type,
        ] {
            assert_eq!(s.physdom_of(o), t2, "tgttype/type family");
        }
        // method family -> M1.
        for o in [res_method, rep_method, join_method, dm_meth2, dm_meth] {
            assert_eq!(s.physdom_of(o), m1, "method family");
        }
        let stats = s.stats();
        assert_eq!(stats.physdoms, 4);
        assert!(stats.sat_clauses > 0 && stats.sat_vars > 0);
        assert_eq!(stats.equality, 10);
        assert_eq!(stats.assignment, 10);
    }

    #[test]
    fn unreachable_attribute_reported() {
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let e = p.add_expr("lonely", pos(9, 2));
        let a = p.add_occurrence(e, "x");
        let b = p.add_occurrence(e, "y");
        p.specify(a, t1);
        let _ = b;
        let err = p.solve().unwrap_err();
        match err {
            AssignError::Unreachable { expr, attr, .. } => {
                assert_eq!(expr, "lonely");
                assert_eq!(attr, "y");
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn section_3_3_3_error_message_format() {
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let _t2 = p.add_physdom("T2");
        let s1 = p.add_physdom("S1");
        // The compose result of §3.3.3: rectype and supertype both chained
        // to T1, in conflict within one expression; signature gets S1.
        let compose = p.add_expr("Compose_expression", pos(4, 25));
        let rectype = p.add_occurrence(compose, "rectype");
        let signature = p.add_occurrence(compose, "signature");
        let supertype = p.add_occurrence(compose, "supertype");
        p.specify(rectype, t1);
        p.specify(supertype, t1);
        p.specify(signature, s1);
        let err = p.solve().unwrap_err();
        let msg = err.to_string();
        assert_eq!(
            msg,
            "Conflict between Compose_expression:rectype at Test.jedd:4,25 and \
             Compose_expression:supertype at Test.jedd:4,25 over physical domain T1"
        );
    }

    #[test]
    fn fix_with_new_domain_resolves_conflict() {
        // The fix the paper suggests: assign supertype to a fresh T3.
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let t3 = p.add_physdom("T3");
        let compose = p.add_expr("Compose_expression", pos(4, 25));
        let rectype = p.add_occurrence(compose, "rectype");
        let supertype = p.add_occurrence(compose, "supertype");
        p.specify(rectype, t1);
        p.specify(supertype, t3);
        let s = p.solve().unwrap();
        assert_eq!(s.physdom_of(rectype), t1);
        assert_eq!(s.physdom_of(supertype), t3);
    }

    #[test]
    fn replace_estimate_counts_broken_edges() {
        // Two pinned declarations in different domains joined by an
        // assignment edge: the edge must break, costing one replace.
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let t2 = p.add_physdom("T2");
        let src = p.add_expr("relation r", pos(1, 1));
        let o1 = p.add_occurrence(src, "x");
        let dst = p.add_expr("relation s", pos(2, 1));
        let o2 = p.add_occurrence(dst, "x");
        p.specify(o1, t1);
        p.specify(o2, t2);
        p.add_assignment(o1, o2);
        let s = p.solve().unwrap();
        assert_eq!(s.replace_estimate(&p), 1);
        assert_eq!(p.broken_assignment_edges(&s), vec![(o1, o2)]);
        assert_eq!(p.assignment_edges(), &[(o1, o2)]);
        assert_eq!(p.specified_physdom(o1), Some(t1));
        assert_eq!(p.specified_physdom(OccId(99)), None);

        // Re-pinning the destination into T1 removes the forced replace.
        let mut q = p.clone();
        q.respecify(o2, t1);
        assert_eq!(q.specified_physdom(o2), Some(t1));
        let s2 = q.solve().unwrap();
        assert_eq!(s2.replace_estimate(&q), 0);
        assert!(q.broken_assignment_edges(&s2).is_empty());
    }

    #[test]
    fn stats_count_constraints() {
        let mut p = AssignmentProblem::new();
        let t1 = p.add_physdom("T1");
        let e = p.add_expr("e", pos(1, 1));
        let a = p.add_occurrence(e, "a");
        let f = p.add_expr("f", pos(1, 2));
        let b = p.add_occurrence(f, "b");
        p.specify(a, t1);
        p.specify(b, t1);
        p.add_equality(a, b);
        assert_eq!(p.num_conflict_edges(), 0);
        assert_eq!(p.num_equality_edges(), 1);
        let s = p.solve().unwrap();
        assert_eq!(s.stats().attrs, 2);
        assert!(s.stats().solve_seconds >= 0.0);
    }
}
