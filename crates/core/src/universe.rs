//! The universe: domains, attributes, physical domains and the shared BDD
//! manager backing all relations of a program.

use crate::error::JeddError;
use crate::profile::{OpEvent, ProfileSink};
use jedd_bdd::{Bdd, BddError, BddManager, Budget, FailPlan};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Identifier of a registered [domain](Universe::add_domain).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DomainId(pub(crate) u32);

/// Identifier of a registered [attribute](Universe::add_attribute).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AttrId(pub(crate) u32);

/// Identifier of a registered
/// [physical domain](Universe::add_physical_domain).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PhysDomId(pub(crate) u32);

// Registration ids are sequential registry indices. The snapshot layer
// (`jedd-store`) serializes them as plain integers and reconstructs them
// after replaying registrations in the same order, so each id type exposes
// the raw index both ways. Constructing an id for an index that was never
// registered is not checked here; the accessors taking it will panic.
macro_rules! id_index {
    ($ty:ident, $what:literal) => {
        impl $ty {
            #[doc = concat!("The raw registry index of this ", $what, " id.")]
            pub fn index(self) -> u32 {
                self.0
            }

            #[doc = concat!(
                "Reconstructs a ",
                $what,
                " id from a raw registry index (snapshot restore only; the \
                 caller must know the index is registered)."
            )]
            pub fn from_index(index: u32) -> $ty {
                $ty(index)
            }
        }
    };
}

id_index!(DomainId, "domain");
id_index!(AttrId, "attribute");
id_index!(PhysDomId, "physical-domain");

#[derive(Debug)]
struct DomainInfo {
    name: String,
    size: u64,
    /// Optional element labels; indices without a label display as `#i`.
    elements: Vec<String>,
}

#[derive(Debug)]
struct AttrInfo {
    name: String,
    domain: DomainId,
}

#[derive(Debug)]
struct PhysDomInfo {
    name: String,
    /// BDD levels, most significant bit first.
    bits: Vec<u32>,
    /// True for scratch domains allocated on demand by the dynamic API.
    anonymous: bool,
}

/// Counters for the implicit work the relational layer performs; the
/// `replace_cost` ablation bench reads these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UniverseStats {
    /// Replace operations inserted automatically to align physical
    /// domains.
    pub auto_replaces: u64,
    /// Relational operations executed.
    pub relational_ops: u64,
}

/// The decision-diagram backend a universe stores its relations in.
///
/// All four backends share the relational algebra: operations always run
/// on the universe's BDD manager (plain for [`Backend::Bdd`] /
/// [`Backend::Zdd`], chain-reduced for [`Backend::Cbdd`] /
/// [`Backend::Czdd`]). The ZDD variants are *storage encodings*: they
/// change what [`crate::Relation::storage_nodes`] measures (the
/// zero-suppressed encoding of the tuple set), not how operations are
/// computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Plain reduced ordered BDDs (the default).
    Bdd,
    /// Chain-reduced BDDs (CBDD): runs of forced-false levels collapse
    /// into one node. Order-static (reordering degrades to collection).
    Cbdd,
    /// BDD algebra with zero-suppressed storage accounting.
    Zdd,
    /// Chain-reduced ZDD (CZDD) storage accounting over the CBDD kernel.
    Czdd,
}

impl Backend {
    /// True when the kernel runs with chain-reduced nodes.
    pub fn is_chained(self) -> bool {
        matches!(self, Backend::Cbdd | Backend::Czdd)
    }

    /// True when storage is accounted in the zero-suppressed encoding.
    pub fn is_zdd_storage(self) -> bool {
        matches!(self, Backend::Zdd | Backend::Czdd)
    }

    /// The stable single-byte tag used by the snapshot format.
    pub fn tag(self) -> u8 {
        match self {
            Backend::Bdd => 0,
            Backend::Zdd => 1,
            Backend::Cbdd => 2,
            Backend::Czdd => 3,
        }
    }

    /// The backend for a snapshot tag, if it names one.
    pub fn from_tag(tag: u8) -> Option<Backend> {
        match tag {
            0 => Some(Backend::Bdd),
            1 => Some(Backend::Zdd),
            2 => Some(Backend::Cbdd),
            3 => Some(Backend::Czdd),
            _ => None,
        }
    }

    /// The lowercase name used in bench output and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Bdd => "bdd",
            Backend::Cbdd => "cbdd",
            Backend::Zdd => "zdd",
            Backend::Czdd => "czdd",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

struct UniverseInner {
    mgr: BddManager,
    backend: Backend,
    domains: Vec<DomainInfo>,
    attrs: Vec<AttrInfo>,
    physdoms: Vec<PhysDomInfo>,
    stats: UniverseStats,
    profiler: Option<Rc<dyn ProfileSink>>,
    /// Label attached to profile events; set by plan executors.
    site: String,
}

/// The shared context in which relations live.
///
/// A `Universe` owns the BDD manager and the registries of domains,
/// attributes and physical domains — the runtime counterpart of Jedd's
/// `jedd.Domain`, `jedd.Attribute` and `jedd.PhysicalDomain` interfaces
/// (paper §2.1). It is a cheap-to-clone shared handle.
///
/// # Examples
///
/// ```
/// use jedd_core::Universe;
/// let u = Universe::new();
/// let ty = u.add_domain("Type", 64);
/// let rectype = u.add_attribute("rectype", ty);
/// let t1 = u.add_physical_domain("T1", 6);
/// assert_eq!(u.domain_name(ty), "Type");
/// assert_eq!(u.attribute_name(rectype), "rectype");
/// assert_eq!(u.physdom_bits(t1).len(), 6);
/// ```
#[derive(Clone)]
pub struct Universe {
    inner: Rc<RefCell<UniverseInner>>,
}

/// Parses `JEDD_PAGE_CACHE`: unset, empty, or unparseable means "stay
/// fully resident"; a number is the paged resident-frame budget (`0` =
/// paged, unbounded).
fn page_cache_from_env() -> Option<usize> {
    match std::env::var("JEDD_PAGE_CACHE") {
        Ok(v) if !v.is_empty() => v.parse().ok(),
        _ => None,
    }
}

impl Default for Universe {
    fn default() -> Self {
        Universe::new()
    }
}

impl fmt::Debug for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Universe")
            .field("domains", &inner.domains.len())
            .field("attributes", &inner.attrs.len())
            .field("physical_domains", &inner.physdoms.len())
            .finish()
    }
}

impl Universe {
    /// Creates an empty universe with a fresh BDD manager.
    ///
    /// The backend defaults to [`Backend::Bdd`]; setting the environment
    /// variable `JEDD_CHAIN=1` switches the default to [`Backend::Cbdd`]
    /// so a whole test or analysis run can be flipped to the chain-reduced
    /// kernel without code changes (the CI chain pass uses this).
    ///
    /// Likewise, `JEDD_PAGE_CACHE=N` switches the default manager to the
    /// disk-backed pager with a resident budget of `N` frames (`0` means
    /// paged but unbounded); unset or empty keeps the fully-resident
    /// arena. `JEDD_PAGE_DIR` picks the page-file directory. The flags
    /// compose: a chain-mode run can be paged. Only this default
    /// constructor reads the variables — explicit-backend construction
    /// (snapshot restore, the order lab) stays resident unless
    /// [`Universe::new_paged_with_backend`] is called.
    pub fn new() -> Universe {
        let backend = if std::env::var("JEDD_CHAIN").as_deref() == Ok("1") {
            Backend::Cbdd
        } else {
            Backend::Bdd
        };
        match page_cache_from_env() {
            Some(frames) => Universe::new_paged_with_backend(backend, frames),
            None => Universe::new_with_backend(backend),
        }
    }

    /// Creates an empty universe storing relations in the given backend.
    pub fn new_with_backend(backend: Backend) -> Universe {
        let mgr = if backend.is_chained() {
            BddManager::new_chained(0)
        } else {
            BddManager::new(0)
        };
        Universe::with_manager(backend, mgr)
    }

    /// Creates an empty universe whose node arena pages to disk under a
    /// resident budget of `frames` buffer-pool frames (`0` = paged but
    /// unbounded), on the default [`Backend::Bdd`].
    ///
    /// Paged universes produce tuple-identical relations to resident ones
    /// at any budget; they trade kernel speed for the ability to run
    /// analyses whose live node count exceeds memory.
    pub fn new_paged(frames: usize) -> Universe {
        Universe::new_paged_with_backend(Backend::Bdd, frames)
    }

    /// Creates an empty *paged* universe on an explicit backend.
    ///
    /// # Panics
    ///
    /// Panics when the page file cannot be created (same contract as
    /// [`jedd_bdd::BddManager::new_paged`]).
    pub fn new_paged_with_backend(backend: Backend, frames: usize) -> Universe {
        let mgr = BddManager::try_new_paged_full(0, frames, backend.is_chained())
            .expect("failed to create the page file for a paged universe");
        Universe::with_manager(backend, mgr)
    }

    fn with_manager(backend: Backend, mgr: BddManager) -> Universe {
        Universe {
            inner: Rc::new(RefCell::new(UniverseInner {
                mgr,
                backend,
                domains: Vec::new(),
                attrs: Vec::new(),
                physdoms: Vec::new(),
                stats: UniverseStats::default(),
                profiler: None,
                site: String::new(),
            })),
        }
    }

    /// Whether this universe's node arena pages to disk.
    pub fn is_paged(&self) -> bool {
        self.bdd_manager().is_paged()
    }

    /// The decision-diagram backend this universe was created with.
    pub fn backend(&self) -> Backend {
        self.inner.borrow().backend
    }

    /// The underlying BDD manager.
    pub fn bdd_manager(&self) -> BddManager {
        self.inner.borrow().mgr.clone()
    }

    /// Installs a resource [`Budget`] on the underlying BDD manager.
    /// Relational operations that exhaust it — after the manager's GC and
    /// reorder recovery ladder — return
    /// [`JeddError::ResourceExhausted`].
    pub fn set_budget(&self, budget: Budget) {
        self.bdd_manager().set_budget(budget);
    }

    /// The currently installed resource budget.
    pub fn budget(&self) -> Budget {
        self.bdd_manager().budget()
    }

    /// Installs (or clears) a deterministic fault-injection plan on the
    /// underlying BDD manager. Testing aid; see [`FailPlan`].
    pub fn set_fail_plan(&self, plan: Option<FailPlan>) {
        self.bdd_manager().set_fail_plan(plan);
    }

    /// Registers a domain of `size` objects (object indices `0..size`).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn add_domain(&self, name: &str, size: u64) -> DomainId {
        assert!(size > 0, "domain {name} must contain at least one object");
        let mut inner = self.inner.borrow_mut();
        let id = DomainId(inner.domains.len() as u32);
        inner.domains.push(DomainInfo {
            name: name.to_string(),
            size,
            elements: Vec::new(),
        });
        id
    }

    /// Registers a domain whose objects carry labels; the size is the
    /// number of labels.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty.
    pub fn add_domain_with_elements(&self, name: &str, elements: &[&str]) -> DomainId {
        assert!(!elements.is_empty(), "domain {name} must not be empty");
        let mut inner = self.inner.borrow_mut();
        let id = DomainId(inner.domains.len() as u32);
        inner.domains.push(DomainInfo {
            name: name.to_string(),
            size: elements.len() as u64,
            elements: elements.iter().map(|s| s.to_string()).collect(),
        });
        id
    }

    /// Registers an attribute (a named use of a domain).
    pub fn add_attribute(&self, name: &str, domain: DomainId) -> AttrId {
        let mut inner = self.inner.borrow_mut();
        let id = AttrId(inner.attrs.len() as u32);
        inner.attrs.push(AttrInfo {
            name: name.to_string(),
            domain,
        });
        id
    }

    /// The number of BDD variables belonging to *named* physical domains.
    ///
    /// Named domains are all registered up front (before any relation
    /// exists), so their variables are exactly `0..named_var_count()`;
    /// anything beyond belongs to anonymous scratch domains allocated on
    /// demand by the dynamic relational API. A learned variable order is
    /// persisted projected onto this prefix — scratch variables are
    /// transient and a fresh universe does not have them yet.
    pub fn named_var_count(&self) -> usize {
        self.inner
            .borrow()
            .physdoms
            .iter()
            .filter(|pd| !pd.anonymous)
            .map(|pd| pd.bits.len())
            .sum()
    }

    /// Registers a physical domain of `bits` BDD variables, allocated as a
    /// contiguous block at the bottom of the current variable order.
    pub fn add_physical_domain(&self, name: &str, bits: usize) -> PhysDomId {
        let mut inner = self.inner.borrow_mut();
        let range = inner.mgr.add_vars(bits);
        let id = PhysDomId(inner.physdoms.len() as u32);
        inner.physdoms.push(PhysDomInfo {
            name: name.to_string(),
            bits: range.collect(),
            anonymous: false,
        });
        id
    }

    /// Registers several physical domains with their bits *interleaved*
    /// (bit i of every domain is adjacent in the variable order). This is
    /// the ordering BuDDy's `fdd_extdomain` + interleaving gives, and is
    /// usually dramatically better for equality-heavy relations; the
    /// `var_order` bench quantifies the difference.
    ///
    /// All domains in the group receive `bits` variables.
    pub fn add_physical_domains_interleaved(&self, names: &[&str], bits: usize) -> Vec<PhysDomId> {
        let mut inner = self.inner.borrow_mut();
        let range = inner.mgr.add_vars(bits * names.len());
        let base = range.start;
        let n = names.len() as u32;
        let mut out = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            let id = PhysDomId(inner.physdoms.len() as u32);
            let bit_levels: Vec<u32> = (0..bits as u32).map(|b| base + b * n + i as u32).collect();
            inner.physdoms.push(PhysDomInfo {
                name: name.to_string(),
                bits: bit_levels,
                anonymous: false,
            });
            out.push(id);
        }
        out
    }

    /// Finds or creates an anonymous scratch physical domain with at least
    /// `bits` bits that is not in `in_use`. The dynamic relational API uses
    /// these when an operation needs to move an attribute out of the way;
    /// the jeddc path instead computes a global assignment and never needs
    /// them.
    pub fn scratch_physdom(&self, bits: usize, in_use: &[PhysDomId]) -> PhysDomId {
        {
            let inner = self.inner.borrow();
            for (i, pd) in inner.physdoms.iter().enumerate() {
                let id = PhysDomId(i as u32);
                if pd.anonymous && pd.bits.len() >= bits && !in_use.contains(&id) {
                    return id;
                }
            }
        }
        let mut inner = self.inner.borrow_mut();
        let range = inner.mgr.add_vars(bits);
        let id = PhysDomId(inner.physdoms.len() as u32);
        let name = format!("_S{}", id.0);
        inner.physdoms.push(PhysDomInfo {
            name,
            bits: range.collect(),
            anonymous: true,
        });
        id
    }

    /// Re-registers a physical domain from snapshot metadata: unlike
    /// [`Universe::add_physical_domain`] it does not allocate variables
    /// but adopts the recorded `bits` (variable indices, MSB first), which
    /// must already exist in the manager. Restore calls this after
    /// recreating the full variable block, replaying physical domains in
    /// registration order so ids come out identical.
    ///
    /// # Errors
    ///
    /// Returns [`JeddError::InvalidRestore`] if a bit index is outside the
    /// manager's variable range.
    pub fn restore_physical_domain(
        &self,
        name: &str,
        bits: &[u32],
        anonymous: bool,
    ) -> Result<PhysDomId, JeddError> {
        let mut inner = self.inner.borrow_mut();
        let num_vars = inner.mgr.num_vars() as u32;
        if let Some(&bad) = bits.iter().find(|&&b| b >= num_vars) {
            return Err(JeddError::InvalidRestore {
                detail: format!(
                    "physical domain {name} references variable {bad}, but only \
                     {num_vars} variables exist"
                ),
            });
        }
        let id = PhysDomId(inner.physdoms.len() as u32);
        inner.physdoms.push(PhysDomInfo {
            name: name.to_string(),
            bits: bits.to_vec(),
            anonymous,
        });
        Ok(id)
    }

    /// Overwrites the implicit-work counters; snapshot restore uses this
    /// to carry [`Universe::stats`] across a crash/resume boundary so
    /// profiling totals describe the whole logical run.
    pub fn restore_stats(&self, stats: UniverseStats) {
        self.inner.borrow_mut().stats = stats;
    }

    /// Number of registered domains.
    pub fn num_domains(&self) -> usize {
        self.inner.borrow().domains.len()
    }

    /// Number of registered attributes.
    pub fn num_attributes(&self) -> usize {
        self.inner.borrow().attrs.len()
    }

    /// The element labels of a domain (empty if the domain was registered
    /// by size only).
    pub fn domain_elements(&self, d: DomainId) -> Vec<String> {
        self.inner.borrow().domains[d.0 as usize].elements.clone()
    }

    /// Whether a physical domain is an anonymous scratch domain (see
    /// [`Universe::scratch_physdom`]).
    pub fn physdom_is_anonymous(&self, p: PhysDomId) -> bool {
        self.inner.borrow().physdoms[p.0 as usize].anonymous
    }

    /// Looks up an attribute id by name (first registration wins).
    pub fn find_attribute(&self, name: &str) -> Option<AttrId> {
        let inner = self.inner.borrow();
        inner
            .attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u32))
    }

    /// Looks up a physical-domain id by name (first registration wins).
    pub fn find_physdom(&self, name: &str) -> Option<PhysDomId> {
        let inner = self.inner.borrow();
        inner
            .physdoms
            .iter()
            .position(|p| p.name == name)
            .map(|i| PhysDomId(i as u32))
    }

    /// Looks up a domain id by name (first registration wins).
    pub fn find_domain(&self, name: &str) -> Option<DomainId> {
        let inner = self.inner.borrow();
        inner
            .domains
            .iter()
            .position(|d| d.name == name)
            .map(|i| DomainId(i as u32))
    }

    /// The name of a domain.
    pub fn domain_name(&self, d: DomainId) -> String {
        self.inner.borrow().domains[d.0 as usize].name.clone()
    }

    /// The number of objects in a domain.
    pub fn domain_size(&self, d: DomainId) -> u64 {
        self.inner.borrow().domains[d.0 as usize].size
    }

    /// The label of object `index` of domain `d` (`#index` if unlabelled).
    pub fn element_name(&self, d: DomainId, index: u64) -> String {
        let inner = self.inner.borrow();
        let info = &inner.domains[d.0 as usize];
        info.elements
            .get(index as usize)
            .cloned()
            .unwrap_or_else(|| format!("#{index}"))
    }

    /// Looks up an element index by label.
    pub fn element_index(&self, d: DomainId, label: &str) -> Option<u64> {
        let inner = self.inner.borrow();
        inner.domains[d.0 as usize]
            .elements
            .iter()
            .position(|e| e == label)
            .map(|i| i as u64)
    }

    /// The name of an attribute.
    pub fn attribute_name(&self, a: AttrId) -> String {
        self.inner.borrow().attrs[a.0 as usize].name.clone()
    }

    /// The domain of an attribute.
    pub fn attribute_domain(&self, a: AttrId) -> DomainId {
        self.inner.borrow().attrs[a.0 as usize].domain
    }

    /// The name of a physical domain.
    pub fn physdom_name(&self, p: PhysDomId) -> String {
        self.inner.borrow().physdoms[p.0 as usize].name.clone()
    }

    /// The BDD levels of a physical domain, most significant bit first.
    pub fn physdom_bits(&self, p: PhysDomId) -> Vec<u32> {
        self.inner.borrow().physdoms[p.0 as usize].bits.clone()
    }

    /// Number of registered physical domains.
    pub fn num_physdoms(&self) -> usize {
        self.inner.borrow().physdoms.len()
    }

    /// Checks that attribute `a`'s domain fits in physical domain `p`.
    pub fn check_fits(&self, a: AttrId, p: PhysDomId) -> Result<(), JeddError> {
        let inner = self.inner.borrow();
        let attr = &inner.attrs[a.0 as usize];
        let dom = &inner.domains[attr.domain.0 as usize];
        let bits = inner.physdoms[p.0 as usize].bits.len();
        let capacity = if bits >= 64 { u64::MAX } else { 1u64 << bits };
        if dom.size > capacity {
            return Err(JeddError::PhysicalDomainTooSmall {
                attribute: attr.name.clone(),
                physical: inner.physdoms[p.0 as usize].name.clone(),
                bits,
                domain_size: dom.size,
            });
        }
        Ok(())
    }

    /// The number of bits required to encode a domain.
    pub fn domain_bits(&self, d: DomainId) -> usize {
        let size = self.domain_size(d);
        (64 - (size - 1).leading_zeros() as usize).max(1)
    }

    /// Returns the BDD restricting physical domain `p` to the valid codes
    /// of domain `d` (`code < size`).
    pub fn valid_codes(&self, d: DomainId, p: PhysDomId) -> Bdd {
        let size = self.domain_size(d);
        let bits = self.physdom_bits(p);
        self.bdd_manager().less_than(&bits, size)
    }

    /// Budget-respecting form of [`Universe::valid_codes`].
    pub(crate) fn try_valid_codes(&self, d: DomainId, p: PhysDomId) -> Result<Bdd, BddError> {
        let size = self.domain_size(d);
        let bits = self.physdom_bits(p);
        self.bdd_manager().try_less_than(&bits, size)
    }

    /// Wraps a kernel-level budget failure in the relational-layer error,
    /// capturing the kernel counters at the point of failure.
    pub(crate) fn resource_exhausted(&self, op: &'static str, cause: BddError) -> JeddError {
        JeddError::ResourceExhausted {
            op,
            cause,
            stats: Box::new(self.bdd_manager().kernel_stats()),
        }
    }

    /// Runs the BDD kernel's dynamic variable reordering (Rudell sifting)
    /// and returns `(nodes_before, nodes_after)`. Relations remain valid:
    /// physical domains identify *variables*, which keep their identity
    /// across reordering; only the level positions change.
    ///
    /// This is the automated counterpart of the manual ordering tuning the
    /// paper's profiler supports (§4.3).
    pub fn reorder_sift(&self) -> (usize, usize) {
        self.bdd_manager().reorder_sift()
    }

    /// Statistics about implicit relational work.
    pub fn stats(&self) -> UniverseStats {
        self.inner.borrow().stats
    }

    pub(crate) fn count_auto_replace(&self) {
        self.inner.borrow_mut().stats.auto_replaces += 1;
    }

    pub(crate) fn count_op(&self) {
        self.inner.borrow_mut().stats.relational_ops += 1;
    }

    /// Installs a profiler sink receiving one event per relational
    /// operation (see `jedd-runtime` for the HTML profiler).
    pub fn set_profiler(&self, sink: Option<Rc<dyn ProfileSink>>) {
        self.inner.borrow_mut().profiler = sink;
    }

    /// Sets the source-site label attached to subsequent profile events.
    pub fn set_site(&self, site: &str) {
        self.inner.borrow_mut().site = site.to_string();
    }

    /// Sends an event to the installed profiler sink, if any. Drivers use
    /// this to record out-of-band events (such as graceful-degradation
    /// fallbacks) alongside the per-operation events the relational layer
    /// emits.
    pub fn profile(&self, event: OpEvent) {
        let sink = {
            let inner = self.inner.borrow();
            inner.profiler.clone()
        };
        if let Some(s) = sink {
            s.record(&event);
        }
    }

    pub(crate) fn current_site(&self) -> String {
        self.inner.borrow().site.clone()
    }

    pub(crate) fn profiler_enabled(&self) -> bool {
        self.inner.borrow().profiler.is_some()
    }

    pub(crate) fn profiler_wants_shapes(&self) -> bool {
        self.inner
            .borrow()
            .profiler
            .as_ref()
            .is_some_and(|p| p.wants_shapes())
    }

    /// Identity of the shared state; relations check this before
    /// combining.
    pub(crate) fn same_universe(&self, other: &Universe) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let u = Universe::new();
        let d = u.add_domain_with_elements("Type", &["A", "B", "C"]);
        assert_eq!(u.domain_size(d), 3);
        assert_eq!(u.element_name(d, 1), "B");
        assert_eq!(u.element_index(d, "C"), Some(2));
        assert_eq!(u.element_index(d, "Z"), None);
        let a = u.add_attribute("rectype", d);
        assert_eq!(u.attribute_name(a), "rectype");
        assert_eq!(u.attribute_domain(a), d);
    }

    #[test]
    fn physdoms_allocate_levels() {
        let u = Universe::new();
        let p1 = u.add_physical_domain("T1", 3);
        let p2 = u.add_physical_domain("T2", 3);
        assert_eq!(u.physdom_bits(p1), vec![0, 1, 2]);
        assert_eq!(u.physdom_bits(p2), vec![3, 4, 5]);
        assert_eq!(u.bdd_manager().num_vars(), 6);
    }

    #[test]
    fn interleaved_physdoms() {
        let u = Universe::new();
        let ids = u.add_physical_domains_interleaved(&["A", "B"], 3);
        assert_eq!(u.physdom_bits(ids[0]), vec![0, 2, 4]);
        assert_eq!(u.physdom_bits(ids[1]), vec![1, 3, 5]);
    }

    #[test]
    fn scratch_physdoms_are_reused() {
        let u = Universe::new();
        let s1 = u.scratch_physdom(4, &[]);
        let s2 = u.scratch_physdom(4, &[s1]);
        assert_ne!(s1, s2);
        let s3 = u.scratch_physdom(3, &[]);
        assert_eq!(s3, s1, "first free scratch domain should be reused");
    }

    #[test]
    fn domain_bits_and_fit() {
        let u = Universe::new();
        let d = u.add_domain("D", 5);
        assert_eq!(u.domain_bits(d), 3);
        let d1 = u.add_domain("One", 1);
        assert_eq!(u.domain_bits(d1), 1);
        let a = u.add_attribute("a", d);
        let small = u.add_physical_domain("S", 2);
        let big = u.add_physical_domain("B", 3);
        assert!(u.check_fits(a, small).is_err());
        assert!(u.check_fits(a, big).is_ok());
    }

    #[test]
    fn valid_codes_counts() {
        let u = Universe::new();
        let d = u.add_domain("D", 5);
        let p = u.add_physical_domain("P", 3);
        let v = u.valid_codes(d, p);
        assert_eq!(v.satcount_over(&u.physdom_bits(p)), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_domain_rejected() {
        let u = Universe::new();
        let _ = u.add_domain("Empty", 0);
    }
}
