//! Property-style tests for the physical-domain-assignment engine: random
//! constraint graphs are solved and the solution is checked against every
//! constraint; reported failures are checked to be genuine. Generation is
//! seeded with the in-tree PRNG so every run exercises the same cases.

use jedd_bdd::rng::XorShift64Star;
use jedd_core::assign::{AssignError, AssignmentProblem, OccId, PhysId, SourcePos};

const CASES: u64 = 96;

/// A randomly generated assignment problem, in raw form.
#[derive(Debug, Clone)]
struct RawProblem {
    /// Occurrences per expression (expression i has `exprs[i]` attrs).
    exprs: Vec<usize>,
    n_phys: usize,
    /// Edges between occurrence indices (taken modulo the occ count).
    equalities: Vec<(usize, usize)>,
    assignments: Vec<(usize, usize)>,
    /// Specified (occ, phys) pairs (taken modulo counts).
    specified: Vec<(usize, usize)>,
}

fn raw_problem(rng: &mut XorShift64Star) -> RawProblem {
    let exprs: Vec<usize> = (0..rng.gen_index(1..6)).map(|_| rng.gen_index(1..4)).collect();
    let n_phys = rng.gen_index(2..5);
    let pairs = |rng: &mut XorShift64Star, lo: usize, hi: usize, m: usize| -> Vec<(usize, usize)> {
        (0..rng.gen_index(lo..hi))
            .map(|_| (rng.gen_index(0..64), rng.gen_index(0..m)))
            .collect()
    };
    RawProblem {
        exprs,
        n_phys,
        equalities: pairs(rng, 0, 8, 64),
        assignments: pairs(rng, 0, 8, 64),
        specified: pairs(rng, 1, 5, 8),
    }
}

struct Built {
    problem: AssignmentProblem,
    occs: Vec<OccId>,
    phys: Vec<PhysId>,
    equalities: Vec<(OccId, OccId)>,
    specified: Vec<(OccId, PhysId)>,
    /// Conflict pairs (same-expression occurrences).
    conflicts: Vec<(OccId, OccId)>,
}

fn build(raw: &RawProblem) -> Built {
    let mut p = AssignmentProblem::new();
    let phys: Vec<PhysId> = (0..raw.n_phys)
        .map(|i| p.add_physdom(&format!("P{i}")))
        .collect();
    let mut occs = Vec::new();
    let mut conflicts = Vec::new();
    for (ei, &n) in raw.exprs.iter().enumerate() {
        let e = p.add_expr(&format!("e{ei}"), SourcePos { line: ei as u32 + 1, col: 1 });
        let first = occs.len();
        for ai in 0..n {
            occs.push(p.add_occurrence(e, &format!("a{ai}")));
        }
        for i in first..occs.len() {
            for j in (i + 1)..occs.len() {
                conflicts.push((occs[i], occs[j]));
            }
        }
    }
    let n = occs.len();
    let mut equalities = Vec::new();
    for &(a, b) in &raw.equalities {
        let (a, b) = (occs[a % n], occs[b % n]);
        if a != b {
            p.add_equality(a, b);
            equalities.push((a, b));
        }
    }
    for &(a, b) in &raw.assignments {
        let (a, b) = (occs[a % n], occs[b % n]);
        if a != b {
            p.add_assignment(a, b);
        }
    }
    let mut specified = Vec::new();
    for &(o, ph) in &raw.specified {
        let occ = occs[o % n];
        let ph = phys[ph % raw.n_phys];
        p.specify(occ, ph);
        specified.push((occ, ph));
    }
    Built {
        problem: p,
        occs,
        phys,
        equalities,
        specified,
        conflicts,
    }
}

/// Any solution returned satisfies every constraint of §3.3.2.
#[test]
fn solutions_satisfy_all_constraints() {
    let mut rng = XorShift64Star::new(0xa551);
    for case in 0..CASES {
        let raw = raw_problem(&mut rng);
        let b = build(&raw);
        match b.problem.solve() {
            Ok(sol) => {
                // 1/2: every occurrence got exactly one physical domain
                // (by construction of the decoder) within range.
                for &o in &b.occs {
                    assert!(b.phys.contains(&sol.physdom_of(o)), "case {case}");
                }
                // 3: specified occurrences got their domain. Note multiple
                // contradictory specifications of one occ make the
                // instance unsatisfiable, so reaching here means each was
                // honoured.
                for &(o, ph) in &b.specified {
                    assert_eq!(sol.physdom_of(o), ph, "specified occurrence, case {case}");
                }
                // 4: conflicts are separated.
                for &(a, bb) in &b.conflicts {
                    assert_ne!(
                        sol.physdom_of(a),
                        sol.physdom_of(bb),
                        "conflicting occurrences share a domain, case {case}"
                    );
                }
                // 5: equality edges are together.
                for &(a, bb) in &b.equalities {
                    assert_eq!(sol.physdom_of(a), sol.physdom_of(bb), "case {case}");
                }
            }
            Err(AssignError::Unreachable { .. }) => {
                // Must be genuine: some occurrence has no path to any
                // specified occurrence over equality+assignment edges.
                // (Checked structurally below.)
                let n = b.occs.len();
                let mut adj = vec![Vec::new(); n];
                let idx = |o: OccId| b.occs.iter().position(|&x| x == o).unwrap();
                for &(x, y) in b.equalities.iter() {
                    adj[idx(x)].push(idx(y));
                    adj[idx(y)].push(idx(x));
                }
                let assign_edges: Vec<(OccId, OccId)> = raw
                    .assignments
                    .iter()
                    .map(|&(a, c)| (b.occs[a % n], b.occs[c % n]))
                    .filter(|(a, c)| a != c)
                    .collect();
                for &(x, y) in &assign_edges {
                    adj[idx(x)].push(idx(y));
                    adj[idx(y)].push(idx(x));
                }
                let mut reach = vec![false; n];
                let mut stack: Vec<usize> = b.specified.iter().map(|&(o, _)| idx(o)).collect();
                while let Some(i) = stack.pop() {
                    if reach[i] {
                        continue;
                    }
                    reach[i] = true;
                    for &j in &adj[i] {
                        stack.push(j);
                    }
                }
                assert!(
                    reach.iter().any(|r| !r),
                    "Unreachable reported but every occurrence reaches a specification (case {case})"
                );
            }
            Err(AssignError::Conflict { physdom, .. }) => {
                // The reported conflict names a real physical domain.
                let known = (0..raw.n_phys).any(|i| format!("P{i}") == physdom);
                assert!(known, "conflict names an unknown physical domain, case {case}");
            }
            Err(AssignError::Inconsistent { .. }) => {
                // Only possible when some occurrence participates in more
                // than one specification chain; the random generator does
                // produce those.
                assert!(b.specified.len() > 1, "case {case}");
            }
        }
    }
}

/// Solving is deterministic: same problem, same assignment.
#[test]
fn solving_is_deterministic() {
    let mut rng = XorShift64Star::new(0xa552);
    for case in 0..CASES {
        let raw = raw_problem(&mut rng);
        let b1 = build(&raw);
        let b2 = build(&raw);
        match (b1.problem.solve(), b2.problem.solve()) {
            (Ok(s1), Ok(s2)) => {
                for (&o1, &o2) in b1.occs.iter().zip(b2.occs.iter()) {
                    assert_eq!(s1.physdom_of(o1), s2.physdom_of(o2), "case {case}");
                }
            }
            (Err(e1), Err(e2)) => assert_eq!(e1, e2, "case {case}"),
            (a, b) => panic!("outcomes diverge in case {case}: {a:?} vs {b:?}"),
        }
    }
}

/// Problems whose every component carries exactly one specification and
/// which have enough physical domains are always satisfiable.
#[test]
fn tree_shaped_problems_solve() {
    for n_exprs in 1usize..5 {
        for attrs_per in 1usize..4 {
            let mut p = AssignmentProblem::new();
            // One physical domain per attribute position: always enough.
            let phys: Vec<PhysId> = (0..attrs_per)
                .map(|i| p.add_physdom(&format!("P{i}")))
                .collect();
            let mut prev: Option<Vec<OccId>> = None;
            for ei in 0..n_exprs {
                let e = p.add_expr(&format!("e{ei}"), SourcePos { line: 1, col: 1 });
                let row: Vec<OccId> = (0..attrs_per)
                    .map(|ai| p.add_occurrence(e, &format!("a{ai}")))
                    .collect();
                if let Some(prev_row) = &prev {
                    for (a, b) in prev_row.iter().zip(row.iter()) {
                        p.add_assignment(*a, *b);
                    }
                } else {
                    for (i, &o) in row.iter().enumerate() {
                        p.specify(o, phys[i]);
                    }
                }
                prev = Some(row);
            }
            let sol = p.solve();
            assert!(sol.is_ok(), "chain problem must solve: {:?}", sol.err());
        }
    }
}
