//! Property-style tests: every relational operation is cross-checked
//! against a naive set-of-tuples model, on seeded random tuple sets.

use jedd_bdd::rng::XorShift64Star;
use jedd_core::{AttrId, PhysDomId, Relation, Universe};
use std::collections::BTreeSet;

const DOM: u64 = 5; // every domain has 5 objects
const BITS: usize = 3;
const CASES: u64 = 64;

/// The universe for the property tests: three attributes a, b, c over one
/// domain, plus renaming targets, with one physical domain each.
struct Ctx {
    u: Universe,
    attrs: Vec<AttrId>,
    pds: Vec<PhysDomId>,
}

fn ctx() -> Ctx {
    let u = Universe::new();
    let d = u.add_domain("D", DOM);
    let names = ["a", "b", "c", "x", "y"];
    let attrs: Vec<AttrId> = names.iter().map(|n| u.add_attribute(n, d)).collect();
    let pds: Vec<PhysDomId> = (0..6)
        .map(|i| u.add_physical_domain(&format!("P{i}"), BITS))
        .collect();
    Ctx { u, attrs, pds }
}

type Model = BTreeSet<Vec<u64>>;

fn tuples2(rng: &mut XorShift64Star) -> Vec<Vec<u64>> {
    (0..rng.gen_index(0..12))
        .map(|_| vec![rng.gen_range(0..DOM), rng.gen_range(0..DOM)])
        .collect()
}

fn build2(c: &Ctx, tuples: &[Vec<u64>], a0: usize, a1: usize, p0: usize, p1: usize) -> Relation {
    Relation::from_tuples(
        &c.u,
        &[(c.attrs[a0], c.pds[p0]), (c.attrs[a1], c.pds[p1])],
        tuples,
    )
    .unwrap()
}

fn model(tuples: &[Vec<u64>]) -> Model {
    tuples.iter().cloned().collect()
}

fn rel_model(r: &Relation) -> Model {
    r.tuples().into_iter().collect()
}

#[test]
fn set_ops_match_model() {
    let mut rng = XorShift64Star::new(0xe1a1);
    for _ in 0..CASES {
        let (ta, tb) = (tuples2(&mut rng), tuples2(&mut rng));
        let c = ctx();
        // Schema (a, b) on P0, P1 for the left; P2, P3 for the right so an
        // auto-replace happens on every operation.
        let ra = build2(&c, &ta, 0, 1, 0, 1);
        let rb = build2(&c, &tb, 0, 1, 2, 3);
        let (ma, mb) = (model(&ta), model(&tb));
        assert_eq!(
            rel_model(&ra.union(&rb).unwrap()),
            ma.union(&mb).cloned().collect::<Model>()
        );
        assert_eq!(
            rel_model(&ra.intersect(&rb).unwrap()),
            ma.intersection(&mb).cloned().collect::<Model>()
        );
        assert_eq!(
            rel_model(&ra.minus(&rb).unwrap()),
            ma.difference(&mb).cloned().collect::<Model>()
        );
        assert_eq!(ra.equals(&rb).unwrap(), ma == mb);
        assert_eq!(ra.size(), ma.len() as u64);
    }
}

#[test]
fn project_matches_model() {
    let mut rng = XorShift64Star::new(0xe1a2);
    for _ in 0..CASES {
        let ta = tuples2(&mut rng);
        let c = ctx();
        let ra = build2(&c, &ta, 0, 1, 0, 1);
        let projected = ra.project_away(&[c.attrs[1]]).unwrap();
        let expect: Model = model(&ta).into_iter().map(|t| vec![t[0]]).collect();
        assert_eq!(rel_model(&projected), expect);
    }
}

#[test]
fn rename_preserves_tuples() {
    let mut rng = XorShift64Star::new(0xe1a3);
    for _ in 0..CASES {
        let ta = tuples2(&mut rng);
        let c = ctx();
        let ra = build2(&c, &ta, 0, 1, 0, 1);
        // rename b -> x; attr order in the new schema is (a, x) since
        // AttrId order is declaration order (a < x).
        let renamed = ra.rename(c.attrs[1], c.attrs[3]).unwrap();
        assert_eq!(rel_model(&renamed), model(&ta));
    }
}

#[test]
fn copy_matches_model() {
    let mut rng = XorShift64Star::new(0xe1a4);
    for _ in 0..CASES {
        let ta = tuples2(&mut rng);
        let c = ctx();
        let ra = build2(&c, &ta, 0, 1, 0, 1);
        // copy a => a x : schema (a, b, x); x mirrors a.
        let copied = ra
            .copy(c.attrs[0], c.attrs[0], c.attrs[3], Some(c.pds[4]))
            .unwrap();
        let expect: Model = model(&ta)
            .into_iter()
            .map(|t| vec![t[0], t[1], t[0]])
            .collect();
        assert_eq!(rel_model(&copied), expect);
    }
}

#[test]
fn join_matches_model() {
    let mut rng = XorShift64Star::new(0xe1a5);
    for _ in 0..CASES {
        let (ta, tb) = (tuples2(&mut rng), tuples2(&mut rng));
        let c = ctx();
        // left: (a, b); right: (b', c) compared on b — use attrs b=1 on the
        // left, x=3 on the right (same domain), keep c=2.
        let ra = build2(&c, &ta, 0, 1, 0, 1);
        let rb = build2(&c, &tb, 2, 3, 2, 3); // attrs (c, x), pds P2, P3
        let joined = ra.join(&[c.attrs[1]], &rb, &[c.attrs[3]]).unwrap();
        // model: {(a, b, c) | (a,b) in A, (c, x) in B, b == x}
        let mut expect: Model = Model::new();
        for l in &ta {
            for r in &tb {
                // rb tuples are in schema order (c, x) because attr c < x.
                if l[1] == r[1] {
                    expect.insert(vec![l[0], l[1], r[0]]);
                }
            }
        }
        assert_eq!(rel_model(&joined), expect);
    }
}

#[test]
fn compose_is_join_project() {
    let mut rng = XorShift64Star::new(0xe1a6);
    for _ in 0..CASES {
        let (ta, tb) = (tuples2(&mut rng), tuples2(&mut rng));
        let c = ctx();
        let ra = build2(&c, &ta, 0, 1, 0, 1);
        let rb = build2(&c, &tb, 2, 3, 2, 3);
        let composed = ra.compose(&[c.attrs[1]], &rb, &[c.attrs[3]]).unwrap();
        let joined = ra
            .join(&[c.attrs[1]], &rb, &[c.attrs[3]])
            .unwrap()
            .project_away(&[c.attrs[1]])
            .unwrap();
        assert!(composed.equals(&joined).unwrap());
    }
}

#[test]
fn replace_roundtrip_preserves() {
    let mut rng = XorShift64Star::new(0xe1a7);
    for _ in 0..CASES {
        let ta = tuples2(&mut rng);
        let c = ctx();
        let ra = build2(&c, &ta, 0, 1, 0, 1);
        let moved = ra
            .with_assignment(&[(c.attrs[0], c.pds[4]), (c.attrs[1], c.pds[5])])
            .unwrap();
        assert_eq!(rel_model(&moved), model(&ta));
        let back = moved
            .with_assignment(&[(c.attrs[0], c.pds[0]), (c.attrs[1], c.pds[1])])
            .unwrap();
        assert_eq!(back.bdd(), ra.bdd());
    }
}

#[test]
fn select_matches_model() {
    let mut rng = XorShift64Star::new(0xe1a8);
    for _ in 0..CASES {
        let ta = tuples2(&mut rng);
        let v = rng.gen_range(0..DOM);
        let c = ctx();
        let ra = build2(&c, &ta, 0, 1, 0, 1);
        let sel = ra.select(c.attrs[0], v).unwrap();
        let expect: Model = model(&ta).into_iter().filter(|t| t[0] == v).collect();
        assert_eq!(rel_model(&sel), expect);
    }
}

#[test]
fn contains_matches_model() {
    let mut rng = XorShift64Star::new(0xe1a9);
    for _ in 0..CASES {
        let ta = tuples2(&mut rng);
        let probe = vec![rng.gen_range(0..DOM), rng.gen_range(0..DOM)];
        let c = ctx();
        let ra = build2(&c, &ta, 0, 1, 0, 1);
        assert_eq!(ra.contains(&probe), model(&ta).contains(&probe));
    }
}
