//! Integration tests for the relational algebra, including a faithful
//! walkthrough of the paper's Figures 3 and 4 (virtual call resolution).

use jedd_core::{JeddError, Relation, Universe};

/// Builds the universe of the paper's running example (Figs. 3 and 4).
struct Fig4 {
    u: Universe,
    // attributes
    rectype: jedd_core::AttrId,
    signature: jedd_core::AttrId,
    tgttype: jedd_core::AttrId,
    method: jedd_core::AttrId,
    ty: jedd_core::AttrId,
    subtype: jedd_core::AttrId,
    supertype: jedd_core::AttrId,
    // physical domains
    t1: jedd_core::PhysDomId,
    s1: jedd_core::PhysDomId,
    t2: jedd_core::PhysDomId,
    m1: jedd_core::PhysDomId,
    t3: jedd_core::PhysDomId,
    // relations
    receiver_types: Relation,
    declares_method: Relation,
    extend: Relation,
}

const A: u64 = 0;
const B: u64 = 1;
const FOO: u64 = 0;
const BAR: u64 = 1;
const A_FOO: u64 = 0;
const B_BAR: u64 = 1;

fn fig4() -> Fig4 {
    let u = Universe::new();
    let type_dom = u.add_domain_with_elements("Type", &["A", "B"]);
    let sig_dom = u.add_domain_with_elements("Signature", &["foo()", "bar()"]);
    let method_dom = u.add_domain_with_elements("Method", &["A.foo()", "B.bar()"]);

    let t1 = u.add_physical_domain("T1", 2);
    let s1 = u.add_physical_domain("S1", 2);
    let t2 = u.add_physical_domain("T2", 2);
    let m1 = u.add_physical_domain("M1", 2);
    let t3 = u.add_physical_domain("T3", 2);

    let rectype = u.add_attribute("rectype", type_dom);
    let signature = u.add_attribute("signature", sig_dom);
    let tgttype = u.add_attribute("tgttype", type_dom);
    let method = u.add_attribute("method", method_dom);
    let ty = u.add_attribute("type", type_dom);
    let subtype = u.add_attribute("subtype", type_dom);
    let supertype = u.add_attribute("supertype", type_dom);

    // Fig. 4(a): receiver type B at two call sites.
    let receiver_types = Relation::from_tuples(
        &u,
        &[(rectype, t1), (signature, s1)],
        &[vec![B, FOO], vec![B, BAR]],
    )
    .unwrap();

    // Fig. 3: implementsMethod / declaresMethod.
    let declares_method = Relation::from_tuples(
        &u,
        &[(ty, t2), (signature, s1), (method, m1)],
        &[vec![A, FOO, A_FOO], vec![B, BAR, B_BAR]],
    )
    .unwrap();

    // Fig. 4(d): B extends A.
    let extend =
        Relation::from_tuples(&u, &[(subtype, t2), (supertype, t3)], &[vec![B, A]]).unwrap();

    Fig4 {
        u,
        rectype,
        signature,
        tgttype,
        method,
        ty,
        subtype,
        supertype,
        t1,
        s1,
        t2,
        m1,
        t3,
        receiver_types,
        declares_method,
        extend,
    }
}

/// The full virtual-call-resolution loop of Fig. 4, asserting every
/// intermediate relation against the paper's sub-figures.
#[test]
fn figure4_walkthrough() {
    let f = fig4();

    // Line 3: copy rectype into (rectype, tgttype).
    let mut to_resolve = f
        .receiver_types
        .copy(f.rectype, f.rectype, f.tgttype, Some(f.t2))
        .unwrap();
    // Fig. 4(b): {(B, foo(), B), (B, bar(), B)} over (rectype, signature, tgttype).
    assert_eq!(to_resolve.size(), 2);
    assert!(to_resolve.contains(&[B, FOO, B]));
    assert!(to_resolve.contains(&[B, BAR, B]));

    let mut answer = Relation::empty(
        &f.u,
        &[
            (f.rectype, f.t1),
            (f.signature, f.s1),
            (f.tgttype, f.t2),
            (f.method, f.m1),
        ],
    )
    .unwrap();

    let mut iterations = 0;
    loop {
        iterations += 1;
        // Lines 6-7: join on (tgttype, signature) vs (type, signature).
        let resolved = to_resolve
            .join(
                &[f.tgttype, f.signature],
                &f.declares_method,
                &[f.ty, f.signature],
            )
            .unwrap();
        if iterations == 1 {
            // Fig. 4(c): only B/bar() resolves in the first iteration.
            assert_eq!(resolved.size(), 1);
            assert!(resolved.contains(&[B, BAR, B, B_BAR]));
        }
        if iterations == 2 {
            // Fig. 4(g): B/foo() resolves to A.foo() at supertype A.
            assert_eq!(resolved.size(), 1);
            assert!(resolved.contains(&[B, FOO, A, A_FOO]));
        }

        // Line 8: answer |= resolved.
        answer = answer.union(&resolved).unwrap();

        // Line 9: toResolve -= (method=>) resolved.
        let resolved_no_method = resolved.project_away(&[f.method]).unwrap();
        to_resolve = to_resolve.minus(&resolved_no_method).unwrap();
        if iterations == 1 {
            // Fig. 4(e): {(B, foo(), B)} remains.
            assert_eq!(to_resolve.size(), 1);
            assert!(to_resolve.contains(&[B, FOO, B]));
        }

        // Line 10: walk up the hierarchy with a composition.
        let stepped = to_resolve
            .compose(&[f.tgttype], &f.extend, &[f.subtype])
            .unwrap();
        to_resolve = stepped.rename(f.supertype, f.tgttype).unwrap();
        if iterations == 1 {
            // Fig. 4(f): {(B, foo(), A)}.
            assert_eq!(to_resolve.size(), 1);
            assert!(to_resolve.contains(&[B, FOO, A]));
        }

        // Line 11: while (toResolve != 0B).
        if to_resolve.is_empty() {
            break;
        }
        assert!(iterations < 10, "resolution failed to converge");
    }

    assert_eq!(iterations, 2);
    // Final answer: foo() -> A.foo(), bar() -> B.bar() for receiver B.
    assert_eq!(answer.size(), 2);
    assert!(answer.contains(&[B, FOO, A, A_FOO]));
    assert!(answer.contains(&[B, BAR, B, B_BAR]));
}

#[test]
fn figure3_literal_and_display() {
    let f = fig4();
    // new { newtype=>type, newsig=>signature, newmethod=>method }
    let t = Relation::tuple(
        &f.u,
        &[(f.ty, f.t2, A), (f.signature, f.s1, FOO), (f.method, f.m1, A_FOO)],
    )
    .unwrap();
    assert_eq!(t.size(), 1);
    let display = t.display_tuples();
    assert!(display.contains("type=A"));
    assert!(display.contains("signature=foo()"));
    assert!(display.contains("method=A.foo()"));
}

#[test]
fn set_ops_match_paper_semantics() {
    let f = fig4();
    let r = &f.receiver_types;
    // union / intersect / minus with self.
    assert!(r.union(r).unwrap().equals(r).unwrap());
    assert!(r.intersect(r).unwrap().equals(r).unwrap());
    assert!(r.minus(r).unwrap().is_empty());
    // 0B behaviour.
    let empty = Relation::empty(&f.u, r.schema()).unwrap();
    assert!(r.union(&empty).unwrap().equals(r).unwrap());
    assert!(r.intersect(&empty).unwrap().is_empty());
    assert!(r.minus(&empty).unwrap().equals(r).unwrap());
}

#[test]
fn full_relation_counts_valid_tuples_only() {
    let u = Universe::new();
    let d5 = u.add_domain("D5", 5);
    let d3 = u.add_domain("D3", 3);
    let p1 = u.add_physical_domain("P1", 3);
    let p2 = u.add_physical_domain("P2", 2);
    let a = u.add_attribute("a", d5);
    let b = u.add_attribute("b", d3);
    let full = Relation::full(&u, &[(a, p1), (b, p2)]).unwrap();
    assert_eq!(full.size(), 15, "5 * 3 valid tuples, not 8 * 4 codes");
}

#[test]
fn schema_mismatch_errors() {
    let f = fig4();
    let err = f.receiver_types.union(&f.extend).unwrap_err();
    assert!(matches!(err, JeddError::SchemaMismatch { .. }));
    let err = f.receiver_types.equals(&f.declares_method).unwrap_err();
    assert!(matches!(err, JeddError::SchemaMismatch { .. }));
}

#[test]
fn project_away_merges_duplicates() {
    let f = fig4();
    // Projecting signature away merges (B, foo()) and (B, bar()).
    let projected = f.receiver_types.project_away(&[f.signature]).unwrap();
    assert_eq!(projected.size(), 1);
    assert!(projected.contains(&[B]));
}

#[test]
fn project_onto_keeps_selected() {
    let f = fig4();
    let sigs = f.receiver_types.project_onto(&[f.signature]).unwrap();
    assert_eq!(sigs.size(), 2);
    assert_eq!(sigs.attributes(), vec![f.signature]);
}

#[test]
fn project_missing_attribute_errors() {
    let f = fig4();
    let err = f.receiver_types.project_away(&[f.method]).unwrap_err();
    assert!(matches!(err, JeddError::NoSuchAttribute { .. }));
}

#[test]
fn rename_changes_schema_not_bdd() {
    let f = fig4();
    let renamed = f.extend.rename(f.supertype, f.tgttype).unwrap();
    assert_eq!(renamed.attributes(), vec![f.tgttype, f.subtype]);
    // Renaming requires no BDD change (paper §3.2.2).
    assert_eq!(renamed.bdd(), f.extend.bdd());
    // Rename to an attribute already present fails.
    let err = f.extend.rename(f.supertype, f.subtype).unwrap_err();
    assert!(matches!(err, JeddError::DuplicateAttribute { .. }));
}

#[test]
fn rename_requires_same_domain() {
    let f = fig4();
    let err = f.receiver_types.rename(f.rectype, f.method).unwrap_err();
    assert!(matches!(err, JeddError::DomainMismatch { .. }));
}

#[test]
fn copy_duplicates_values() {
    let f = fig4();
    let copied = f
        .receiver_types
        .copy(f.rectype, f.rectype, f.tgttype, Some(f.t2))
        .unwrap();
    assert_eq!(copied.size(), 2);
    for t in copied.tuples() {
        // schema order: rectype < signature < tgttype (AttrId order).
        assert_eq!(t[0], t[2], "copied attribute must mirror the original");
    }
}

#[test]
fn copy_to_scratch_domain() {
    let f = fig4();
    let copied = f
        .receiver_types
        .copy(f.rectype, f.rectype, f.tgttype, None)
        .unwrap();
    assert_eq!(copied.size(), 2);
    for t in copied.tuples() {
        assert_eq!(t[0], t[2]);
    }
}

#[test]
fn join_matches_on_compared_attributes() {
    let f = fig4();
    // Join receiverTypes{signature} with declaresMethod{signature}:
    // keeps rectype, signature (left), type, method (right kept).
    let joined = f
        .receiver_types
        .join(&[f.signature], &f.declares_method, &[f.signature])
        .unwrap();
    // (B,foo())x(A,foo(),A.foo()) and (B,bar())x(B,bar(),B.bar()).
    assert_eq!(joined.size(), 2);
    assert!(joined.contains(&[B, FOO, A_FOO, A]) || joined.contains(&[B, FOO, A, A_FOO]));
}

#[test]
fn join_requires_equal_list_lengths() {
    let f = fig4();
    let err = f
        .receiver_types
        .join(&[f.signature], &f.declares_method, &[f.signature, f.ty])
        .unwrap_err();
    assert!(matches!(err, JeddError::ComparedListLength { .. }));
}

#[test]
fn join_rejects_overlapping_schemas() {
    let f = fig4();
    // receiverTypes has signature; joining on rectype only would leave
    // signature on both sides.
    let other = f.receiver_types.clone();
    let err = f
        .receiver_types
        .join(&[f.rectype], &other, &[f.rectype])
        .unwrap_err();
    assert!(matches!(err, JeddError::OverlappingSchemas { .. }));
}

#[test]
fn join_rejects_domain_mismatch() {
    let f = fig4();
    let err = f
        .receiver_types
        .join(&[f.rectype], &f.declares_method, &[f.method])
        .unwrap_err();
    assert!(matches!(err, JeddError::DomainMismatch { .. }));
}

#[test]
fn compose_equals_join_then_project() {
    let f = fig4();
    let to_resolve = f
        .receiver_types
        .copy(f.rectype, f.rectype, f.tgttype, Some(f.t2))
        .unwrap();
    let composed = to_resolve
        .compose(&[f.tgttype], &f.extend, &[f.subtype])
        .unwrap();
    let joined = to_resolve
        .join(&[f.tgttype], &f.extend, &[f.subtype])
        .unwrap()
        .project_away(&[f.tgttype])
        .unwrap();
    assert!(composed.equals(&joined).unwrap());
    // Fig. 4(f): {(B, foo(), A), (B, bar(), A)} before the minus — here we
    // composed the unsubtracted toResolve, so both rows step up to A.
    assert_eq!(composed.size(), 2);
}

#[test]
fn select_is_join_with_literal() {
    let f = fig4();
    let sel = f.receiver_types.select(f.signature, BAR).unwrap();
    assert_eq!(sel.size(), 1);
    assert!(sel.contains(&[B, BAR]));
}

#[test]
fn with_assignment_moves_physical_domains() {
    let f = fig4();
    // Move rectype from T1 to T3 explicitly; contents are unchanged.
    let moved = f
        .receiver_types
        .with_assignment(&[(f.rectype, f.t3)])
        .unwrap();
    assert_eq!(moved.physdom_of(f.rectype), Some(f.t3));
    assert_eq!(moved.size(), 2);
    assert!(moved.contains(&[B, FOO]));
    // equals() aligns automatically, so the relations still compare equal.
    assert!(moved.equals(&f.receiver_types).unwrap());
    // Round-trip back.
    let back = moved.with_assignment(&[(f.rectype, f.t1)]).unwrap();
    assert_eq!(back.bdd(), f.receiver_types.bdd());
}

#[test]
fn auto_replace_counted() {
    let f = fig4();
    let before = f.u.stats().auto_replaces;
    let moved = f
        .receiver_types
        .with_assignment(&[(f.rectype, f.t3)])
        .unwrap();
    // Set op between differently-assigned relations inserts a replace.
    let _ = moved.union(&f.receiver_types).unwrap();
    assert!(f.u.stats().auto_replaces > before);
}

#[test]
fn tuple_out_of_range_rejected() {
    let f = fig4();
    let err = Relation::tuple(&f.u, &[(f.rectype, f.t1, 7)]).unwrap_err();
    assert!(matches!(err, JeddError::ObjectOutOfRange { .. }));
}

#[test]
fn universe_mismatch_detected() {
    let f1 = fig4();
    let f2 = fig4();
    let err = f1.receiver_types.union(&f2.receiver_types).unwrap_err();
    assert!(matches!(err, JeddError::UniverseMismatch));
}

#[test]
fn duplicate_physdom_in_schema_rejected() {
    let f = fig4();
    let err = Relation::empty(&f.u, &[(f.rectype, f.t1), (f.tgttype, f.t1)]).unwrap_err();
    assert!(matches!(err, JeddError::DuplicateAttribute { .. }));
}

#[test]
fn physdom_too_small_rejected() {
    let u = Universe::new();
    let big = u.add_domain("Big", 100);
    let tiny = u.add_physical_domain("Tiny", 2);
    let a = u.add_attribute("a", big);
    let err = Relation::empty(&u, &[(a, tiny)]).unwrap_err();
    assert!(matches!(err, JeddError::PhysicalDomainTooSmall { .. }));
}

#[test]
fn zero_ary_relation_after_full_projection() {
    let f = fig4();
    let all_away = f
        .receiver_types
        .project_away(&[f.rectype, f.signature])
        .unwrap();
    // A 0-ary relation holds one (empty) tuple when non-empty.
    assert_eq!(all_away.size(), 1);
    assert!(all_away.attributes().is_empty());
}

#[test]
fn tuples_roundtrip() {
    let f = fig4();
    let ts = f.declares_method.tuples();
    let rebuilt = Relation::from_tuples(&f.u, f.declares_method.schema(), &ts).unwrap();
    assert!(rebuilt.equals(&f.declares_method).unwrap());
}
