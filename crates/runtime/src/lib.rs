//! # jedd-runtime
//!
//! Runtime support for the Jedd system (Lhoták & Hendren, PLDI 2004,
//! §4): the pieces the generated Java code relies on beyond the BDD
//! backend itself.
//!
//! * [`RelationContainer`] — the per-variable container object of §4.2:
//!   values are released eagerly on overwrite and can be killed early.
//! * [`LivenessCfg`] — the static liveness analysis of §4.2 that drives
//!   early releases at a variable's last use.
//! * [`Profiler`] — the profiler of §4.3, collecting per-operation
//!   counts, times and BDD sizes/shapes through the
//!   [`jedd_core::ProfileSink`] hook.
//! * [`render_html`] — the browsable profile views (a static HTML page
//!   with inline-SVG shape charts, standing in for the paper's SQL + CGI
//!   stack).
//!
//! # Examples
//!
//! ```
//! use jedd_core::{Relation, Universe};
//! use jedd_runtime::{render_html, Profiler};
//! use std::rc::Rc;
//!
//! # fn main() -> Result<(), jedd_core::JeddError> {
//! let u = Universe::new();
//! let profiler = Rc::new(Profiler::new());
//! u.set_profiler(Some(profiler.clone()));
//! let d = u.add_domain("D", 8);
//! let p = u.add_physical_domain("P", 3);
//! let a = u.add_attribute("a", d);
//! let r = Relation::from_tuples(&u, &[(a, p)], &[vec![1], vec![5]])?;
//! let _ = r.union(&r)?;
//! let html = render_html(&profiler);
//! assert!(html.contains("union"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod container;
mod html;
mod liveness;
mod profile;
mod sql;

pub use container::{ContainerStats, RelationContainer};
pub use html::{render_html, render_html_with_kernel};
pub use liveness::{LivenessCfg, LivenessResult, LivenessStmt};
pub use profile::{ProfileRow, Profiler};
pub use sql::render_sql;
