//! Relation containers — the runtime object jeddc generates for every
//! relation-typed variable and field (paper §4.2).
//!
//! In the Java implementation the container mediates all reads and writes
//! so reference counts are maintained and a BDD being overwritten is
//! released immediately. In Rust, `Drop` on [`jedd_core::Relation`] plays
//! the reference-count role; the container reproduces the *observable*
//! behaviour — a value is released as soon as it is overwritten or
//! explicitly killed by the liveness pass — and instruments it.

use jedd_core::Relation;
use std::cell::RefCell;
use std::fmt;

/// Statistics about one container's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContainerStats {
    /// Assignments performed.
    pub assigns: u64,
    /// Values released (by overwrite or explicit kill).
    pub releases: u64,
    /// Peak node count ever stored.
    pub peak_nodes: usize,
}

/// A mutable cell holding at most one relation, releasing the previous
/// value eagerly on overwrite (the paper's second dead-BDD case) and
/// supporting explicit early release (`kill`, driven by the liveness
/// analysis — the third case).
///
/// # Examples
///
/// ```
/// use jedd_core::{Relation, Universe};
/// use jedd_runtime::RelationContainer;
/// # fn main() -> Result<(), jedd_core::JeddError> {
/// let u = Universe::new();
/// let d = u.add_domain("D", 4);
/// let p = u.add_physical_domain("P", 2);
/// let a = u.add_attribute("a", d);
/// let c = RelationContainer::new("tmp");
/// c.assign(Relation::from_tuples(&u, &[(a, p)], &[vec![0]])?);
/// assert_eq!(c.get().unwrap().size(), 1);
/// c.kill();
/// assert!(c.get().is_none());
/// assert_eq!(c.stats().releases, 1);
/// # Ok(())
/// # }
/// ```
pub struct RelationContainer {
    name: String,
    value: RefCell<Option<Relation>>,
    stats: RefCell<ContainerStats>,
}

impl fmt::Debug for RelationContainer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RelationContainer")
            .field("name", &self.name)
            .field("occupied", &self.value.borrow().is_some())
            .finish()
    }
}

impl RelationContainer {
    /// Creates an empty container.
    pub fn new(name: &str) -> RelationContainer {
        RelationContainer {
            name: name.to_string(),
            value: RefCell::new(None),
            stats: RefCell::new(ContainerStats::default()),
        }
    }

    /// The variable name this container models.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stores a relation, releasing (dropping) any previous value first —
    /// "a BDD being overwritten has its reference count decremented
    /// immediately" (§4.2).
    pub fn assign(&self, r: Relation) {
        let mut stats = self.stats.borrow_mut();
        stats.assigns += 1;
        stats.peak_nodes = stats.peak_nodes.max(r.node_count());
        let mut v = self.value.borrow_mut();
        if v.is_some() {
            stats.releases += 1;
        }
        *v = Some(r);
    }

    /// The current value, if any (cheap clone: shares the BDD).
    pub fn get(&self) -> Option<Relation> {
        self.value.borrow().clone()
    }

    /// Releases the value immediately. Driven by the liveness analysis at
    /// the last use of a variable.
    pub fn kill(&self) {
        let mut v = self.value.borrow_mut();
        if v.take().is_some() {
            self.stats.borrow_mut().releases += 1;
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> ContainerStats {
        *self.stats.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedd_core::Universe;

    fn rel(u: &Universe, vals: &[u64]) -> Relation {
        let d = u.add_domain("D", 8);
        let p = u.add_physical_domain("P", 3);
        let a = u.add_attribute("a", d);
        let tuples: Vec<Vec<u64>> = vals.iter().map(|&v| vec![v]).collect();
        Relation::from_tuples(u, &[(a, p)], &tuples).unwrap()
    }

    #[test]
    fn overwrite_releases_previous() {
        let u = Universe::new();
        let c = RelationContainer::new("x");
        c.assign(rel(&u, &[1]));
        assert_eq!(c.stats().releases, 0);
        c.assign(rel(&u, &[2, 3]));
        assert_eq!(c.stats().releases, 1);
        assert_eq!(c.stats().assigns, 2);
        assert_eq!(c.get().unwrap().size(), 2);
    }

    #[test]
    fn kill_is_idempotent() {
        let u = Universe::new();
        let c = RelationContainer::new("x");
        c.assign(rel(&u, &[1]));
        c.kill();
        c.kill();
        assert_eq!(c.stats().releases, 1);
        assert!(c.get().is_none());
    }

    #[test]
    fn released_nodes_are_reclaimable() {
        // The point of §4.2: once the container releases a BDD, a GC can
        // reclaim its nodes.
        let u = Universe::new();
        let d = u.add_domain("D", 256);
        let p = u.add_physical_domain("P", 8);
        let a = u.add_attribute("a", d);
        let mgr = u.bdd_manager();
        let c = RelationContainer::new("big");
        let tuples: Vec<Vec<u64>> = (0..200u64).step_by(3).map(|v| vec![v]).collect();
        c.assign(Relation::from_tuples(&u, &[(a, p)], &tuples).unwrap());
        mgr.gc();
        let live_with_value = mgr.live_nodes();
        c.kill();
        mgr.gc();
        assert!(
            mgr.live_nodes() < live_with_value,
            "killing the container must free nodes at the next collection"
        );
    }
}
