//! Static liveness analysis on relation variables (paper §4.2).
//!
//! jeddc performs "a static liveness analysis on all relation variables,
//! and at each point where a variable may become dead, we decrement the
//! reference count of any BDD it may contain". This module implements the
//! standard backward dataflow over a statement-level control-flow graph
//! and reports, for each statement, the variables that die after it — the
//! points where the generated code calls [`crate::RelationContainer::kill`].

use std::collections::{BTreeSet, HashMap};

/// One statement: the variables it reads and the variables it writes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LivenessStmt {
    /// Variables read by the statement.
    pub uses: Vec<String>,
    /// Variables (re)defined by the statement.
    pub defs: Vec<String>,
}

impl LivenessStmt {
    /// Builds a statement from use/def name lists.
    pub fn new(uses: &[&str], defs: &[&str]) -> LivenessStmt {
        LivenessStmt {
            uses: uses.iter().map(|s| s.to_string()).collect(),
            defs: defs.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A control-flow graph of statements. Statement `i`'s successors are
/// edges; the exit is implicit (no successors). Straight-line code has
/// edges `i -> i+1`.
#[derive(Clone, Debug, Default)]
pub struct LivenessCfg {
    stmts: Vec<LivenessStmt>,
    succs: Vec<Vec<usize>>,
}

impl LivenessCfg {
    /// Creates an empty CFG.
    pub fn new() -> LivenessCfg {
        LivenessCfg::default()
    }

    /// Creates a straight-line CFG from statements.
    pub fn straight_line(stmts: Vec<LivenessStmt>) -> LivenessCfg {
        let n = stmts.len();
        let succs = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        LivenessCfg { stmts, succs }
    }

    /// Appends a statement and returns its index; no edges are added.
    pub fn push(&mut self, s: LivenessStmt) -> usize {
        self.stmts.push(s);
        self.succs.push(Vec::new());
        self.stmts.len() - 1
    }

    /// Adds a control-flow edge.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < self.stmts.len() && to < self.stmts.len());
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True when the CFG has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Runs the backward liveness analysis to a fixpoint and returns the
    /// result.
    pub fn solve(&self) -> LivenessResult {
        let n = self.stmts.len();
        let mut live_in: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out = BTreeSet::new();
                for &s in &self.succs[i] {
                    out.extend(live_in[s].iter().cloned());
                }
                // in = uses ∪ (out \ defs)
                let mut inn: BTreeSet<String> =
                    self.stmts[i].uses.iter().cloned().collect();
                for v in &out {
                    if !self.stmts[i].defs.contains(v) {
                        inn.insert(v.clone());
                    }
                }
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        LivenessResult {
            live_in,
            live_out,
            stmts: self.stmts.clone(),
        }
    }
}

/// The solution of a liveness analysis.
#[derive(Clone, Debug)]
pub struct LivenessResult {
    live_in: Vec<BTreeSet<String>>,
    live_out: Vec<BTreeSet<String>>,
    stmts: Vec<LivenessStmt>,
}

impl LivenessResult {
    /// Variables live on entry to statement `i`.
    pub fn live_in(&self, i: usize) -> &BTreeSet<String> {
        &self.live_in[i]
    }

    /// Variables live on exit from statement `i`.
    pub fn live_out(&self, i: usize) -> &BTreeSet<String> {
        &self.live_out[i]
    }

    /// The kill points: for each statement, the variables that are
    /// used-or-defined there but dead on exit — the spots where jeddc
    /// releases the container immediately rather than waiting for the
    /// finalizer (§4.2).
    pub fn kill_points(&self) -> HashMap<usize, Vec<String>> {
        let mut out = HashMap::new();
        for (i, s) in self.stmts.iter().enumerate() {
            let mut dead: Vec<String> = Vec::new();
            for v in s.uses.iter().chain(s.defs.iter()) {
                if !self.live_out[i].contains(v) && !dead.contains(v) {
                    dead.push(v.clone());
                }
            }
            if !dead.is_empty() {
                dead.sort();
                out.insert(i, dead);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_last_use() {
        // t = a ; b = t + t ; c = b  — t dies after stmt 1, b after 2.
        let cfg = LivenessCfg::straight_line(vec![
            LivenessStmt::new(&["a"], &["t"]),
            LivenessStmt::new(&["t"], &["b"]),
            LivenessStmt::new(&["b"], &["c"]),
        ]);
        let r = cfg.solve();
        let kills = r.kill_points();
        assert_eq!(kills[&0], vec!["a".to_string()]);
        assert_eq!(kills[&1], vec!["t".to_string()]);
        let k2 = &kills[&2];
        assert!(k2.contains(&"b".to_string()));
        assert!(k2.contains(&"c".to_string()), "dead store: c unused");
    }

    #[test]
    fn loop_keeps_carried_variables_alive() {
        // 0: x = init
        // 1: y = f(x)       <- loop head
        // 2: x = g(y)
        // 3: if (...) goto 1
        // 4: out = x
        let mut cfg = LivenessCfg::new();
        cfg.push(LivenessStmt::new(&["init"], &["x"]));
        cfg.push(LivenessStmt::new(&["x"], &["y"]));
        cfg.push(LivenessStmt::new(&["y"], &["x"]));
        cfg.push(LivenessStmt::new(&[], &[]));
        cfg.push(LivenessStmt::new(&["x"], &["out"]));
        cfg.add_edge(0, 1);
        cfg.add_edge(1, 2);
        cfg.add_edge(2, 3);
        cfg.add_edge(3, 1);
        cfg.add_edge(3, 4);
        let r = cfg.solve();
        // x is live around the back edge.
        assert!(r.live_out(3).contains("x"));
        assert!(r.live_in(1).contains("x"));
        // y dies after statement 2.
        assert!(!r.live_out(2).contains("y"));
        let kills = r.kill_points();
        assert_eq!(kills[&2], vec!["y".to_string()]);
        // The *current* value of x may be released after its use at
        // statement 1 — statement 2 assigns a fresh value before any other
        // read. x must not be killed at the loop exit test, though.
        assert!(!kills.contains_key(&3));
    }

    #[test]
    fn diamond_join() {
        // 0: t = a
        // 1: branch -> 2 or 3
        // 2: u = t
        // 3: v = t
        // 4: w = u? (only from 2) — model join at 4 using t no more.
        let mut cfg = LivenessCfg::new();
        cfg.push(LivenessStmt::new(&["a"], &["t"]));
        cfg.push(LivenessStmt::new(&[], &[]));
        cfg.push(LivenessStmt::new(&["t"], &["u"]));
        cfg.push(LivenessStmt::new(&["t"], &["v"]));
        cfg.push(LivenessStmt::new(&["u", "v"], &["w"]));
        cfg.add_edge(0, 1);
        cfg.add_edge(1, 2);
        cfg.add_edge(1, 3);
        cfg.add_edge(2, 4);
        cfg.add_edge(3, 4);
        let r = cfg.solve();
        // t live into both branches, dead after each use.
        assert!(r.live_in(2).contains("t"));
        assert!(r.live_in(3).contains("t"));
        assert!(!r.live_out(2).contains("t"));
        assert!(!r.live_out(3).contains("t"));
    }

    #[test]
    fn empty_cfg() {
        let cfg = LivenessCfg::new();
        assert!(cfg.is_empty());
        let r = cfg.solve();
        assert!(r.kill_points().is_empty());
    }
}
