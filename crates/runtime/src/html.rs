//! Static-HTML rendering of a profile — the browsable views of the
//! paper's §4.3, without the SQL database and CGI scripts: a single
//! self-contained page with the overview table, per-operation execution
//! lists, and inline-SVG shape charts.

use crate::profile::Profiler;
use jedd_core::OpEvent;
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders a self-contained HTML document for the given profiler's data.
///
/// The overview table links to per-op sections; executions with recorded
/// shapes get an inline SVG bar chart of nodes-per-level (the "size and
/// shape of the underlying BDD data structures", §4.3).
pub fn render_html(profiler: &Profiler) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>Jedd profile</title><style>\
         body{{font-family:sans-serif;margin:2em}}\
         table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:4px 8px;text-align:right}}\
         th{{background:#eee}}td.l,th.l{{text-align:left}}\
         </style></head><body>"
    );
    let _ = writeln!(out, "<h1>Jedd profile</h1>");
    let summary = profiler.summary();
    let _ = writeln!(
        out,
        "<h2>Overview</h2><table><tr><th class=l>operation</th>\
         <th class=l>site</th><th>executions</th><th>total time (µs)</th>\
         <th>max operand nodes</th><th>max result nodes</th></tr>"
    );
    for (i, r) in summary.iter().enumerate() {
        let _ = writeln!(
            out,
            "<tr><td class=l><a href=\"#op{i}\">{}</a></td><td class=l>{}</td>\
             <td>{}</td><td>{:.1}</td><td>{}</td><td>{}</td></tr>",
            esc(r.op),
            esc(&r.site),
            r.count,
            r.total_nanos as f64 / 1000.0,
            r.max_operand_nodes,
            r.max_result_nodes
        );
    }
    let _ = writeln!(out, "</table>");

    // Detail views.
    let events = profiler.events();
    for (i, r) in summary.iter().enumerate() {
        let _ = writeln!(
            out,
            "<h2 id=\"op{i}\">{} at {}</h2><table><tr><th>#</th>\
             <th>time (µs)</th><th>operand nodes</th><th>result nodes</th></tr>",
            esc(r.op),
            esc(&r.site)
        );
        let mut best_shape: Option<&OpEvent> = None;
        for (n, e) in events
            .iter()
            .filter(|e| e.op == r.op && e.site == r.site)
            .enumerate()
        {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{:.1}</td><td>{}</td><td>{}</td></tr>",
                n + 1,
                e.nanos as f64 / 1000.0,
                e.operand_nodes,
                e.result_nodes
            );
            if e.shape.is_some()
                && best_shape.is_none_or(|b| e.result_nodes > b.result_nodes)
            {
                best_shape = Some(e);
            }
        }
        let _ = writeln!(out, "</table>");
        if let Some(e) = best_shape {
            let _ = writeln!(out, "<h3>Shape of largest result</h3>");
            out.push_str(&shape_svg(e.shape.as_ref().expect("checked")));
        }
    }
    let _ = writeln!(out, "</body></html>");
    out
}

/// Renders a nodes-per-level bar chart as inline SVG.
fn shape_svg(shape: &[usize]) -> String {
    let max = shape.iter().copied().max().unwrap_or(1).max(1);
    let bar_h = 8;
    let width = 420;
    let label_w = 60;
    let height = (shape.len() * (bar_h + 2) + 10) as u32;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{height}\" \
         font-family=\"sans-serif\" font-size=\"8\">",
        w = width + label_w + 60
    );
    for (level, &n) in shape.iter().enumerate() {
        let y = 5 + level * (bar_h + 2);
        let w = (n as f64 / max as f64 * width as f64) as u32;
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">v{}</text>\
             <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#4a78b0\"/>\
             <text x=\"{}\" y=\"{}\">{}</text>",
            label_w - 4,
            y + bar_h - 1,
            level,
            label_w,
            y,
            w.max(1),
            bar_h,
            label_w + w.max(1) + 4,
            y + bar_h - 1,
            n
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedd_core::ProfileSink;

    #[test]
    fn html_contains_overview_and_details() {
        let p = Profiler::with_shapes();
        p.record(&OpEvent {
            op: "join",
            site: "resolve".into(),
            nanos: 1500,
            operand_nodes: 12,
            result_nodes: 30,
            shape: Some(vec![1, 4, 9, 2]),
        });
        p.record(&OpEvent {
            op: "replace",
            site: "resolve".into(),
            nanos: 700,
            operand_nodes: 30,
            result_nodes: 30,
            shape: None,
        });
        let html = render_html(&p);
        assert!(html.contains("<title>Jedd profile</title>"));
        assert!(html.contains("join"));
        assert!(html.contains("replace"));
        assert!(html.contains("<svg"), "shape chart rendered");
        assert!(html.contains("1.5"), "microsecond column");
    }

    #[test]
    fn html_escapes_site_labels() {
        let p = Profiler::new();
        p.record(&OpEvent {
            op: "union",
            site: "<script>".into(),
            nanos: 1,
            operand_nodes: 0,
            result_nodes: 0,
            shape: None,
        });
        let html = render_html(&p);
        assert!(!html.contains("<script>"));
        assert!(html.contains("&lt;script&gt;"));
    }

    #[test]
    fn shape_svg_handles_empty_levels() {
        let svg = shape_svg(&[0, 0, 0]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
    }
}
