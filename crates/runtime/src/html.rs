//! Static-HTML rendering of a profile — the browsable views of the
//! paper's §4.3, without the SQL database and CGI scripts: a single
//! self-contained page with the overview table, per-operation execution
//! lists, and inline-SVG shape charts.

use crate::profile::Profiler;
use jedd_bdd::KernelStats;
use jedd_core::OpEvent;
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders a self-contained HTML document for the given profiler's data.
///
/// The overview table links to per-op sections; executions with recorded
/// shapes get an inline SVG bar chart of nodes-per-level (the "size and
/// shape of the underlying BDD data structures", §4.3). Use
/// [`render_html_with_kernel`] to additionally include the kernel's cache
/// and GC counters.
pub fn render_html(profiler: &Profiler) -> String {
    render_html_with_kernel(profiler, None)
}

/// Like [`render_html`], with an optional kernel-statistics section: the
/// per-operation cache hit rates and the GC/cache-sweep counters from
/// [`jedd_bdd::BddManager::kernel_stats`], so cache behaviour can be read
/// next to the relational profile it explains.
pub fn render_html_with_kernel(profiler: &Profiler, kernel: Option<&KernelStats>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>Jedd profile</title><style>\
         body{{font-family:sans-serif;margin:2em}}\
         table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:4px 8px;text-align:right}}\
         th{{background:#eee}}td.l,th.l{{text-align:left}}\
         </style></head><body>"
    );
    let _ = writeln!(out, "<h1>Jedd profile</h1>");
    let summary = profiler.summary();
    let _ = writeln!(
        out,
        "<h2>Overview</h2><table><tr><th class=l>operation</th>\
         <th class=l>site</th><th>executions</th><th>total time (µs)</th>\
         <th>max operand nodes</th><th>max result nodes</th></tr>"
    );
    for (i, r) in summary.iter().enumerate() {
        let _ = writeln!(
            out,
            "<tr><td class=l><a href=\"#op{i}\">{}</a></td><td class=l>{}</td>\
             <td>{}</td><td>{:.1}</td><td>{}</td><td>{}</td></tr>",
            esc(r.op),
            esc(&r.site),
            r.count,
            r.total_nanos as f64 / 1000.0,
            r.max_operand_nodes,
            r.max_result_nodes
        );
    }
    let _ = writeln!(out, "</table>");

    // Detail views.
    let events = profiler.events();
    for (i, r) in summary.iter().enumerate() {
        let _ = writeln!(
            out,
            "<h2 id=\"op{i}\">{} at {}</h2><table><tr><th>#</th>\
             <th>time (µs)</th><th>operand nodes</th><th>result nodes</th></tr>",
            esc(r.op),
            esc(&r.site)
        );
        let mut best_shape: Option<&OpEvent> = None;
        for (n, e) in events
            .iter()
            .filter(|e| e.op == r.op && e.site == r.site)
            .enumerate()
        {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{:.1}</td><td>{}</td><td>{}</td></tr>",
                n + 1,
                e.nanos as f64 / 1000.0,
                e.operand_nodes,
                e.result_nodes
            );
            if e.shape.is_some()
                && best_shape.is_none_or(|b| e.result_nodes > b.result_nodes)
            {
                best_shape = Some(e);
            }
        }
        let _ = writeln!(out, "</table>");
        if let Some(e) = best_shape {
            let _ = writeln!(out, "<h3>Shape of largest result</h3>");
            out.push_str(&shape_svg(e.shape.as_ref().expect("checked")));
        }
    }
    let rounds = fixpoint_rounds(&events);
    if !rounds.is_empty() {
        out.push_str(&fixpoint_section(&rounds));
    }
    if let Some(k) = kernel {
        out.push_str(&kernel_section(k));
    }
    let _ = writeln!(out, "</body></html>");
    out
}

/// One fixpoint round reconstructed from the `fixpoint-*` events a
/// [`jedd_core::Fixpoint`] driver emits: the rule timings and per-relation
/// delta tuple counts recorded during the round, closed by the
/// `fixpoint-round` terminator carrying the round's wall time.
struct FixpointRound {
    driver: String,
    round: usize,
    nanos: u64,
    /// `(rule label, nanos)` in execution order.
    rules: Vec<(String, u64)>,
    /// `(relation label, delta tuples)` in emission order.
    deltas: Vec<(String, u64)>,
}

/// Groups the event stream back into per-driver rounds. Within one driver
/// the stream is ordered `rule* delta* round`, so accumulating until each
/// `fixpoint-round` terminator reconstructs the round exactly; nested
/// drivers (e.g. an inner copy-propagation loop) are kept separate by the
/// driver name embedded in the site.
fn fixpoint_rounds(events: &[OpEvent]) -> Vec<FixpointRound> {
    /// An in-progress round: driver name, rule timings, delta counts.
    type OpenRound = (String, Vec<(String, u64)>, Vec<(String, u64)>);
    let mut open: Vec<OpenRound> = Vec::new();
    let mut rounds: Vec<FixpointRound> = Vec::new();
    let slot = |open: &mut Vec<OpenRound>, driver: &str| -> usize {
        match open.iter().position(|(d, _, _)| d == driver) {
            Some(i) => i,
            None => {
                open.push((driver.to_string(), Vec::new(), Vec::new()));
                open.len() - 1
            }
        }
    };
    for e in events {
        match e.op {
            "fixpoint-rule" => {
                let (driver, rule) = e.site.split_once(": ").unwrap_or((e.site.as_str(), ""));
                let i = slot(&mut open, driver);
                open[i].1.push((rule.to_string(), e.nanos));
            }
            "fixpoint-delta" => {
                let (driver, rel) = e.site.split_once(": ").unwrap_or((e.site.as_str(), ""));
                let i = slot(&mut open, driver);
                open[i].2.push((rel.to_string(), e.result_nodes as u64));
            }
            "fixpoint-round" => {
                let i = slot(&mut open, &e.site);
                let (driver, rules, deltas) = open.swap_remove(i);
                let round = rounds.iter().filter(|r| r.driver == driver).count() + 1;
                rounds.push(FixpointRound {
                    driver,
                    round,
                    nanos: e.nanos,
                    rules,
                    deltas,
                });
            }
            _ => {}
        }
    }
    rounds
}

/// Renders the reconstructed fixpoint rounds: one row per round with its
/// wall time, rule timings, and delta tuple counts — the semi-naive
/// engine's progress log, browsable next to the kernel statistics that
/// explain it.
fn fixpoint_section(rounds: &[FixpointRound]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<h2 id=\"fixpoint\">Fixpoint rounds</h2><table>\
         <tr><th class=l>driver</th><th>round</th><th>time (µs)</th>\
         <th class=l>rules (µs)</th><th class=l>deltas (tuples)</th></tr>"
    );
    for r in rounds {
        let rules = r
            .rules
            .iter()
            .map(|(name, ns)| format!("{} {:.1}", esc(name), *ns as f64 / 1000.0))
            .collect::<Vec<_>>()
            .join(", ");
        let deltas = r
            .deltas
            .iter()
            .map(|(name, tuples)| format!("{} {}", esc(name), tuples))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "<tr><td class=l>{}</td><td>{}</td><td>{:.1}</td>\
             <td class=l>{}</td><td class=l>{}</td></tr>",
            esc(&r.driver),
            r.round,
            r.nanos as f64 / 1000.0,
            rules,
            deltas
        );
    }
    let _ = writeln!(out, "</table>");
    out
}

/// Renders the kernel cache/GC counters as an HTML section.
fn kernel_section(k: &KernelStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<h2 id=\"kernel\">Kernel statistics</h2>\
         <p>{} nodes created, {} unique-table hits, {} GC runs \
         ({} nodes reclaimed), {} cache sweeps \
         ({} entries kept, {} swept).</p>",
        k.nodes_created,
        k.unique_hits,
        k.gc_runs,
        k.gc_reclaimed,
        k.cache_sweeps,
        k.cache_entries_kept,
        k.cache_entries_swept
    );
    let _ = writeln!(
        out,
        "<table><tr><th class=l>operation</th><th>cache lookups</th>\
         <th>cache hits</th><th>hit rate</th></tr>"
    );
    for (name, s) in KernelStats::CACHE_OP_NAMES.iter().zip(k.per_op_cache.iter()) {
        if s.lookups == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "<tr><td class=l>{}</td><td>{}</td><td>{}</td><td>{:.1}%</td></tr>",
            esc(name),
            s.lookups,
            s.hits,
            s.hit_rate() * 100.0
        );
    }
    let _ = writeln!(
        out,
        "<tr><td class=l>total</td><td>{}</td><td>{}</td><td>{:.1}%</td></tr></table>",
        k.cache_lookups,
        k.cache_hits,
        if k.cache_lookups == 0 {
            0.0
        } else {
            k.cache_hits as f64 / k.cache_lookups as f64 * 100.0
        }
    );
    let _ = writeln!(
        out,
        "<h3>Parallelism</h3>\
         <p>{} parallel operations ({} tasks, {:.1} per op), \
         {} work-steals, {} nodes hash-consed into the shared table, \
         {} effective threads ({} clamped to hardware).</p>",
        k.par_ops,
        k.par_tasks,
        if k.par_ops == 0 {
            0.0
        } else {
            k.par_tasks as f64 / k.par_ops as f64
        },
        k.par_steals,
        k.par_shared_nodes,
        k.par_threads_effective,
        k.par_thread_clamps
    );
    let _ = writeln!(
        out,
        "<h3>Paging</h3>\
         <p>{} page faults ({} block reads), {} evictions \
         ({} block writes), peak {} resident frames.</p>",
        k.page_faults,
        k.page_reads,
        k.page_evictions,
        k.page_writes,
        k.page_max_resident
    );
    let _ = writeln!(
        out,
        "<h3>Scheduling</h3>\
         <p>{} model schedules explored ({} preemptions), \
         {} data races reported, {} lock-order edges observed.</p>",
        k.sched_schedules,
        k.sched_preemptions,
        k.sched_races,
        k.sched_lock_edges
    );
    let avg_chain = if k.chain_nodes_created == 0 {
        0.0
    } else {
        k.chain_len_sum as f64 / k.chain_nodes_created as f64
    };
    let avg_span = if k.op_span_samples == 0 {
        0.0
    } else {
        k.op_span_sum as f64 / k.op_span_samples as f64
    };
    let hottest = k
        .level_activity
        .iter()
        .enumerate()
        .max_by_key(|&(_, n)| n)
        .map(|(b, _)| b)
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "<h3>Node shapes</h3>\
         <p>{} chain nodes created (avg span {:.1}, max {}), \
         {} operation-span samples (avg {:.1} levels, max {}), \
         hottest level band {} of 16, {} sifting sweeps.</p>",
        k.chain_nodes_created,
        avg_chain,
        k.chain_len_max,
        k.op_span_samples,
        avg_span,
        k.op_span_max,
        hottest,
        k.sift_sweeps
    );
    out
}

/// Renders a nodes-per-level bar chart as inline SVG.
fn shape_svg(shape: &[usize]) -> String {
    let max = shape.iter().copied().max().unwrap_or(1).max(1);
    let bar_h = 8;
    let width = 420;
    let label_w = 60;
    let height = (shape.len() * (bar_h + 2) + 10) as u32;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{height}\" \
         font-family=\"sans-serif\" font-size=\"8\">",
        w = width + label_w + 60
    );
    for (level, &n) in shape.iter().enumerate() {
        let y = 5 + level * (bar_h + 2);
        let w = (n as f64 / max as f64 * width as f64) as u32;
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">v{}</text>\
             <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#4a78b0\"/>\
             <text x=\"{}\" y=\"{}\">{}</text>",
            label_w - 4,
            y + bar_h - 1,
            level,
            label_w,
            y,
            w.max(1),
            bar_h,
            label_w + w.max(1) + 4,
            y + bar_h - 1,
            n
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedd_core::ProfileSink;

    #[test]
    fn html_contains_overview_and_details() {
        let p = Profiler::with_shapes();
        p.record(&OpEvent {
            op: "join",
            site: "resolve".into(),
            nanos: 1500,
            operand_nodes: 12,
            result_nodes: 30,
            shape: Some(vec![1, 4, 9, 2]),
        });
        p.record(&OpEvent {
            op: "replace",
            site: "resolve".into(),
            nanos: 700,
            operand_nodes: 30,
            result_nodes: 30,
            shape: None,
        });
        let html = render_html(&p);
        assert!(html.contains("<title>Jedd profile</title>"));
        assert!(html.contains("join"));
        assert!(html.contains("replace"));
        assert!(html.contains("<svg"), "shape chart rendered");
        assert!(html.contains("1.5"), "microsecond column");
    }

    #[test]
    fn html_escapes_site_labels() {
        let p = Profiler::new();
        p.record(&OpEvent {
            op: "union",
            site: "<script>".into(),
            nanos: 1,
            operand_nodes: 0,
            result_nodes: 0,
            shape: None,
        });
        let html = render_html(&p);
        assert!(!html.contains("<script>"));
        assert!(html.contains("&lt;script&gt;"));
    }

    #[test]
    fn kernel_section_lists_per_op_hit_rates() {
        let p = Profiler::new();
        p.record(&OpEvent {
            op: "union",
            site: "main".into(),
            nanos: 10,
            operand_nodes: 2,
            result_nodes: 2,
            shape: None,
        });
        let mgr = jedd_bdd::BddManager::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let _ = a.and(&b);
        let _ = a.and(&b); // second run hits the shared cache
        let stats = mgr.kernel_stats();
        let html = render_html_with_kernel(&p, Some(&stats));
        assert!(html.contains("Kernel statistics"));
        assert!(html.contains("<td class=l>and</td>"));
        assert!(html.contains("cache sweeps"));
        // The parallelism row is always present, zeroed on sequential runs.
        assert!(html.contains("Parallelism"));
        assert!(html.contains("0 parallel operations"));
        // Plain render stays kernel-free.
        assert!(!render_html(&p).contains("Kernel statistics"));
    }

    #[test]
    fn kernel_section_reports_parallel_counters() {
        let stats = KernelStats {
            par_ops: 3,
            par_tasks: 24,
            par_steals: 5,
            par_shared_nodes: 100,
            par_threads_effective: 4,
            par_thread_clamps: 1,
            ..Default::default()
        };
        let html = render_html_with_kernel(&Profiler::new(), Some(&stats));
        assert!(html.contains("3 parallel operations (24 tasks, 8.0 per op)"));
        assert!(html.contains("5 work-steals, 100 nodes hash-consed into the shared table"));
        assert!(html.contains("4 effective threads (1 clamped to hardware)"));
        // The shapes row is always present, zeroed on plain sequential runs.
        assert!(html.contains("Node shapes"));
        assert!(html.contains("0 chain nodes created"));
    }

    #[test]
    fn kernel_section_reports_paging_counters() {
        let stats = KernelStats {
            page_faults: 120,
            page_reads: 120,
            page_writes: 90,
            page_evictions: 87,
            page_max_resident: 4,
            ..Default::default()
        };
        let html = render_html_with_kernel(&Profiler::new(), Some(&stats));
        assert!(html.contains("Paging"));
        assert!(html.contains("120 page faults (120 block reads)"));
        assert!(html.contains("87 evictions (90 block writes)"));
        assert!(html.contains("peak 4 resident frames"));
        // The paging row is always present, zeroed on resident runs.
        let resident = render_html_with_kernel(&Profiler::new(), Some(&KernelStats::default()));
        assert!(resident.contains("0 page faults"));
    }

    #[test]
    fn kernel_section_reports_scheduler_counters() {
        let stats = KernelStats {
            sched_schedules: 64,
            sched_preemptions: 17,
            sched_races: 1,
            sched_lock_edges: 9,
            ..Default::default()
        };
        let html = render_html_with_kernel(&Profiler::new(), Some(&stats));
        assert!(html.contains("Scheduling"));
        assert!(html.contains("64 model schedules explored (17 preemptions)"));
        assert!(html.contains("1 data races reported, 9 lock-order edges observed"));
        // The scheduling row is always present, zeroed on non-model runs.
        let plain = render_html_with_kernel(&Profiler::new(), Some(&KernelStats::default()));
        assert!(plain.contains("0 model schedules explored"));
    }

    #[test]
    fn kernel_section_reports_node_shape_counters() {
        let mut level_activity = [0u64; 16];
        level_activity[5] = 900;
        level_activity[2] = 10;
        let stats = KernelStats {
            chain_nodes_created: 4,
            chain_len_sum: 10,
            chain_len_max: 5,
            op_span_sum: 30,
            op_span_max: 12,
            op_span_samples: 6,
            sift_sweeps: 3,
            level_activity,
            ..Default::default()
        };
        let html = render_html_with_kernel(&Profiler::new(), Some(&stats));
        assert!(html.contains("4 chain nodes created (avg span 2.5, max 5)"));
        assert!(html.contains("6 operation-span samples (avg 5.0 levels, max 12)"));
        assert!(html.contains("hottest level band 5 of 16, 3 sifting sweeps"));
    }

    #[test]
    fn fixpoint_rounds_render_rules_and_deltas() {
        let p = Profiler::new();
        let ev = |op: &'static str, site: &str, nanos: u64, tuples: usize| OpEvent {
            op,
            site: site.into(),
            nanos,
            operand_nodes: 0,
            result_nodes: tuples,
            shape: None,
        };
        // Two pointsto rounds with an inner driver interleaved, as the
        // semi-naive engine emits them: rule* delta* round per driver.
        p.record(&ev("fixpoint-round", "pointsto-copy", 900, 0));
        p.record(&ev("fixpoint-rule", "pointsto: stores", 4200, 0));
        p.record(&ev("fixpoint-delta", "pointsto: Δpt", 0, 25));
        p.record(&ev("fixpoint-delta", "pointsto: Δcg", 0, 3));
        p.record(&ev("fixpoint-round", "pointsto", 10_000, 28));
        p.record(&ev("fixpoint-rule", "pointsto: resolve", 1500, 0));
        p.record(&ev("fixpoint-delta", "pointsto: Δpt", 0, 0));
        p.record(&ev("fixpoint-round", "pointsto", 2000, 0));
        let html = render_html(&p);
        assert!(html.contains("Fixpoint rounds"));
        assert!(html.contains("stores 4.2"), "rule timing rendered");
        assert!(html.contains("Δpt 25"), "delta tuple count rendered");
        assert!(html.contains("resolve 1.5"), "second round keeps its own rules");
        assert!(html.contains("pointsto-copy"), "inner driver listed separately");
    }

    #[test]
    fn fixpoint_section_absent_without_events() {
        let p = Profiler::new();
        p.record(&OpEvent {
            op: "union",
            site: "main".into(),
            nanos: 1,
            operand_nodes: 0,
            result_nodes: 0,
            shape: None,
        });
        assert!(!render_html(&p).contains("Fixpoint rounds"));
    }

    #[test]
    fn shape_svg_handles_empty_levels() {
        let svg = shape_svg(&[0, 0, 0]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
    }
}
