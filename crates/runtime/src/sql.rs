//! SQL export of profile data.
//!
//! The original Jedd profiler "is written out as an SQL file to be loaded
//! into a database" (paper §4.3, SQLite + thttpd + CGI in their setup).
//! This module emits that SQL file: schema plus one `INSERT` per recorded
//! operation, loadable into any SQL database for ad-hoc querying. The
//! static-HTML renderer ([`crate::render_html`]) covers the browsing side.

use crate::profile::Profiler;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\'', "''")
}

/// Renders the profiler's events as a SQL script: a `jedd_ops` table with
/// one row per operation execution, and a `jedd_shapes` table with one row
/// per (execution, level) when shapes were recorded.
pub fn render_sql(profiler: &Profiler) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- Jedd profile dump; load with e.g. `sqlite3 profile.db < profile.sql`"
    );
    let _ = writeln!(
        out,
        "CREATE TABLE jedd_ops (\n  id INTEGER PRIMARY KEY,\n  op TEXT NOT NULL,\n  site TEXT NOT NULL,\n  nanos INTEGER NOT NULL,\n  operand_nodes INTEGER NOT NULL,\n  result_nodes INTEGER NOT NULL\n);"
    );
    let _ = writeln!(
        out,
        "CREATE TABLE jedd_shapes (\n  op_id INTEGER NOT NULL REFERENCES jedd_ops(id),\n  level INTEGER NOT NULL,\n  nodes INTEGER NOT NULL\n);"
    );
    let _ = writeln!(out, "BEGIN TRANSACTION;");
    for (i, e) in profiler.events().iter().enumerate() {
        let _ = writeln!(
            out,
            "INSERT INTO jedd_ops VALUES ({}, '{}', '{}', {}, {}, {});",
            i,
            escape(e.op),
            escape(&e.site),
            e.nanos,
            e.operand_nodes,
            e.result_nodes
        );
        if let Some(shape) = &e.shape {
            for (level, &nodes) in shape.iter().enumerate() {
                if nodes > 0 {
                    let _ = writeln!(
                        out,
                        "INSERT INTO jedd_shapes VALUES ({i}, {level}, {nodes});"
                    );
                }
            }
        }
    }
    let _ = writeln!(out, "COMMIT;");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedd_core::{OpEvent, ProfileSink};

    #[test]
    fn sql_contains_schema_and_rows() {
        let p = Profiler::with_shapes();
        p.record(&OpEvent {
            op: "join",
            site: "resolve".to_string(),
            nanos: 1200,
            operand_nodes: 4,
            result_nodes: 9,
            shape: Some(vec![0, 3, 6]),
        });
        let sql = render_sql(&p);
        assert!(sql.contains("CREATE TABLE jedd_ops"));
        assert!(sql.contains("CREATE TABLE jedd_shapes"));
        assert!(sql.contains("INSERT INTO jedd_ops VALUES (0, 'join', 'resolve', 1200, 4, 9);"));
        assert!(sql.contains("INSERT INTO jedd_shapes VALUES (0, 1, 3);"));
        assert!(sql.contains("INSERT INTO jedd_shapes VALUES (0, 2, 6);"));
        assert!(!sql.contains("VALUES (0, 0, 0);"), "zero levels skipped");
        assert!(sql.trim_end().ends_with("COMMIT;"));
    }

    #[test]
    fn sql_escapes_quotes() {
        let p = Profiler::new();
        p.record(&OpEvent {
            op: "union",
            site: "o'brien".to_string(),
            nanos: 1,
            operand_nodes: 0,
            result_nodes: 0,
            shape: None,
        });
        let sql = render_sql(&p);
        assert!(sql.contains("'o''brien'"));
    }
}
