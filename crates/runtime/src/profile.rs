//! The profiler: collects one event per relational operation and
//! aggregates them the way the paper's SQL-backed profiler does (§4.3) —
//! per-operation counts, total time, and the sizes and shapes of the BDDs
//! involved.

use jedd_core::{OpEvent, ProfileSink};
use std::cell::RefCell;
use std::rc::Rc;

/// One aggregated row of the overall profile view: all executions of one
/// relational operation at one source site.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileRow {
    /// Operation name (`join`, `compose`, `replace`, ...).
    pub op: &'static str,
    /// Source site label.
    pub site: String,
    /// Number of executions.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_nanos: u64,
    /// Largest operand BDD seen (nodes).
    pub max_operand_nodes: usize,
    /// Largest result BDD seen (nodes).
    pub max_result_nodes: usize,
}

/// An in-memory profiler; install on a universe with
/// [`jedd_core::Universe::set_profiler`].
///
/// # Examples
///
/// ```
/// use jedd_core::{Relation, Universe};
/// use jedd_runtime::Profiler;
/// use std::rc::Rc;
///
/// # fn main() -> Result<(), jedd_core::JeddError> {
/// let u = Universe::new();
/// let profiler = Rc::new(Profiler::new());
/// u.set_profiler(Some(profiler.clone()));
/// let d = u.add_domain("D", 4);
/// let p = u.add_physical_domain("P", 2);
/// let a = u.add_attribute("a", d);
/// let r = Relation::from_tuples(&u, &[(a, p)], &[vec![1], vec![2]])?;
/// let _ = r.union(&r)?;
/// assert!(profiler.events().iter().any(|e| e.op == "union"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Profiler {
    events: RefCell<Vec<OpEvent>>,
    record_shapes: bool,
}

impl Profiler {
    /// Creates a profiler that records events without BDD shapes.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Creates a profiler that additionally records the per-level shape of
    /// every result BDD (costlier; used for the shape views).
    pub fn with_shapes() -> Profiler {
        Profiler {
            events: RefCell::new(Vec::new()),
            record_shapes: true,
        }
    }

    /// All recorded events, in execution order.
    pub fn events(&self) -> Vec<OpEvent> {
        self.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Clears all recorded events.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }

    /// Aggregates events into overview rows (one per op/site pair), sorted
    /// by total time descending — the paper's "overall profile view".
    ///
    /// Groups through a hash index, so aggregation is linear in the event
    /// count; a long profiling run records millions of events. Rows keep
    /// first-encounter order before the stable sort, so ties order exactly
    /// as the previous linear-scan implementation did.
    pub fn summary(&self) -> Vec<ProfileRow> {
        let events = self.events.borrow();
        let mut rows: Vec<ProfileRow> = Vec::new();
        let mut index: std::collections::HashMap<(&'static str, &str), usize> =
            std::collections::HashMap::new();
        for e in events.iter() {
            match index.get(&(e.op, e.site.as_str())) {
                Some(&i) => {
                    let r = &mut rows[i];
                    r.count += 1;
                    r.total_nanos += e.nanos;
                    r.max_operand_nodes = r.max_operand_nodes.max(e.operand_nodes);
                    r.max_result_nodes = r.max_result_nodes.max(e.result_nodes);
                }
                None => {
                    index.insert((e.op, e.site.as_str()), rows.len());
                    rows.push(ProfileRow {
                        op: e.op,
                        site: e.site.clone(),
                        count: 1,
                        total_nanos: e.nanos,
                        max_operand_nodes: e.operand_nodes,
                        max_result_nodes: e.result_nodes,
                    });
                }
            }
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.total_nanos));
        rows
    }

    /// Convenience constructor returning the `Rc` form expected by
    /// [`jedd_core::Universe::set_profiler`].
    pub fn shared() -> Rc<Profiler> {
        Rc::new(Profiler::new())
    }
}

impl ProfileSink for Profiler {
    fn record(&self, event: &OpEvent) {
        self.events.borrow_mut().push(event.clone());
    }

    fn wants_shapes(&self) -> bool {
        self.record_shapes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &'static str, site: &str, nanos: u64, nodes: usize) -> OpEvent {
        OpEvent {
            op,
            site: site.to_string(),
            nanos,
            operand_nodes: nodes,
            result_nodes: nodes * 2,
            shape: None,
        }
    }

    #[test]
    fn summary_aggregates_by_op_and_site() {
        let p = Profiler::new();
        p.record(&ev("join", "resolve", 100, 10));
        p.record(&ev("join", "resolve", 50, 20));
        p.record(&ev("union", "resolve", 400, 5));
        p.record(&ev("join", "other", 10, 1));
        let s = p.summary();
        assert_eq!(s.len(), 3);
        // Sorted by total time: union(400) first.
        assert_eq!(s[0].op, "union");
        let join_row = s.iter().find(|r| r.op == "join" && r.site == "resolve").unwrap();
        assert_eq!(join_row.count, 2);
        assert_eq!(join_row.total_nanos, 150);
        assert_eq!(join_row.max_operand_nodes, 20);
        assert_eq!(join_row.max_result_nodes, 40);
    }

    #[test]
    fn clear_resets() {
        let p = Profiler::new();
        p.record(&ev("join", "x", 1, 1));
        assert_eq!(p.len(), 1);
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    fn shapes_flag() {
        assert!(!Profiler::new().wants_shapes());
        assert!(Profiler::with_shapes().wants_shapes());
    }
}
