//! `jedd-sync`: the workspace's synchronization seam.
//!
//! Every lock, condvar, atomic and scoped thread used by the parallel
//! kernel goes through this crate instead of `std::sync` directly. In a
//! normal build the wrappers are `#[inline]` passthroughs over the std
//! primitives (zero cost, no extra state), with one deliberate semantic
//! change: lock acquisition **recovers from poison** instead of
//! panicking, so a panicking worker unwinding through `Drop` can never
//! cascade into a second panic/abort (the pager's park-then-typed-error
//! pattern, applied crate-wide).
//!
//! Under the `model` cargo feature the same wrappers gain a hook: when a
//! [`model::check`] session is active on the current thread, every sync
//! operation routes through a deterministic cooperative scheduler that
//! serializes the threads and *chooses* the interleaving — seeded random
//! walks, PCT-style priority preemption, or bounded exhaustive DFS —
//! while a vector-clock happens-before race detector watches
//! [`model::TrackedCell`] accesses and a lock-order graph records every
//! held-lock → acquired-lock edge and reports cycles (potential
//! deadlocks) with both acquisition sites. With the feature compiled in
//! but no session active, the only cost is one thread-local lookup per
//! operation, so feature-unified test builds stay fast.
//!
//! The model explores **sequentially consistent** interleavings (like a
//! stateless model checker, not a weak-memory simulator); atomic
//! `Ordering`s only affect which happens-before edges the race detector
//! learns (`Relaxed` publishes nothing, `Acquire`/`Release`/`SeqCst`
//! synchronize).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

#[cfg(feature = "model")]
pub mod model;

#[cfg(feature = "model")]
use std::panic::Location;

/// Scheduler counters aggregated across every model-check session in
/// this process. All zeros when the `model` feature is off or no
/// session has run; merged into `KernelStats` by the BDD kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Schedules (iterations) fully explored by model sessions.
    pub schedules: u64,
    /// Forced preemptions injected by the scheduler.
    pub preemptions: u64,
    /// Data races reported by the vector-clock detector.
    pub races: u64,
    /// Distinct lock-order edges (by acquisition-site pair) observed.
    pub lock_edges: u64,
}

/// Process-wide scheduler counters. Zeros unless the `model` feature is
/// enabled and at least one [`model::check`] session has run.
#[inline]
pub fn counters() -> SchedCounters {
    #[cfg(feature = "model")]
    {
        model::counters_snapshot()
    }
    #[cfg(not(feature = "model"))]
    {
        SchedCounters::default()
    }
}

/// True when a deterministic model-check session is driving the current
/// thread. Always `false` without the `model` feature. The kernel uses
/// this to bypass its worker-count hardware clamp: model schedules need
/// real multi-worker runs even on a 1-CPU host (the scheduler serializes
/// them anyway).
#[inline]
pub fn model_active() -> bool {
    #[cfg(feature = "model")]
    {
        model::current().is_some()
    }
    #[cfg(not(feature = "model"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock; `std::sync::Mutex` with poison recovery and
/// a model-scheduler hook.
///
/// [`Mutex::lock`] returns the guard directly (no `LockResult`): if the
/// lock was poisoned by a panicking holder the data is still returned,
/// because every protected structure in this workspace is either
/// repaired or discarded by the governor after a worker panic — aborting
/// the unwind with a second panic would be strictly worse.
pub struct Mutex<T> {
    #[cfg(feature = "model")]
    tag: std::sync::atomic::AtomicU64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "model")]
            tag: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poison. Under an active model
    /// session this is a schedule decision point and a lock-order graph
    /// edge source/target.
    #[inline]
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "model")]
        if let Some((sess, tid)) = model::current() {
            let oid = sess.object_id(&self.tag, model::ObjClass::Mutex);
            sess.mutex_lock(tid, oid, Location::caller());
            let g = match self.inner.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    unreachable!("jedd-sync model: mutex exclusivity violated")
                }
            };
            return MutexGuard { lock: self, inner: Some(g), model: Some((sess, tid, oid)) };
        }
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard {
            lock: self,
            inner: Some(g),
            #[cfg(feature = "model")]
            model: None,
        }
    }

    /// Attempts the lock without blocking; `None` if held. Poison is
    /// recovered like [`Mutex::lock`].
    #[inline]
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some((sess, tid)) = model::current() {
            let oid = sess.object_id(&self.tag, model::ObjClass::Mutex);
            if !sess.mutex_try_lock(tid, oid, Location::caller()) {
                return None;
            }
            let g = match self.inner.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    unreachable!("jedd-sync model: mutex exclusivity violated")
                }
            };
            return Some(MutexGuard { lock: self, inner: Some(g), model: Some((sess, tid, oid)) });
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: self,
                inner: Some(g),
                #[cfg(feature = "model")]
                model: None,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                #[cfg(feature = "model")]
                model: None,
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`), poison
    /// recovered.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value, poison recovered.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard for [`Mutex`]; releases the lock (and notifies the model
/// scheduler) on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(feature = "model")]
    model: Option<(std::sync::Arc<model::Session>, usize, u32)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // Release the std lock before telling the scheduler: once
        // another model thread is granted the lock, its `try_lock` must
        // succeed.
        self.inner.take();
        #[cfg(feature = "model")]
        if let Some((sess, tid, oid)) = self.model.take() {
            sess.mutex_unlock(tid, oid);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Condition variable paired with [`Mutex`]; poison-recovering, with
/// deterministic FIFO wakeups under a model session (no spurious
/// wakeups in model mode — callers must still loop on their predicate,
/// as all in-tree users do).
pub struct Condvar {
    #[cfg(feature = "model")]
    tag: std::sync::atomic::AtomicU64,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar {
            #[cfg(feature = "model")]
            tag: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard` and waits for a notification, then
    /// re-acquires the lock. Poison on re-acquisition is recovered.
    #[inline]
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(feature = "model")]
        if guard.model.is_some() {
            let mut guard = guard;
            let (sess, tid, _moid) = guard.model.take().expect("model guard");
            let lock = guard.lock;
            let coid = sess.object_id(&self.tag, model::ObjClass::Condvar);
            // Drop the std guard, release at the model level, park on
            // the condvar, then re-acquire through the normal path.
            guard.inner.take();
            let moid = sess.object_id(&lock.tag, model::ObjClass::Mutex);
            sess.mutex_unlock(tid, moid);
            drop(guard);
            sess.cond_wait(tid, coid, Location::caller());
            return lock.lock();
        }
        let mut guard = guard;
        let lock = guard.lock;
        let std_guard = guard.inner.take().expect("guard taken");
        // Forget the wrapper so its Drop doesn't double-release.
        std::mem::forget(guard);
        let g = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard {
            lock,
            inner: Some(g),
            #[cfg(feature = "model")]
            model: None,
        }
    }

    /// Wakes one waiter (deterministically the longest-waiting one under
    /// a model session).
    #[inline]
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        if let Some((sess, tid)) = model::current() {
            let oid = sess.object_id(&self.tag, model::ObjClass::Condvar);
            sess.cond_notify(tid, oid, false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        if let Some((sess, tid)) = model::current() {
            let oid = sess.object_id(&self.tag, model::ObjClass::Condvar);
            sess.cond_notify(tid, oid, true);
            return;
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock; `std::sync::RwLock` with poison recovery and a
/// model hook (shared readers / exclusive writer are modelled exactly).
pub struct RwLock<T> {
    #[cfg(feature = "model")]
    tag: std::sync::atomic::AtomicU64,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "model")]
            tag: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, recovering from poison.
    #[inline]
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "model")]
        if let Some((sess, tid)) = model::current() {
            let oid = sess.object_id(&self.tag, model::ObjClass::RwLock);
            sess.rw_lock(tid, oid, false, Location::caller());
            let g = match self.inner.try_read() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    unreachable!("jedd-sync model: rwlock read exclusivity violated")
                }
            };
            return RwLockReadGuard { inner: Some(g), model: Some((sess, tid, oid)) };
        }
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard {
            inner: Some(g),
            #[cfg(feature = "model")]
            model: None,
        }
    }

    /// Acquires exclusive write access, recovering from poison.
    #[inline]
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "model")]
        if let Some((sess, tid)) = model::current() {
            let oid = sess.object_id(&self.tag, model::ObjClass::RwLock);
            sess.rw_lock(tid, oid, true, Location::caller());
            let g = match self.inner.try_write() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    unreachable!("jedd-sync model: rwlock write exclusivity violated")
                }
            };
            return RwLockWriteGuard { inner: Some(g), model: Some((sess, tid, oid)) };
        }
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard {
            inner: Some(g),
            #[cfg(feature = "model")]
            model: None,
        }
    }

    /// Mutable access without locking, poison recovered.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    #[cfg(feature = "model")]
    model: Option<(std::sync::Arc<model::Session>, usize, u32)>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.inner.take();
        #[cfg(feature = "model")]
        if let Some((sess, tid, oid)) = self.model.take() {
            sess.rw_unlock(tid, oid, false);
        }
    }
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    #[cfg(feature = "model")]
    model: Option<(std::sync::Arc<model::Session>, usize, u32)>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.inner.take();
        #[cfg(feature = "model")]
        if let Some((sess, tid, oid)) = self.model.take() {
            sess.rw_unlock(tid, oid, true);
        }
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

/// One-shot initialization cell; `std::sync::OnceLock` with a model
/// hook (competing initializers block cooperatively, and the winning
/// initializer's writes happen-before every reader).
pub struct OnceLock<T> {
    #[cfg(feature = "model")]
    tag: std::sync::atomic::AtomicU64,
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    #[inline]
    pub const fn new() -> Self {
        OnceLock {
            #[cfg(feature = "model")]
            tag: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::OnceLock::new(),
        }
    }

    /// Returns the value if initialized.
    #[inline]
    #[track_caller]
    pub fn get(&self) -> Option<&T> {
        #[cfg(feature = "model")]
        if let Some((sess, tid)) = model::current() {
            let oid = sess.object_id(&self.tag, model::ObjClass::Once);
            sess.once_read(tid, oid, Location::caller());
        }
        self.inner.get()
    }

    /// Returns the value, initializing it with `init` if empty. Under a
    /// model session a thread arriving while another is mid-`init`
    /// blocks cooperatively until initialization completes.
    #[inline]
    #[track_caller]
    pub fn get_or_init<F: FnOnce() -> T>(&self, init: F) -> &T {
        #[cfg(feature = "model")]
        if let Some((sess, tid)) = model::current() {
            let oid = sess.object_id(&self.tag, model::ObjClass::Once);
            let site = Location::caller();
            loop {
                match sess.once_begin(tid, oid, self.inner.get().is_some(), site) {
                    model::OnceRole::Done => return self.inner.get().expect("once ready"),
                    model::OnceRole::Init => {
                        let v = init();
                        let _ = self.inner.set(v);
                        sess.once_finish(tid, oid);
                        return self.inner.get().expect("once initialized");
                    }
                    model::OnceRole::Wait => sess.once_wait(tid, oid),
                }
            }
        }
        self.inner.get_or_init(init)
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        OnceLock::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OnceLock").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Atomic integers and flags routed through the model scheduler.
///
/// Each operation is a schedule decision point under an active session;
/// `Ordering` is honoured by the race detector's happens-before relation
/// (`Relaxed` publishes no edge) while the value semantics are the std
/// atomics', executed under the scheduler's serialization.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(feature = "model")]
    use crate::model;
    #[cfg(feature = "model")]
    use std::panic::Location;

    #[cfg(feature = "model")]
    #[inline]
    fn hook(tag: &std::sync::atomic::AtomicU64, load: bool, store: bool, order: Ordering) {
        if let Some((sess, tid)) = model::current() {
            let oid = sess.object_id(tag, model::ObjClass::Atomic);
            let acquire = load && matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst);
            let release = store && matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst);
            sess.atomic_op(tid, oid, acquire, release, Location::caller());
        }
    }

    macro_rules! atomic_shim {
        ($(#[$doc:meta])* $Name:ident, $Std:ident, $T:ty, rmw: [$($rmw:ident),*]) => {
            $(#[$doc])*
            pub struct $Name {
                #[cfg(feature = "model")]
                tag: std::sync::atomic::AtomicU64,
                inner: std::sync::atomic::$Std,
            }

            impl $Name {
                /// Creates a new atomic with the given initial value.
                #[inline]
                pub const fn new(v: $T) -> Self {
                    $Name {
                        #[cfg(feature = "model")]
                        tag: std::sync::atomic::AtomicU64::new(0),
                        inner: std::sync::atomic::$Std::new(v),
                    }
                }

                /// Atomic load.
                #[inline]
                #[track_caller]
                pub fn load(&self, order: Ordering) -> $T {
                    #[cfg(feature = "model")]
                    hook(&self.tag, true, false, order);
                    self.inner.load(order)
                }

                /// Atomic store.
                #[inline]
                #[track_caller]
                pub fn store(&self, v: $T, order: Ordering) {
                    #[cfg(feature = "model")]
                    hook(&self.tag, false, true, order);
                    self.inner.store(v, order)
                }

                /// Atomic swap.
                #[inline]
                #[track_caller]
                pub fn swap(&self, v: $T, order: Ordering) -> $T {
                    #[cfg(feature = "model")]
                    hook(&self.tag, true, true, order);
                    self.inner.swap(v, order)
                }

                /// Atomic compare-and-exchange; on failure the load uses
                /// `failure` ordering.
                #[inline]
                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    current: $T,
                    new: $T,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$T, $T> {
                    #[cfg(feature = "model")]
                    hook(&self.tag, true, true, success);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Weak compare-and-exchange (may spuriously fail on real
                /// hardware; never spuriously fails under the model).
                #[inline]
                #[track_caller]
                pub fn compare_exchange_weak(
                    &self,
                    current: $T,
                    new: $T,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$T, $T> {
                    #[cfg(feature = "model")]
                    hook(&self.tag, true, true, success);
                    self.inner.compare_exchange_weak(current, new, success, failure)
                }

                /// Mutable access without synchronization.
                #[inline]
                pub fn get_mut(&mut self) -> &mut $T {
                    self.inner.get_mut()
                }

                /// Consumes the atomic, returning the value.
                #[inline]
                pub fn into_inner(self) -> $T {
                    self.inner.into_inner()
                }

                $(
                    /// Atomic read-modify-write; returns the previous value.
                    #[inline]
                    #[track_caller]
                    pub fn $rmw(&self, v: $T, order: Ordering) -> $T {
                        #[cfg(feature = "model")]
                        hook(&self.tag, true, true, order);
                        self.inner.$rmw(v, order)
                    }
                )*
            }

            impl std::fmt::Debug for $Name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }

            impl Default for $Name {
                fn default() -> Self {
                    $Name::new(<$T>::default())
                }
            }
        };
    }

    atomic_shim!(
        /// Shimmed `AtomicBool`.
        AtomicBool, AtomicBool, bool, rmw: [fetch_or, fetch_and]
    );
    atomic_shim!(
        /// Shimmed `AtomicU32`.
        AtomicU32, AtomicU32, u32, rmw: [fetch_add, fetch_sub, fetch_or, fetch_and, fetch_max, fetch_min]
    );
    atomic_shim!(
        /// Shimmed `AtomicU64`.
        AtomicU64, AtomicU64, u64, rmw: [fetch_add, fetch_sub, fetch_or, fetch_and, fetch_max, fetch_min]
    );
    atomic_shim!(
        /// Shimmed `AtomicUsize`.
        AtomicUsize, AtomicUsize, usize, rmw: [fetch_add, fetch_sub, fetch_or, fetch_and, fetch_max, fetch_min]
    );
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Scoped thread spawning routed through the model scheduler.
pub mod thread {
    #[cfg(feature = "model")]
    use crate::model;
    #[cfg(feature = "model")]
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Creates a scope for spawning scoped threads; the shim equivalent
    /// of `std::thread::scope`. Under a model session the parent joins
    /// its children cooperatively (the scheduler decides when each child
    /// runs), and a panicking child aborts the whole schedule so no
    /// sibling is left parked.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        #[cfg(feature = "model")]
        if let Some((sess, tid)) = model::current() {
            return std::thread::scope(|s| {
                let sid = sess.new_scope();
                let wrap = Scope { inner: s, ctx: Some((sess.clone(), tid, sid)) };
                let r = catch_unwind(AssertUnwindSafe(|| f(&wrap)));
                sess.scope_end(tid, sid, r.is_err());
                match r {
                    Ok(v) => v,
                    Err(p) => resume_unwind(p),
                }
            });
        }
        std::thread::scope(|s| {
            f(&Scope {
                inner: s,
                #[cfg(feature = "model")]
                ctx: None,
            })
        })
    }

    /// Shim over `std::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        #[cfg(feature = "model")]
        ctx: Option<(std::sync::Arc<model::Session>, usize, u32)>,
    }

    impl<'scope> Scope<'scope, '_> {
        /// Spawns a scoped thread; the shim equivalent of
        /// `std::thread::Scope::spawn`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            #[cfg(feature = "model")]
            if let Some((sess, parent, sid)) = &self.ctx {
                let tid = sess.register_child(*parent, *sid);
                let sess2 = sess.clone();
                let h = self.inner.spawn(move || model::child_main(sess2, tid, f));
                return ScopedJoinHandle { inner: h, model: Some((sess.clone(), tid)) };
            }
            let h = self.inner.spawn(move || Some(f()));
            ScopedJoinHandle {
                inner: h,
                #[cfg(feature = "model")]
                model: None,
            }
        }
    }

    /// Join handle for a scoped thread spawned through the shim.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
        #[cfg(feature = "model")]
        model: Option<(std::sync::Arc<model::Session>, usize)>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result. Under
        /// a model session the wait is cooperative (a scheduler blocking
        /// point); a worker torn down by a schedule abort yields an
        /// `Err` whose payload the session's final report explains.
        pub fn join(self) -> std::thread::Result<T> {
            #[cfg(feature = "model")]
            if let Some((sess, child)) = &self.model {
                let me = model::current().map(|(_, tid)| tid).expect("model join outside session");
                sess.join_thread(me, *child);
                return match self.inner.join() {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => Err(Box::new(model::ScheduleAborted)),
                    Err(e) => Err(e),
                };
            }
            self.inner.join().map(|v| v.expect("passthrough worker result"))
        }
    }
}
