//! Vector clocks for the happens-before relation.
//!
//! One component per model thread id. Edges come from thread
//! spawn/join, mutex release → acquire, condvar notify → wake,
//! `OnceLock` init → read, and `Release`/`Acquire` atomics; `Relaxed`
//! atomic operations publish nothing. Two [`super::TrackedCell`]
//! accesses (at least one a write) that are unordered under this
//! relation are a data race.

/// A vector clock: `v[t]` is the last event of thread `t` known to
/// happen before the owner's current point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock {
    v: Vec<u64>,
}

impl VClock {
    /// Clock component for thread `tid` (0 if never observed).
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.v.get(tid).copied().unwrap_or(0)
    }

    /// Advances the owner thread's own component by one (a new event).
    pub(crate) fn tick(&mut self, tid: usize) {
        if self.v.len() <= tid {
            self.v.resize(tid + 1, 0);
        }
        self.v[tid] += 1;
    }

    /// Pointwise maximum with `other` (learn everything it knows).
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.v.len() < other.v.len() {
            self.v.resize(other.v.len(), 0);
        }
        for (i, &o) in other.v.iter().enumerate() {
            if self.v[i] < o {
                self.v[i] = o;
            }
        }
    }

    /// True if the event `(tid, epoch)` happens before (or at) this
    /// clock's current knowledge — i.e. it is ordered with us.
    pub(crate) fn covers(&self, tid: usize, epoch: u64) -> bool {
        self.get(tid) >= epoch
    }
}

#[cfg(test)]
mod tests {
    use super::VClock;

    #[test]
    fn join_and_covers() {
        let mut a = VClock::default();
        a.tick(0);
        a.tick(0); // a = [2]
        let mut b = VClock::default();
        b.tick(1); // b = [0, 1]
        assert!(!b.covers(0, 2));
        b.join(&a);
        assert!(b.covers(0, 2));
        assert!(b.covers(1, 1));
        assert!(!b.covers(1, 2));
        assert_eq!(b.get(7), 0);
    }
}
