//! Deterministic-interleaving model checking for the `jedd-sync` shim.
//!
//! [`check`] re-executes a closure under a cooperative scheduler that
//! serializes all shim-spawned threads and chooses every interleaving
//! decision itself: seeded random walks, PCT-style priority preemption,
//! or bounded-exhaustive DFS over schedules. Along the way a
//! vector-clock happens-before detector watches [`TrackedCell`]
//! accesses for data races and a lock-order graph records every
//! held-lock → acquired-lock edge, reporting cycles (potential
//! deadlocks) with both acquisition sites. Actual deadlocks (no
//! runnable thread) are detected, torn down and reported rather than
//! hanging the test.
//!
//! The same seed and config replay the same schedule bit-for-bit:
//! [`Report::fingerprints`] carries one fingerprint per explored
//! schedule, folded from every (decision index, chosen thread, enabled
//! set) triple.

mod cell;
mod clock;
mod lockorder;
mod sched;

pub use cell::TrackedCell;
pub(crate) use sched::Session;
use sched::{Abort, IterSummary};

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Thread-local session
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Session>, usize)>> = const { RefCell::new(None) };
}

/// The model session driving the current thread, if any.
pub(crate) fn current() -> Option<(Arc<Session>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Session>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Marker payload for joins torn down by a schedule abort; the final
/// report (deadlock / step-limit / sibling failure) explains why.
#[derive(Debug)]
pub struct ScheduleAborted;

/// Panic payload used internally to unwind threads out of an aborting
/// schedule; never escapes [`check`].
pub(crate) struct AbortPayload;

pub(crate) fn panic_abort() -> ! {
    std::panic::panic_any(AbortPayload)
}

fn install_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortPayload>() {
                return; // scheduled teardown, not a failure
            }
            prev(info);
        }));
    });
}

/// Body of a model-spawned thread: park until first scheduled, run the
/// closure, report the outcome to the session. Real panics are recorded
/// as the session failure (re-raised by [`check`]); abort markers are
/// swallowed.
pub(crate) fn child_main<T, F: FnOnce() -> T>(sess: Arc<Session>, tid: usize, f: F) -> Option<T> {
    let guard = sched::ThreadGuard::new(sess.clone(), tid);
    let r = catch_unwind(AssertUnwindSafe(|| {
        sess.park(tid);
        set_current(Some((sess.clone(), tid)));
        f()
    }));
    let out = match r {
        Ok(v) => Some(v),
        Err(p) => {
            if !p.is::<AbortPayload>() {
                sess.record_failure(p);
            }
            None
        }
    };
    drop(guard);
    out
}

// ---------------------------------------------------------------------------
// Object identity
// ---------------------------------------------------------------------------

/// What kind of sync object a registered id refers to (used in reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ObjClass {
    Mutex,
    Condvar,
    RwLock,
    Once,
    Atomic,
    Cell,
}

impl ObjClass {
    pub(crate) fn name(self) -> &'static str {
        match self {
            ObjClass::Mutex => "Mutex",
            ObjClass::Condvar => "Condvar",
            ObjClass::RwLock => "RwLock",
            ObjClass::Once => "OnceLock",
            ObjClass::Atomic => "Atomic",
            ObjClass::Cell => "TrackedCell",
        }
    }
}

/// Role assigned to a thread entering `OnceLock::get_or_init`.
pub(crate) enum OnceRole {
    /// Already initialized; read it.
    Done,
    /// This thread runs the initializer.
    Init,
    /// Another thread is mid-initialization; block and retry.
    Wait,
}

static GENERATION: AtomicU32 = AtomicU32::new(1);

pub(crate) fn next_generation() -> u32 {
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Global counters (merged into KernelStats by the BDD kernel)
// ---------------------------------------------------------------------------

static CTR_SCHEDULES: AtomicU64 = AtomicU64::new(0);
static CTR_PREEMPTIONS: AtomicU64 = AtomicU64::new(0);
static CTR_RACES: AtomicU64 = AtomicU64::new(0);
static CTR_LOCK_EDGES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn counters_snapshot() -> crate::SchedCounters {
    crate::SchedCounters {
        schedules: CTR_SCHEDULES.load(Ordering::Relaxed),
        preemptions: CTR_PREEMPTIONS.load(Ordering::Relaxed),
        races: CTR_RACES.load(Ordering::Relaxed),
        lock_edges: CTR_LOCK_EDGES.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// PRNG (splitmix64; the workspace builds offline with no external deps)
// ---------------------------------------------------------------------------

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Schedule-exploration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Seeded uniform choice among enabled threads at every decision.
    RandomWalk,
    /// PCT-style: random per-thread priorities with `depth` seeded
    /// priority-change points per schedule; highest-priority enabled
    /// thread runs.
    Pct,
    /// Bounded-exhaustive DFS over schedules: run-to-block baseline,
    /// branching on up to `preemption_bound` forced preemptions.
    Dfs,
}

/// Configuration for a [`check`] run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Seed for random-walk / PCT schedule generation.
    pub seed: u64,
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Schedules to explore for random-walk / PCT.
    pub iterations: usize,
    /// Hard cap on schedules for DFS (guards exponential protocols).
    pub max_schedules: usize,
    /// DFS preemption bound (CHESS-style).
    pub preemption_bound: usize,
    /// PCT priority-change points per schedule.
    pub depth: usize,
    /// Only every n-th atomic operation becomes a schedule decision
    /// point (locks and condvars always decide). Raising this makes big
    /// oracle tests cheap at the cost of schedule granularity.
    pub yield_stride: u64,
    /// Per-schedule decision cap; schedules exceeding it are torn down
    /// and counted in [`Report::truncated`].
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 1,
            strategy: Strategy::RandomWalk,
            iterations: 64,
            max_schedules: 20_000,
            preemption_bound: 2,
            depth: 3,
            yield_stride: 1,
            max_steps: 1_000_000,
        }
    }
}

impl Config {
    /// Seeded random-walk exploration over `iterations` schedules.
    pub fn random(seed: u64, iterations: usize) -> Self {
        Config { seed, iterations, strategy: Strategy::RandomWalk, ..Config::default() }
    }

    /// PCT exploration with `depth` priority-change points.
    pub fn pct(seed: u64, iterations: usize, depth: usize) -> Self {
        Config { seed, iterations, depth, strategy: Strategy::Pct, ..Config::default() }
    }

    /// Bounded-exhaustive DFS with the given preemption bound.
    pub fn dfs(preemption_bound: usize) -> Self {
        Config { preemption_bound, strategy: Strategy::Dfs, ..Config::default() }
    }

    /// Builds a config from the `JEDD_SCHED*` environment:
    /// `JEDD_SCHED=<seed>` (required; enables the mode),
    /// `JEDD_SCHED_STRATEGY=random|pct|dfs`, `JEDD_SCHED_ITERS`,
    /// `JEDD_SCHED_DEPTH`, `JEDD_SCHED_PREEMPTIONS`,
    /// `JEDD_SCHED_MAX_SCHEDULES`, `JEDD_SCHED_STRIDE`.
    /// Returns `None` when `JEDD_SCHED` is unset or unparsable.
    pub fn from_env() -> Option<Self> {
        let seed: u64 = std::env::var("JEDD_SCHED").ok()?.trim().parse().ok()?;
        let mut cfg = Config { seed, ..Config::default() };
        if let Ok(s) = std::env::var("JEDD_SCHED_STRATEGY") {
            cfg.strategy = match s.trim() {
                "pct" => Strategy::Pct,
                "dfs" => Strategy::Dfs,
                _ => Strategy::RandomWalk,
            };
        }
        let num = |k: &str| std::env::var(k).ok().and_then(|v| v.trim().parse::<u64>().ok());
        if let Some(v) = num("JEDD_SCHED_ITERS") {
            cfg.iterations = v as usize;
        }
        if let Some(v) = num("JEDD_SCHED_DEPTH") {
            cfg.depth = v as usize;
        }
        if let Some(v) = num("JEDD_SCHED_PREEMPTIONS") {
            cfg.preemption_bound = v as usize;
        }
        if let Some(v) = num("JEDD_SCHED_MAX_SCHEDULES") {
            cfg.max_schedules = v as usize;
        }
        if let Some(v) = num("JEDD_SCHED_STRIDE") {
            cfg.yield_stride = v.max(1);
        }
        Some(cfg)
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One data race found by the vector-clock detector.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Which tracked object raced (class + per-schedule id).
    pub cell: String,
    /// Kind of conflict: `"write-write"`, `"read-write"` or
    /// `"write-read"`.
    pub kind: &'static str,
    /// Source location of the earlier unordered access.
    pub first: String,
    /// Source location of the later access that completed the race.
    pub second: String,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} race on {}: {} is unordered with {}", self.kind, self.cell, self.first, self.second)
    }
}

/// Result of a [`check`] run.
#[derive(Debug, Default)]
pub struct Report {
    /// Schedules fully executed (including aborted ones).
    pub schedules: u64,
    /// Forced preemptions across all schedules.
    pub preemptions: u64,
    /// Data races found (deduplicated by site pair).
    pub races: Vec<RaceReport>,
    /// Lock-order cycles found (each names every acquisition site on
    /// the cycle), deduplicated.
    pub lock_cycles: Vec<String>,
    /// Distinct lock-order edges (by acquisition-site pair) observed.
    pub lock_edges: u64,
    /// Schedules that ended in an actual deadlock (no runnable thread).
    pub deadlocks: u64,
    /// Description of the first deadlock: every blocked thread, what it
    /// waits on, and the locks it holds.
    pub first_deadlock: Option<String>,
    /// Schedules torn down by the per-schedule step cap.
    pub truncated: u64,
    /// Schedules whose DFS replay prefix diverged (the closure made a
    /// nondeterministic choice outside the scheduler's control).
    pub divergences: u64,
    /// True when DFS exhausted the bounded schedule space.
    pub complete: bool,
    /// One fingerprint per schedule, folded from every (decision,
    /// chosen thread, enabled set) triple; same seed + config → same
    /// fingerprints, bit for bit.
    pub fingerprints: Vec<u64>,
}

impl Report {
    /// Single fingerprint for the whole run (fold of the per-schedule
    /// fingerprints in order).
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0xA076_1D64_78BD_642Fu64;
        for &f in &self.fingerprints {
            let mut s = acc ^ f;
            acc = splitmix64(&mut s);
        }
        acc
    }

    /// Panics with a readable summary if any race, lock-order cycle or
    /// deadlock was found.
    pub fn assert_clean(&self) {
        if self.races.is_empty() && self.lock_cycles.is_empty() && self.deadlocks == 0 {
            return;
        }
        let mut msg = format!(
            "model check failed after {} schedules: {} race(s), {} lock-order cycle(s), {} deadlock(s)",
            self.schedules,
            self.races.len(),
            self.lock_cycles.len(),
            self.deadlocks
        );
        for r in &self.races {
            msg.push_str(&format!("\n  race: {r}"));
        }
        for c in &self.lock_cycles {
            msg.push_str(&format!("\n  lock order: {c}"));
        }
        if let Some(d) = &self.first_deadlock {
            msg.push_str(&format!("\n  deadlock: {d}"));
        }
        panic!("{msg}");
    }
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

/// Runs `f` repeatedly under the deterministic cooperative scheduler,
/// exploring schedules per `cfg`, and returns what was found.
///
/// `f` must drive all its concurrency through the `jedd-sync` wrappers
/// (threads spawned with `jedd_sync::thread::scope`); given that, each
/// schedule is fully deterministic and replayable. Real panics inside
/// `f` (e.g. failed assertions) propagate out of `check` annotated with
/// the schedule index; deadlocks and step-limit teardowns are recorded
/// in the [`Report`] instead of hanging.
pub fn check<F: Fn()>(cfg: Config, f: F) -> Report {
    assert!(current().is_none(), "jedd-sync model: nested check() sessions are not supported");
    install_quiet_hook();
    let mut cfg = cfg;
    cfg.yield_stride = cfg.yield_stride.max(1);
    let sess = Arc::new(Session::new(cfg.clone()));
    let mut report = Report::default();
    let mut prefix: Vec<usize> = Vec::new();
    let mut race_keys: BTreeSet<String> = BTreeSet::new();
    let mut cycle_keys: BTreeSet<String> = BTreeSet::new();
    let mut edge_keys: BTreeSet<(String, String)> = BTreeSet::new();
    let mut seed_stream = cfg.seed;
    let mut last_depth = 64u64;

    loop {
        let iter_seed = splitmix64(&mut seed_stream);
        sess.begin_iteration(next_generation(), std::mem::take(&mut prefix), iter_seed, last_depth);
        set_current(Some((sess.clone(), 0)));
        let r = catch_unwind(AssertUnwindSafe(&f));
        set_current(None);
        let sum: IterSummary = sess.end_iteration();
        last_depth = (sum.depth as u64).max(16);

        report.schedules += 1;
        report.preemptions += sum.preemptions as u64;
        report.fingerprints.push(sum.fingerprint);
        for race in sum.races {
            let key = format!("{}|{}|{}", race.kind, race.first, race.second);
            if race_keys.insert(key) {
                report.races.push(race);
            }
        }
        for cyc in sum.cycles {
            if cycle_keys.insert(cyc.clone()) {
                report.lock_cycles.push(cyc);
            }
        }
        for e in sum.edges {
            edge_keys.insert(e);
        }
        if sum.divergent {
            report.divergences += 1;
        }
        match &sum.aborted {
            Some(Abort::Deadlock(desc)) => {
                report.deadlocks += 1;
                if report.first_deadlock.is_none() {
                    report.first_deadlock = Some(desc.clone());
                }
            }
            Some(Abort::StepLimit) => report.truncated += 1,
            Some(Abort::Failure) | Some(Abort::Teardown) | None => {}
        }

        // A real panic inside the closure wins over everything: finish
        // the books, then re-raise it with the schedule index attached.
        if let Some(payload) = sum.failure {
            finalize_counters(&report, edge_keys.len() as u64);
            eprintln!(
                "jedd-sync model: schedule {} (seed {}, fingerprint {:#x}) failed",
                report.schedules - 1,
                cfg.seed,
                sum.fingerprint
            );
            resume_unwind(payload);
        }
        if let Err(p) = r {
            if !p.is::<AbortPayload>() {
                finalize_counters(&report, edge_keys.len() as u64);
                eprintln!(
                    "jedd-sync model: schedule {} (seed {}, fingerprint {:#x}) failed",
                    report.schedules - 1,
                    cfg.seed,
                    sum.fingerprint
                );
                resume_unwind(p);
            }
        }

        // Advance the exploration.
        match cfg.strategy {
            Strategy::Dfs => {
                let mut levels = sum.levels;
                let mut next: Option<Vec<usize>> = None;
                while let Some(level) = levels.pop() {
                    if level.idx + 1 < level.cands {
                        let mut p: Vec<usize> = levels.iter().map(|l| l.idx).collect();
                        p.push(level.idx + 1);
                        next = Some(p);
                        break;
                    }
                }
                match next {
                    Some(p) if (report.schedules as usize) < cfg.max_schedules => prefix = p,
                    Some(_) => break, // schedule cap hit with work remaining
                    None => {
                        report.complete = true;
                        break;
                    }
                }
            }
            _ => {
                if report.schedules as usize >= cfg.iterations {
                    break;
                }
            }
        }
    }

    report.lock_edges = edge_keys.len() as u64;
    finalize_counters(&report, report.lock_edges);
    report
}

fn finalize_counters(report: &Report, edges: u64) {
    CTR_SCHEDULES.fetch_add(report.schedules, Ordering::Relaxed);
    CTR_PREEMPTIONS.fetch_add(report.preemptions, Ordering::Relaxed);
    CTR_RACES.fetch_add(report.races.len() as u64, Ordering::Relaxed);
    CTR_LOCK_EDGES.fetch_add(edges, Ordering::Relaxed);
}
