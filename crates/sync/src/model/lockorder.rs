//! Runtime lock-order graph with cycle detection.
//!
//! Every successful lock acquisition while other locks are held adds
//! edges `held → acquired`, each remembering both acquisition sites.
//! A cycle in the per-schedule object graph means two threads can
//! acquire the same locks in opposite orders — a potential deadlock —
//! and is reported with the full site chain even if no schedule
//! actually deadlocked.

use std::collections::HashMap;
use std::panic::Location;

type Site = &'static Location<'static>;

#[derive(Default)]
pub(crate) struct LockGraph {
    /// Adjacency: oid → (oid, held-site, acquired-site).
    adj: HashMap<u32, Vec<(u32, Site, Site)>>,
}

impl LockGraph {
    /// Records `held → acquired` and returns a cycle description if
    /// this edge closes one. `edges` receives the (site, site) pair for
    /// dedup/stats.
    pub(crate) fn add_edge(
        &mut self,
        held: u32,
        held_site: Site,
        acquired: u32,
        acquired_site: Site,
        name: impl Fn(u32) -> String,
    ) -> (Option<String>, (String, String)) {
        let pair = (held_site.to_string(), acquired_site.to_string());
        let slot = self.adj.entry(held).or_default();
        if !slot.iter().any(|&(to, _, _)| to == acquired) {
            slot.push((acquired, held_site, acquired_site));
        }
        // A cycle exists iff `acquired` can already reach `held`.
        let cycle = self.path(acquired, held).map(|mut path| {
            // Close the loop with the edge just added.
            path.push((held, acquired, held_site, acquired_site));
            let mut msg = String::from("lock-order cycle:");
            for (from, to, s_from, s_to) in path {
                msg.push_str(&format!(
                    " {}(acquired at {}) -> {}(acquired at {});",
                    name(from),
                    s_from,
                    name(to),
                    s_to
                ));
            }
            msg
        });
        (cycle, pair)
    }

    /// DFS path from `from` to `to` as (from, to, from-site, to-site)
    /// edge list, if one exists.
    fn path(&self, from: u32, to: u32) -> Option<Vec<(u32, u32, Site, Site)>> {
        let mut stack = vec![(from, Vec::new())];
        let mut seen = vec![from];
        while let Some((node, path)) = stack.pop() {
            if let Some(edges) = self.adj.get(&node) {
                for &(next, s_from, s_to) in edges {
                    let mut p = path.clone();
                    p.push((node, next, s_from, s_to));
                    if next == to {
                        return Some(p);
                    }
                    if !seen.contains(&next) {
                        seen.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::LockGraph;
    use std::panic::Location;

    #[test]
    fn ab_ba_is_a_cycle() {
        let mut g = LockGraph::default();
        let site: &'static Location<'static> = Location::caller();
        let name = |o: u32| format!("Mutex#{o}");
        let (c1, _) = g.add_edge(1, site, 2, site, name);
        assert!(c1.is_none());
        let (c2, _) = g.add_edge(2, site, 1, site, name);
        let msg = c2.expect("reverse edge closes the cycle");
        assert!(msg.contains("Mutex#1") && msg.contains("Mutex#2"), "{msg}");
    }

    #[test]
    fn chains_without_reversal_are_clean() {
        let mut g = LockGraph::default();
        let site: &'static Location<'static> = Location::caller();
        let name = |o: u32| format!("Mutex#{o}");
        assert!(g.add_edge(1, site, 2, site, name).0.is_none());
        assert!(g.add_edge(2, site, 3, site, name).0.is_none());
        assert!(g.add_edge(1, site, 3, site, name).0.is_none());
    }
}
