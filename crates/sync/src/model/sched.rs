//! The deterministic cooperative scheduler.
//!
//! All model threads are real OS threads, but exactly one holds the
//! *token* (is `running`) at any moment; everyone else parks on one
//! shared condvar. At every decision point the token holder consults
//! the strategy (random walk / PCT / DFS replay) to pick the next
//! runnable thread and hands the token over. Because threads only
//! observe each other through the shim, the execution is a function of
//! the decision sequence — which is what makes schedules replayable
//! bit-for-bit from a seed or a DFS prefix.

use super::clock::VClock;
use super::lockorder::LockGraph;
use super::{panic_abort, splitmix64, Config, ObjClass, OnceRole, RaceReport, Strategy};
use std::any::Any;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

type Site = &'static Location<'static>;

// ---------------------------------------------------------------------------
// Per-iteration state
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Block {
    Lock(u32),
    Cond(u32),
    Once(u32),
    Join(usize),
    Scope(u32),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

struct Thread {
    status: Status,
    clock: VClock,
    /// Locks currently held: (object id, acquisition site).
    held: Vec<(u32, Site)>,
    scope: Option<u32>,
    priority: u64,
}

struct CellState {
    last_write: Option<(usize, u64, Site)>,
    /// Per-thread last read: (epoch, site).
    reads: Vec<Option<(u64, Site)>>,
}

struct Obj {
    class: ObjClass,
    /// Clock published by the last release-like event on this object.
    release: VClock,
    /// Mutex owner / RwLock writer / OnceLock initializer.
    owner: Option<usize>,
    readers: Vec<usize>,
    /// Condvar wait queue (FIFO) — threads parked in `wait`.
    waiters: Vec<usize>,
    /// OnceLock: 0 = uninit, 1 = initializing, 2 = ready.
    once_state: u8,
    cell: Option<CellState>,
}

impl Obj {
    fn new(class: ObjClass) -> Self {
        Obj {
            class,
            release: VClock::default(),
            owner: None,
            readers: Vec::new(),
            waiters: Vec::new(),
            once_state: 0,
            cell: if class == ObjClass::Cell {
                Some(CellState { last_write: None, reads: Vec::new() })
            } else {
                None
            },
        }
    }
}

struct ScopeState {
    live: usize,
}

/// One DFS decision level: how many candidates existed and which index
/// was taken.
pub(crate) struct Level {
    pub(crate) cands: usize,
    pub(crate) idx: usize,
}

pub(crate) enum Abort {
    Deadlock(String),
    StepLimit,
    /// A thread panicked for real; the payload is in `State::failure`.
    Failure,
    /// Parent scope unwinding; tear everyone down quietly.
    Teardown,
}

/// What one explored schedule produced.
pub(crate) struct IterSummary {
    pub(crate) fingerprint: u64,
    pub(crate) depth: usize,
    pub(crate) preemptions: usize,
    pub(crate) races: Vec<RaceReport>,
    pub(crate) cycles: Vec<String>,
    pub(crate) edges: Vec<(String, String)>,
    pub(crate) levels: Vec<Level>,
    pub(crate) aborted: Option<Abort>,
    pub(crate) failure: Option<Box<dyn Any + Send>>,
    pub(crate) divergent: bool,
}

struct State {
    gen: u32,
    threads: Vec<Thread>,
    scopes: Vec<ScopeState>,
    objects: Vec<Obj>,
    running: usize,
    abort: Option<Abort>,
    failure: Option<Box<dyn Any + Send>>,
    // Decision machinery.
    prefix: Vec<usize>,
    levels: Vec<Level>,
    depth: usize,
    yields: u64,
    preemptions: usize,
    divergent: bool,
    rng: u64,
    min_priority: u64,
    change_points: Vec<u64>,
    fingerprint: u64,
    // Findings.
    races: Vec<RaceReport>,
    cycles: Vec<String>,
    edges: Vec<(String, String)>,
    locks: LockGraph,
}

impl State {
    fn fresh(gen: u32, prefix: Vec<usize>, seed: u64, cfg: &Config, est_depth: u64) -> Self {
        let mut rng = seed;
        let root_priority = splitmix64(&mut rng) | 1;
        let mut change_points = Vec::new();
        if cfg.strategy == Strategy::Pct {
            for _ in 0..cfg.depth {
                change_points.push(splitmix64(&mut rng) % est_depth.max(1) + 1);
            }
        }
        let mut root_clock = VClock::default();
        root_clock.tick(0);
        State {
            gen,
            threads: vec![Thread {
                status: Status::Runnable,
                clock: root_clock,
                held: Vec::new(),
                scope: None,
                priority: root_priority,
            }],
            scopes: Vec::new(),
            objects: Vec::new(),
            running: 0,
            abort: None,
            failure: None,
            prefix,
            levels: Vec::new(),
            depth: 0,
            yields: 0,
            preemptions: 0,
            divergent: false,
            rng,
            min_priority: 0,
            change_points,
            fingerprint: 0x51ED_D5EE_D000_0001,
            races: Vec::new(),
            cycles: Vec::new(),
            edges: Vec::new(),
            locks: LockGraph::default(),
        }
    }

    fn enabled(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(tid, _)| tid)
            .collect()
    }

    fn obj_name(&self, oid: u32) -> String {
        format!("{}#{}", self.objects[oid as usize].class.name(), oid)
    }

    fn describe_stuck(&self) -> String {
        let mut msg = String::from("no runnable thread;");
        for (tid, t) in self.threads.iter().enumerate() {
            if let Status::Blocked(b) = &t.status {
                let what = match b {
                    Block::Lock(o) => format!("waiting for {}", self.obj_name(*o)),
                    Block::Cond(o) => format!("waiting on {}", self.obj_name(*o)),
                    Block::Once(o) => format!("waiting on {}", self.obj_name(*o)),
                    Block::Join(c) => format!("joining thread {c}"),
                    Block::Scope(s) => format!("joining scope {s}"),
                };
                msg.push_str(&format!(" thread {tid} {what}"));
                if !t.held.is_empty() {
                    msg.push_str(" holding");
                    for (o, site) in &t.held {
                        msg.push_str(&format!(" {}(acquired at {})", self.obj_name(*o), site));
                    }
                }
                msg.push(';');
            }
        }
        msg
    }

    /// Marks every thread parked waiting for `pred` as runnable.
    fn wake_where(&mut self, pred: impl Fn(&Block) -> bool) {
        for t in &mut self.threads {
            if let Status::Blocked(b) = &t.status {
                if pred(b) {
                    t.status = Status::Runnable;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// One model-check session: shared by every thread of every schedule of
/// a single `check()` run.
pub(crate) struct Session {
    cfg: Config,
    state: StdMutex<State>,
    cv: StdCondvar,
}

impl Session {
    pub(crate) fn new(cfg: Config) -> Self {
        let est = 64;
        let state = State::fresh(0, Vec::new(), cfg.seed, &cfg, est);
        Session { cfg, state: StdMutex::new(state), cv: StdCondvar::new() }
    }

    fn st(&self) -> StdGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub(crate) fn begin_iteration(&self, gen: u32, prefix: Vec<usize>, seed: u64, est_depth: u64) {
        let mut st = self.st();
        *st = State::fresh(gen, prefix, seed, &self.cfg, est_depth);
    }

    pub(crate) fn end_iteration(&self) -> IterSummary {
        let mut st = self.st();
        IterSummary {
            fingerprint: st.fingerprint,
            depth: st.depth,
            preemptions: st.preemptions,
            races: std::mem::take(&mut st.races),
            cycles: std::mem::take(&mut st.cycles),
            edges: std::mem::take(&mut st.edges),
            levels: std::mem::take(&mut st.levels),
            aborted: st.abort.take(),
            failure: st.failure.take(),
            divergent: st.divergent,
        }
    }

    // -- object registry ----------------------------------------------------

    /// Stable per-schedule id for the sync object owning `tag`;
    /// registers it on first touch this schedule.
    pub(crate) fn object_id(&self, tag: &AtomicU64, class: ObjClass) -> u32 {
        let mut st = self.st();
        let t = tag.load(Ordering::Relaxed);
        if (t >> 32) as u32 == st.gen && ((t as u32) as usize) < st.objects.len() {
            return t as u32;
        }
        let id = st.objects.len() as u32;
        st.objects.push(Obj::new(class));
        tag.store(((st.gen as u64) << 32) | id as u64, Ordering::Relaxed);
        id
    }

    // -- token handoff ------------------------------------------------------

    /// Parks until this thread holds the token; panics with the abort
    /// marker if the schedule is being torn down.
    pub(crate) fn park(&self, me: usize) {
        let mut st = self.st();
        loop {
            if st.abort.is_some() {
                drop(st);
                panic_abort();
            }
            if st.running == me {
                return;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    fn abort_with(&self, mut st: StdGuard<'_, State>, abort: Abort) -> ! {
        if st.abort.is_none() {
            st.abort = Some(abort);
        }
        drop(st);
        self.cv.notify_all();
        panic_abort();
    }

    /// Picks who runs next among `enabled` (≥ 1 entries), updating the
    /// fingerprint, DFS levels and preemption count.
    fn choose(&self, st: &mut State, me: usize, enabled: &[usize]) -> usize {
        st.depth += 1;
        let chosen = if enabled.len() == 1 {
            enabled[0]
        } else {
            match self.cfg.strategy {
                Strategy::RandomWalk => {
                    let r = splitmix64(&mut st.rng);
                    enabled[(r % enabled.len() as u64) as usize]
                }
                Strategy::Pct => {
                    if let Some(pos) = st.change_points.iter().position(|&p| p == st.depth as u64) {
                        st.change_points.swap_remove(pos);
                        // Deprioritize the currently strongest enabled
                        // thread, forcing a context switch here.
                        if let Some(&top) =
                            enabled.iter().max_by_key(|&&t| st.threads[t].priority)
                        {
                            st.min_priority = st.min_priority.wrapping_sub(1);
                            st.threads[top].priority = st.min_priority;
                        }
                    }
                    *enabled
                        .iter()
                        .max_by_key(|&&t| st.threads[t].priority)
                        .expect("non-empty enabled set")
                }
                Strategy::Dfs => {
                    let default = if enabled.contains(&me) { me } else { enabled[0] };
                    let mut cands = vec![default];
                    // Switching away from a still-runnable thread costs
                    // preemption budget; forced switches are free.
                    let free_switch = !enabled.contains(&me);
                    if free_switch || st.preemptions < self.cfg.preemption_bound {
                        cands.extend(enabled.iter().copied().filter(|&t| t != default));
                    }
                    let level = st.levels.len();
                    let idx = if level < st.prefix.len() {
                        let want = st.prefix[level];
                        if want >= cands.len() {
                            st.divergent = true;
                            0
                        } else {
                            want
                        }
                    } else {
                        0
                    };
                    st.levels.push(Level { cands: cands.len(), idx });
                    cands[idx]
                }
            }
        };
        if chosen != me && st.threads.get(me).map(|t| t.status == Status::Runnable).unwrap_or(false)
        {
            st.preemptions += 1;
        }
        let mut mix = st.fingerprint
            ^ ((st.depth as u64) << 32)
            ^ ((chosen as u64) << 8)
            ^ enabled.len() as u64;
        st.fingerprint = splitmix64(&mut mix);
        chosen
    }

    /// A schedule decision point for the running thread. With
    /// `force = false` the configured yield stride may skip it.
    pub(crate) fn decision_point(&self, me: usize, force: bool) {
        let mut st = self.st();
        if st.abort.is_some() {
            drop(st);
            panic_abort();
        }
        debug_assert_eq!(st.running, me, "decision by a thread without the token");
        st.yields += 1;
        if !force && !st.yields.is_multiple_of(self.cfg.yield_stride) {
            return;
        }
        if st.depth as u64 >= self.cfg.max_steps {
            self.abort_with(st, Abort::StepLimit);
        }
        let enabled = st.enabled();
        if enabled.len() < 2 {
            return;
        }
        let chosen = self.choose(&mut st, me, &enabled);
        if chosen == me {
            return;
        }
        st.running = chosen;
        drop(st);
        self.cv.notify_all();
        self.park(me);
    }

    /// The running thread just blocked (its status is already set):
    /// hand the token to someone else and park until it comes back.
    fn switch_from_blocked(&self, mut st: StdGuard<'_, State>, me: usize) {
        let enabled = st.enabled();
        if enabled.is_empty() {
            let desc = st.describe_stuck();
            self.abort_with(st, Abort::Deadlock(desc));
        }
        let chosen = self.choose(&mut st, me, &enabled);
        st.running = chosen;
        drop(st);
        self.cv.notify_all();
        self.park(me);
    }

    // -- mutex --------------------------------------------------------------

    fn acquire_lock_edges(&self, st: &mut State, me: usize, oid: u32, site: Site) {
        let held = st.threads[me].held.clone();
        for (h_oid, h_site) in held {
            if h_oid == oid {
                continue;
            }
            let names: Vec<String> = (0..st.objects.len() as u32).map(|o| st.obj_name(o)).collect();
            let (cycle, pair) =
                st.locks.add_edge(h_oid, h_site, oid, site, |o| {
                    names.get(o as usize).cloned().unwrap_or_else(|| format!("Lock#{o}"))
                });
            if let Some(c) = cycle {
                if !st.cycles.contains(&c) {
                    st.cycles.push(c);
                }
            }
            if !st.edges.contains(&pair) {
                st.edges.push(pair);
            }
        }
    }

    pub(crate) fn mutex_lock(&self, me: usize, oid: u32, site: Site) {
        loop {
            self.decision_point(me, true);
            let mut st = self.st();
            if st.abort.is_some() {
                drop(st);
                panic_abort();
            }
            if st.objects[oid as usize].owner.is_none() {
                self.acquire_lock_edges(&mut st, me, oid, site);
                st.objects[oid as usize].owner = Some(me);
                let release = st.objects[oid as usize].release.clone();
                let t = &mut st.threads[me];
                t.clock.join(&release);
                t.held.push((oid, site));
                return;
            }
            st.threads[me].status = Status::Blocked(Block::Lock(oid));
            self.switch_from_blocked(st, me);
        }
    }

    /// Non-blocking acquire; false if held by someone else.
    pub(crate) fn mutex_try_lock(&self, me: usize, oid: u32, site: Site) -> bool {
        self.decision_point(me, true);
        let mut st = self.st();
        if st.abort.is_some() {
            drop(st);
            panic_abort();
        }
        if st.objects[oid as usize].owner.is_some() {
            return false;
        }
        self.acquire_lock_edges(&mut st, me, oid, site);
        st.objects[oid as usize].owner = Some(me);
        let release = st.objects[oid as usize].release.clone();
        let t = &mut st.threads[me];
        t.clock.join(&release);
        t.held.push((oid, site));
        true
    }

    pub(crate) fn mutex_unlock(&self, me: usize, oid: u32) {
        let mut st = self.st();
        let clock = st.threads[me].clock.clone();
        st.objects[oid as usize].release.join(&clock);
        st.objects[oid as usize].owner = None;
        st.threads[me].clock.tick(me);
        st.threads[me].held.retain(|&(o, _)| o != oid);
        st.wake_where(|b| *b == Block::Lock(oid));
        // No decision point: unlock never blocks, and during an abort
        // unwind this must stay panic-free.
    }

    // -- rwlock -------------------------------------------------------------

    pub(crate) fn rw_lock(&self, me: usize, oid: u32, write: bool, site: Site) {
        loop {
            self.decision_point(me, true);
            let mut st = self.st();
            if st.abort.is_some() {
                drop(st);
                panic_abort();
            }
            let free = {
                let o = &st.objects[oid as usize];
                o.owner.is_none() && (!write || o.readers.is_empty())
            };
            if free {
                self.acquire_lock_edges(&mut st, me, oid, site);
                if write {
                    st.objects[oid as usize].owner = Some(me);
                } else {
                    st.objects[oid as usize].readers.push(me);
                }
                let release = st.objects[oid as usize].release.clone();
                let t = &mut st.threads[me];
                t.clock.join(&release);
                t.held.push((oid, site));
                return;
            }
            st.threads[me].status = Status::Blocked(Block::Lock(oid));
            self.switch_from_blocked(st, me);
        }
    }

    pub(crate) fn rw_unlock(&self, me: usize, oid: u32, write: bool) {
        let mut st = self.st();
        if write {
            let clock = st.threads[me].clock.clone();
            st.objects[oid as usize].release.join(&clock);
            st.objects[oid as usize].owner = None;
        } else {
            st.objects[oid as usize].readers.retain(|&t| t != me);
        }
        st.threads[me].clock.tick(me);
        st.threads[me].held.retain(|&(o, _)| o != oid);
        st.wake_where(|b| *b == Block::Lock(oid));
    }

    // -- condvar ------------------------------------------------------------

    /// Parks on the condvar (the caller has already released the paired
    /// mutex) until notified; joins the notifier's published clock.
    pub(crate) fn cond_wait(&self, me: usize, oid: u32, _site: Site) {
        let mut st = self.st();
        if st.abort.is_some() {
            drop(st);
            panic_abort();
        }
        st.objects[oid as usize].waiters.push(me);
        st.threads[me].status = Status::Blocked(Block::Cond(oid));
        self.switch_from_blocked(st, me);
        let mut st = self.st();
        let release = st.objects[oid as usize].release.clone();
        st.threads[me].clock.join(&release);
    }

    pub(crate) fn cond_notify(&self, me: usize, oid: u32, all: bool) {
        let mut st = self.st();
        let clock = st.threads[me].clock.clone();
        st.objects[oid as usize].release.join(&clock);
        st.threads[me].clock.tick(me);
        let woken: Vec<usize> = if all {
            std::mem::take(&mut st.objects[oid as usize].waiters)
        } else if st.objects[oid as usize].waiters.is_empty() {
            Vec::new()
        } else {
            vec![st.objects[oid as usize].waiters.remove(0)]
        };
        for tid in woken {
            if st.threads[tid].status == Status::Blocked(Block::Cond(oid)) {
                st.threads[tid].status = Status::Runnable;
            }
        }
    }

    // -- oncelock -----------------------------------------------------------

    pub(crate) fn once_begin(&self, me: usize, oid: u32, std_ready: bool, _site: Site) -> OnceRole {
        self.decision_point(me, true);
        let mut st = self.st();
        if st.abort.is_some() {
            drop(st);
            panic_abort();
        }
        if std_ready && st.objects[oid as usize].once_state != 2 {
            // Initialized outside this schedule (e.g. a static touched
            // by an earlier schedule); adopt it.
            st.objects[oid as usize].once_state = 2;
        }
        match st.objects[oid as usize].once_state {
            2 => {
                let release = st.objects[oid as usize].release.clone();
                st.threads[me].clock.join(&release);
                OnceRole::Done
            }
            0 => {
                st.objects[oid as usize].once_state = 1;
                st.objects[oid as usize].owner = Some(me);
                OnceRole::Init
            }
            _ => OnceRole::Wait,
        }
    }

    pub(crate) fn once_wait(&self, me: usize, oid: u32) {
        let mut st = self.st();
        if st.abort.is_some() {
            drop(st);
            panic_abort();
        }
        if st.objects[oid as usize].once_state == 2 {
            return; // finished between our check and the block
        }
        st.threads[me].status = Status::Blocked(Block::Once(oid));
        self.switch_from_blocked(st, me);
    }

    pub(crate) fn once_finish(&self, me: usize, oid: u32) {
        let mut st = self.st();
        let clock = st.threads[me].clock.clone();
        st.objects[oid as usize].release.join(&clock);
        st.objects[oid as usize].once_state = 2;
        st.objects[oid as usize].owner = None;
        st.threads[me].clock.tick(me);
        st.wake_where(|b| *b == Block::Once(oid));
    }

    pub(crate) fn once_read(&self, me: usize, oid: u32, _site: Site) {
        let mut st = self.st();
        if st.objects[oid as usize].once_state == 2 {
            let release = st.objects[oid as usize].release.clone();
            st.threads[me].clock.join(&release);
        }
    }

    // -- atomics ------------------------------------------------------------

    pub(crate) fn atomic_op(&self, me: usize, oid: u32, acquire: bool, release: bool, _site: Site) {
        self.decision_point(me, false);
        let mut st = self.st();
        if release {
            let clock = st.threads[me].clock.clone();
            st.objects[oid as usize].release.join(&clock);
            st.threads[me].clock.tick(me);
        }
        if acquire {
            let rel = st.objects[oid as usize].release.clone();
            st.threads[me].clock.join(&rel);
        }
    }

    // -- tracked cells (race detection) -------------------------------------

    pub(crate) fn cell_access(&self, me: usize, oid: u32, write: bool, site: Site) {
        self.decision_point(me, true);
        let mut st = self.st();
        let epoch = st.threads[me].clock.get(me);
        let my_clock = st.threads[me].clock.clone();
        let name = st.obj_name(oid);
        let mut found: Vec<RaceReport> = Vec::new();
        let cell = st.objects[oid as usize].cell.as_mut().expect("cell state");
        if let Some((w_tid, w_epoch, w_site)) = cell.last_write {
            if w_tid != me && !my_clock.covers(w_tid, w_epoch) {
                found.push(RaceReport {
                    cell: name.clone(),
                    kind: if write { "write-write" } else { "write-read" },
                    first: w_site.to_string(),
                    second: site.to_string(),
                });
            }
        }
        if write {
            for (r_tid, slot) in cell.reads.iter().enumerate() {
                if let Some((r_epoch, r_site)) = slot {
                    if r_tid != me && !my_clock.covers(r_tid, *r_epoch) {
                        found.push(RaceReport {
                            cell: name.clone(),
                            kind: "read-write",
                            first: r_site.to_string(),
                            second: site.to_string(),
                        });
                    }
                }
            }
            cell.last_write = Some((me, epoch, site));
            cell.reads.iter_mut().for_each(|s| *s = None);
        } else {
            if cell.reads.len() <= me {
                cell.reads.resize(me + 1, None);
            }
            cell.reads[me] = Some((epoch, site));
        }
        st.threads[me].clock.tick(me);
        st.races.extend(found);
    }

    // -- threads and scopes -------------------------------------------------

    pub(crate) fn new_scope(&self) -> u32 {
        let mut st = self.st();
        st.scopes.push(ScopeState { live: 0 });
        (st.scopes.len() - 1) as u32
    }

    pub(crate) fn register_child(&self, parent: usize, scope: u32) -> usize {
        let mut st = self.st();
        let tid = st.threads.len();
        st.threads[parent].clock.tick(parent);
        let mut clock = st.threads[parent].clock.clone();
        clock.tick(tid);
        let mut rng_val = splitmix64(&mut st.rng);
        rng_val |= 1;
        st.threads.push(Thread {
            status: Status::Runnable,
            clock,
            held: Vec::new(),
            scope: Some(scope),
            priority: rng_val,
        });
        st.scopes[scope as usize].live += 1;
        tid
    }

    /// Cooperative join on a single thread (explicit `join()` call).
    pub(crate) fn join_thread(&self, me: usize, child: usize) {
        loop {
            let mut st = self.st();
            if st.abort.is_some() {
                drop(st);
                panic_abort();
            }
            if st.threads[child].status == Status::Finished {
                let child_clock = st.threads[child].clock.clone();
                st.threads[me].clock.join(&child_clock);
                st.threads[me].clock.tick(me);
                return;
            }
            st.threads[me].status = Status::Blocked(Block::Join(child));
            self.switch_from_blocked(st, me);
        }
    }

    /// End of a `thread::scope` closure. On the normal path the parent
    /// blocks cooperatively until every child of the scope finished; on
    /// the panic path the whole schedule is torn down first so no child
    /// is left parked when std's scope join runs.
    pub(crate) fn scope_end(&self, me: usize, scope: u32, panicked: bool) {
        if panicked {
            {
                let mut st = self.st();
                if st.abort.is_none() {
                    st.abort =
                        Some(if st.failure.is_some() { Abort::Failure } else { Abort::Teardown });
                }
            }
            self.cv.notify_all();
            // OS-level wait: children are unwinding via the abort
            // marker and will flag Finished as they go.
            let mut st = self.st();
            while st.scopes[scope as usize].live > 0 {
                st = match self.cv.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
            return;
        }
        loop {
            let mut st = self.st();
            if st.abort.is_some() {
                drop(st);
                panic_abort();
            }
            if st.scopes[scope as usize].live == 0 {
                // Adopt every child's final clock (scope join edge).
                let clocks: Vec<VClock> = st
                    .threads
                    .iter()
                    .filter(|t| t.scope == Some(scope))
                    .map(|t| t.clock.clone())
                    .collect();
                for c in &clocks {
                    st.threads[me].clock.join(c);
                }
                st.threads[me].clock.tick(me);
                return;
            }
            st.threads[me].status = Status::Blocked(Block::Scope(scope));
            self.switch_from_blocked(st, me);
        }
    }

    pub(crate) fn record_failure(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.st();
        if st.failure.is_none() {
            st.failure = Some(payload);
        }
        if st.abort.is_none() {
            st.abort = Some(Abort::Failure);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Thread teardown (runs from `ThreadGuard::drop`, including on
    /// panic): mark finished, wake joiners, hand the token on.
    fn thread_exit(&self, me: usize) {
        let mut st = self.st();
        st.threads[me].status = Status::Finished;
        // Locks can only still be held here if a guard was leaked;
        // release them so siblings aren't stuck forever.
        let leaked: Vec<u32> = st.threads[me].held.drain(..).map(|(o, _)| o).collect();
        for oid in leaked {
            st.objects[oid as usize].owner = None;
            st.wake_where(|b| *b == Block::Lock(oid));
        }
        if let Some(scope) = st.threads[me].scope {
            st.scopes[scope as usize].live -= 1;
            if st.scopes[scope as usize].live == 0 {
                st.wake_where(|b| *b == Block::Scope(scope));
            }
        }
        st.wake_where(|b| *b == Block::Join(me));
        if st.abort.is_some() {
            drop(st);
            self.cv.notify_all();
            return;
        }
        if st.running == me {
            let enabled = st.enabled();
            if enabled.is_empty() {
                if st.threads.iter().any(|t| matches!(t.status, Status::Blocked(_))) {
                    let desc = st.describe_stuck();
                    if st.abort.is_none() {
                        st.abort = Some(Abort::Deadlock(desc));
                    }
                }
                drop(st);
                self.cv.notify_all();
                return;
            }
            let chosen = self.choose(&mut st, me, &enabled);
            st.running = chosen;
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// Releases a model thread's slot on drop, even when the thread is
/// unwinding — a panicking worker must still hand the token on so its
/// siblings aren't parked forever.
pub(crate) struct ThreadGuard {
    sess: Arc<Session>,
    tid: usize,
}

impl ThreadGuard {
    pub(crate) fn new(sess: Arc<Session>, tid: usize) -> Self {
        ThreadGuard { sess, tid }
    }
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        self.sess.thread_exit(self.tid);
    }
}
