//! A plain-data cell the race detector watches.
//!
//! `TrackedCell` deliberately provides **no synchronization** in the
//! model's eyes: its accesses carry no happens-before edges, so two
//! threads touching one without an ordering lock/atomic between them
//! (at least one writing) is reported as a data race. Use it in model
//! tests to assert that a protocol's plain-data fields really are
//! protected by its locks — or, with the protection removed, that the
//! detector fires.
//!
//! Outside an active model session the cell degrades to a mutex-backed
//! cell (it is a test aid, not a production primitive).

use super::ObjClass;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex as StdMutex;

/// A shared cell of plain data under vector-clock race detection.
pub struct TrackedCell<T> {
    tag: AtomicU64,
    data: StdMutex<T>,
}

impl<T: Copy> TrackedCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        TrackedCell { tag: AtomicU64::new(0), data: StdMutex::new(value) }
    }

    /// Reads the value. A model-session read is a schedule decision
    /// point and is checked against unordered prior writes.
    #[track_caller]
    pub fn get(&self) -> T {
        if let Some((sess, tid)) = super::current() {
            let oid = sess.object_id(&self.tag, ObjClass::Cell);
            sess.cell_access(tid, oid, false, std::panic::Location::caller());
        }
        match self.data.lock() {
            Ok(g) => *g,
            Err(p) => *p.into_inner(),
        }
    }

    /// Writes the value. A model-session write is a schedule decision
    /// point and is checked against unordered prior reads and writes.
    #[track_caller]
    pub fn set(&self, value: T) {
        if let Some((sess, tid)) = super::current() {
            let oid = sess.object_id(&self.tag, ObjClass::Cell);
            sess.cell_access(tid, oid, true, std::panic::Location::caller());
        }
        match self.data.lock() {
            Ok(mut g) => *g = value,
            Err(p) => *p.into_inner() = value,
        }
    }
}

impl<T: std::fmt::Debug + Copy> std::fmt::Debug for TrackedCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("TrackedCell").field(&self.get()).finish()
    }
}
