//! Model-checker self-tests: determinism of seeded schedules, the
//! vector-clock race detector firing on an unprotected cell (and
//! staying quiet on a locked one), actual-deadlock detection with
//! lock-order cycle reports, condvar wakeups, and bounded-exhaustive
//! DFS observing a lost update that a single OS schedule would
//! almost never produce.
#![cfg(feature = "model")]

use jedd_sync::atomic::{AtomicUsize, Ordering};
use jedd_sync::model::{check, Config, Report, TrackedCell};
use jedd_sync::{thread, Condvar, Mutex};

fn racy_increments(threads: usize) -> Report {
    check(Config::random(7, 40), move || {
        let cell = TrackedCell::new(0u64);
        thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let v = cell.get();
                    cell.set(v + 1);
                });
            }
        });
    })
}

#[test]
fn race_detector_fires_on_unprotected_cell() {
    let report = racy_increments(2);
    assert!(
        !report.races.is_empty(),
        "two unsynchronized read-modify-writes must race: {report:?}"
    );
    assert!(report.races.iter().any(|r| r.kind == "write-write" || r.kind == "read-write"));
    // Reports carry real source locations from this file.
    assert!(report.races[0].second.contains("model.rs"), "{:?}", report.races[0]);
}

#[test]
fn race_detector_stays_quiet_under_a_lock() {
    let report = check(Config::random(7, 40), || {
        let cell = TrackedCell::new(0u64);
        let lock = Mutex::new(());
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _g = lock.lock();
                    let v = cell.get();
                    cell.set(v + 1);
                });
            }
        });
    });
    assert!(report.races.is_empty(), "lock-ordered accesses must not race: {report:?}");
    assert_eq!(report.deadlocks, 0);
    report.assert_clean();
}

#[test]
fn release_acquire_atomic_publishes_order() {
    // Writer publishes the cell with a Release store; reader only
    // touches it after observing the flag with an Acquire load. No race.
    let report = check(Config::random(11, 60), || {
        let cell = TrackedCell::new(0u64);
        let flag = jedd_sync::atomic::AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                cell.set(42);
                flag.store(true, Ordering::Release);
            });
            s.spawn(|| {
                if flag.load(Ordering::Acquire) {
                    assert_eq!(cell.get(), 42);
                }
            });
        });
    });
    assert!(report.races.is_empty(), "release/acquire must order the cell: {report:?}");
}

#[test]
fn relaxed_atomic_publishes_nothing() {
    // Same protocol but Relaxed: the flag still transfers the value at
    // the machine level, yet establishes no happens-before — the
    // detector must flag the cell.
    let report = check(Config::random(11, 60), || {
        let cell = TrackedCell::new(0u64);
        let flag = jedd_sync::atomic::AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                cell.set(42);
                flag.store(true, Ordering::Relaxed);
            });
            s.spawn(|| {
                if flag.load(Ordering::Relaxed) {
                    let _ = cell.get();
                }
            });
        });
    });
    assert!(!report.races.is_empty(), "relaxed flag must not order the cell: {report:?}");
}

#[test]
fn same_seed_reproduces_schedules_bit_for_bit() {
    let a = racy_increments(3);
    let b = racy_increments(3);
    assert_eq!(a.fingerprints, b.fingerprints, "same seed must replay the same schedules");
    assert_eq!(a.fingerprint(), b.fingerprint());
    let c = check(Config::random(8, 40), move || {
        let cell = TrackedCell::new(0u64);
        thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let v = cell.get();
                    cell.set(v + 1);
                });
            }
        });
    });
    assert_ne!(a.fingerprint(), c.fingerprint(), "a different seed must explore differently");
}

#[test]
fn ab_ba_deadlock_is_detected_and_reported() {
    let report = check(Config::random(3, 200), || {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        thread::scope(|s| {
            s.spawn(|| {
                let _ga = a.lock();
                let _gb = b.lock();
            });
            s.spawn(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            });
        });
    });
    assert!(report.deadlocks > 0, "AB-BA must actually deadlock under some schedule: {report:?}");
    let desc = report.first_deadlock.as_deref().expect("deadlock description");
    assert!(desc.contains("Mutex#") && desc.contains("model.rs"), "{desc}");
    // The lock-order graph must also flag the inversion, with both
    // acquisition sites named.
    assert!(!report.lock_cycles.is_empty(), "lock-order cycle expected: {report:?}");
    assert!(report.lock_cycles[0].contains("model.rs"), "{}", report.lock_cycles[0]);
    assert!(report.lock_edges >= 2);
}

#[test]
fn consistent_lock_order_has_no_cycles() {
    let report = check(Config::random(3, 100), || {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _ga = a.lock();
                    let _gb = b.lock();
                });
            }
        });
    });
    assert_eq!(report.deadlocks, 0, "{report:?}");
    assert!(report.lock_cycles.is_empty(), "{report:?}");
    assert!(report.lock_edges >= 1, "the a->b edge must be recorded: {report:?}");
}

#[test]
fn condvar_wakeup_is_not_lost() {
    // Classic ready-flag handoff: under every explored schedule the
    // consumer must see the producer's value, whether it parks first or
    // the producer signals first.
    let report = check(Config::pct(13, 60, 3), || {
        let slot = Mutex::new(None::<u32>);
        let cv = Condvar::new();
        thread::scope(|s| {
            s.spawn(|| {
                let mut g = slot.lock();
                *g = Some(99);
                drop(g);
                cv.notify_one();
            });
            s.spawn(|| {
                let mut g = slot.lock();
                while g.is_none() {
                    g = cv.wait(g);
                }
                assert_eq!(*g, Some(99));
            });
        });
    });
    assert_eq!(report.deadlocks, 0, "{report:?}");
    report.assert_clean();
}

#[test]
fn dfs_exhausts_tiny_protocols_and_finds_the_lost_update() {
    // Two unsynchronized load/store increments: DFS must (a) terminate
    // with `complete` on this tiny space and (b) visit a schedule where
    // both threads read 0 and the final value is 1 — the lost update an
    // OS schedule almost never shows.
    let lost = std::sync::Mutex::new(false);
    let finals = std::sync::Mutex::new(std::collections::BTreeSet::new());
    let report = check(Config::dfs(2), || {
        let ctr = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let v = ctr.load(Ordering::Relaxed);
                    ctr.store(v + 1, Ordering::Relaxed);
                });
            }
        });
        let v = ctr.load(Ordering::Relaxed);
        finals.lock().unwrap().insert(v);
        if v == 1 {
            *lost.lock().unwrap() = true;
        }
    });
    assert!(report.complete, "DFS must exhaust the bounded space: {report:?}");
    assert!(report.schedules > 1, "{report:?}");
    assert!(*lost.lock().unwrap(), "bounded DFS must exhibit the lost update: {finals:?}");
    assert_eq!(*finals.lock().unwrap(), [1usize, 2].into_iter().collect());
}

#[test]
fn dfs_on_a_correct_cas_loop_sees_only_the_right_answer() {
    let finals = std::sync::Mutex::new(std::collections::BTreeSet::new());
    let report = check(Config::dfs(2), || {
        let ctr = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| loop {
                    let v = ctr.load(Ordering::Relaxed);
                    if ctr
                        .compare_exchange_weak(v, v + 1, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        break;
                    }
                });
            }
        });
        finals.lock().unwrap().insert(ctr.load(Ordering::Relaxed));
    });
    assert!(report.complete, "{report:?}");
    assert_eq!(*finals.lock().unwrap(), [2usize].into_iter().collect(), "{report:?}");
}

#[test]
fn join_handles_propagate_results_under_the_model() {
    let report = check(Config::random(21, 20), || {
        let n = thread::scope(|s| {
            let h1 = s.spawn(|| 20u32);
            let h2 = s.spawn(|| 22u32);
            h1.join().expect("worker 1") + h2.join().expect("worker 2")
        });
        assert_eq!(n, 42);
    });
    assert_eq!(report.deadlocks, 0);
    report.assert_clean();
}

#[test]
fn once_lock_initializes_exactly_once_under_contention() {
    let inits = std::sync::Mutex::new(0u32);
    let report = check(Config::random(5, 60), || {
        *inits.lock().unwrap() = 0;
        let once = jedd_sync::OnceLock::new();
        thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let v = *once.get_or_init(|| {
                        *inits.lock().unwrap() += 1;
                        7u64
                    });
                    assert_eq!(v, 7);
                });
            }
        });
        assert_eq!(*inits.lock().unwrap(), 1, "initializer ran more than once");
    });
    report.assert_clean();
}

#[test]
fn env_config_round_trips() {
    // Not set => None (the harness never sets JEDD_SCHED for this
    // binary's default run).
    if std::env::var("JEDD_SCHED").is_err() {
        assert!(Config::from_env().is_none());
    }
    let cfg = Config::random(99, 10);
    assert_eq!(cfg.seed, 99);
    let d = Config::dfs(3);
    assert_eq!(d.preemption_bound, 3);
}

#[test]
fn counters_accumulate_across_sessions() {
    let before = jedd_sync::counters();
    let _ = racy_increments(2);
    let after = jedd_sync::counters();
    assert!(after.schedules > before.schedules);
    assert!(after.races >= before.races);
}

#[test]
fn passthrough_outside_sessions_still_works() {
    // No session active: the wrappers behave like std.
    assert!(!jedd_sync::model_active());
    let m = Mutex::new(5u32);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 6);
    let ctr = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                ctr.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(ctr.load(Ordering::Relaxed), 4);
}
