//! Variable permutation (the BuDDy `replace` / CUDD `SwapVariables`
//! operation) used when a relation changes physical domains.

use crate::budget::BddError;
use crate::node::Permutation;
use crate::table::Inner;
use std::collections::HashMap;

impl Inner {
    /// Rewrites `f` with every variable `v` replaced by `perm.apply(v)`.
    ///
    /// Correct for arbitrary permutations, including order-reversing ones:
    /// each node is rebuilt with `ite(newvar, high', low')`, which re-sorts
    /// the result into canonical variable order. Memoised per call.
    ///
    /// # Panics
    ///
    /// Panics if two distinct support variables of `f` would map to the same
    /// target variable, or a target variable is out of range.
    pub(crate) fn replace(&mut self, f: u32, perm: &Permutation) -> Result<u32, BddError> {
        if perm.is_identity() || f <= 1 {
            return Ok(f);
        }
        // Validate injectivity on the support.
        let support = self.support(f);
        let mut targets: Vec<u32> = support.iter().map(|&v| perm.apply(v)).collect();
        targets.sort_unstable();
        for w in targets.windows(2) {
            assert!(
                w[0] != w[1],
                "replace: two support variables map to the same target {}",
                w[0]
            );
        }
        for &t in &targets {
            assert!(
                t < self.num_vars(),
                "replace: target variable {t} out of range"
            );
        }
        let mut memo: HashMap<u32, u32> = HashMap::new();
        self.replace_rec(f, perm, &mut memo)
    }

    fn replace_rec(
        &mut self,
        f: u32,
        perm: &Permutation,
        memo: &mut HashMap<u32, u32>,
    ) -> Result<u32, BddError> {
        if f <= 1 {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        self.step()?;
        let level = self.level(f);
        let lo = self.low(f);
        let hi = self.high(f);
        let lo2 = self.replace_rec(lo, perm, memo)?;
        let hi2 = self.replace_rec(hi, perm, memo)?;
        let new_var = perm.apply(self.var_at_level(level));
        // `ite(var, hi2, lo2)` places the new variable at its canonical
        // level even when the permutation reorders the support.
        let var = self.mk_var(new_var)?;
        let r = self.ite(var, hi2, lo2)?;
        memo.insert(f, r);
        Ok(r)
    }
}
