//! Variable permutation (the BuDDy `replace` / CUDD `SwapVariables`
//! operation) used when a relation changes physical domains.
//!
//! Two implementations live here. The primary one is a direct recursion
//! memoised in the shared operation cache under `CacheOp::Replace`, keyed
//! on `(node, interned permutation id)`: where the permutation preserves
//! the level order of the remaining support it builds the result node with
//! a single `mk` at the mapped level, and only order-reversing segments
//! fall back to an `ite` rebuild. The secondary `replace_rebuild` is the
//! original per-call-`HashMap` + `ite` rewrite, kept as the correctness
//! oracle for property tests and the baseline for the `replace_cost`
//! bench.

use crate::budget::{BddError, PermutationFlaw};
use crate::node::Permutation;
use crate::table::{CacheOp, Inner};
use std::collections::HashMap;

impl Inner {
    /// Checks that `perm` is injective on the support of `f` and maps it
    /// inside the variable range. Must run before any recursion: an
    /// out-of-range target would otherwise index past `var2level`.
    fn validate_replace(&self, f: u32, perm: &Permutation) -> Result<(), BddError> {
        let support = self.support(f);
        let mut targets: Vec<u32> = support.iter().map(|&v| perm.apply(v)).collect();
        targets.sort_unstable();
        for w in targets.windows(2) {
            if w[0] == w[1] {
                return Err(BddError::InvalidPermutation {
                    var: w[0],
                    kind: PermutationFlaw::DuplicateTarget,
                });
            }
        }
        for &t in &targets {
            if t >= self.num_vars() {
                return Err(BddError::InvalidPermutation {
                    var: t,
                    kind: PermutationFlaw::OutOfRange,
                });
            }
        }
        Ok(())
    }

    /// Rewrites `f` with every variable `v` replaced by `perm.apply(v)`.
    ///
    /// Correct for arbitrary permutations, including order-reversing ones.
    /// Memoised in the shared operation cache, so repeated replaces with
    /// the same (interned) permutation hit across top-level calls.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::InvalidPermutation`] if two distinct support
    /// variables of `f` would map to the same target variable, or a target
    /// variable is out of range; resource errors under an active budget or
    /// fail plan.
    pub(crate) fn replace(&mut self, f: u32, perm: &Permutation) -> Result<u32, BddError> {
        if perm.is_identity() || f <= 1 {
            return Ok(f);
        }
        self.record_op_shape(&[f]);
        self.validate_replace(f, perm)?;
        let pid = self.intern_permutation(perm);
        if self.par_enabled() {
            // Splitting must stay above every level a moved variable can
            // come from or go to; above that boundary the permutation is
            // the identity, so the combine at a split level is a plain
            // `mk` at the unchanged level.
            let limit = perm
                .pairs()
                .iter()
                .map(|&(from, to)| self.level_of_var(from).min(self.level_of_var(to)))
                .min()
                .unwrap_or(0);
            if limit >= 2 && self.probe_at_least(&[f], self.par_cutoff()) {
                match self.par_run(crate::par::Job::Replace { perm, pid }, f, 0, limit)? {
                    crate::par::ParAttempt::Done(r) => return Ok(r),
                    crate::par::ParAttempt::Fallback => {}
                }
            }
        }
        self.replace_rec(f, perm, pid)
    }

    fn replace_rec(&mut self, f: u32, perm: &Permutation, pid: u32) -> Result<u32, BddError> {
        if f <= 1 {
            return Ok(f);
        }
        self.step()?;
        self.prefault(&[f])?;
        if let Some(r) = self.cache_lookup(CacheOp::Replace, f, pid, 0) {
            return Ok(r);
        }
        // Splitting at the top level (not the stored child edge) keeps
        // chain nodes correct: each chain level maps to its own target
        // variable, and the cofactor tail re-exposes the remaining levels.
        let lf = self.level(f);
        let (lo, hi) = self.cofactor_pair(f, lf)?;
        let lo2 = self.replace_rec(lo, perm, pid)?;
        let hi2 = self.replace_rec(hi, perm, pid)?;
        let new_var = perm.apply(self.var_at_level(lf));
        let new_level = self.level_of_var(new_var);
        // When the mapped variable still sits above both rewritten
        // children the order is locally preserved and one `mk` suffices
        // (terminals report `u32::MAX` as their level, so they always
        // pass). Only an order-reversing segment needs the `ite` rebuild,
        // which re-sorts the new variable to its canonical position.
        let r = if new_level < self.level(lo2) && new_level < self.level(hi2) {
            self.mk(new_level, lo2, hi2)?
        } else {
            let var = self.mk(new_level, 0, 1)?;
            self.ite(var, hi2, lo2)?
        };
        self.cache_store(CacheOp::Replace, f, pid, 0, r);
        Ok(r)
    }

    /// Reference implementation of [`Inner::replace`]: the original
    /// rewrite that rebuilds every node with `ite(newvar, high', low')`
    /// under a per-call `HashMap` memo, bypassing the shared cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`Inner::replace`].
    pub(crate) fn replace_rebuild(&mut self, f: u32, perm: &Permutation) -> Result<u32, BddError> {
        if perm.is_identity() || f <= 1 {
            return Ok(f);
        }
        self.validate_replace(f, perm)?;
        let mut memo: HashMap<u32, u32> = HashMap::new();
        self.replace_rebuild_rec(f, perm, &mut memo)
    }

    fn replace_rebuild_rec(
        &mut self,
        f: u32,
        perm: &Permutation,
        memo: &mut HashMap<u32, u32>,
    ) -> Result<u32, BddError> {
        if f <= 1 {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        self.step()?;
        self.prefault(&[f])?;
        let level = self.level(f);
        let (lo, hi) = self.cofactor_pair(f, level)?;
        let lo2 = self.replace_rebuild_rec(lo, perm, memo)?;
        let hi2 = self.replace_rebuild_rec(hi, perm, memo)?;
        let new_var = perm.apply(self.var_at_level(level));
        // `ite(var, hi2, lo2)` places the new variable at its canonical
        // level even when the permutation reorders the support.
        let var = self.mk_var(new_var)?;
        let r = self.ite(var, hi2, lo2)?;
        memo.insert(f, r);
        Ok(r)
    }
}
