//! The public BDD manager and handle types.

use crate::budget::{BddError, Budget, FailPlan};
use crate::node::{NodeId, Permutation};
use crate::ops::BinOp;
use crate::table::{Inner, KernelStats};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A shared, reference-counted BDD kernel.
///
/// All [`Bdd`] handles created from one manager share a node arena, a unique
/// table and an operation cache. The manager is cheap to clone (it is a
/// reference-counted handle). Operations between BDDs of *different*
/// managers panic.
///
/// Garbage collection runs automatically between top-level operations once
/// the arena grows large; dropped [`Bdd`] handles release their nodes for
/// the next collection, mirroring the reference-counting discipline Jedd
/// generates for BuDDy/CUDD (paper §4.2).
///
/// A [`Budget`] installed with [`BddManager::set_budget`] bounds every
/// operation; the `try_*` variants ([`Bdd::try_and`] etc.) report
/// exhaustion as a [`BddError`] while the plain methods panic on it (they
/// never fail without a budget installed).
///
/// # Examples
///
/// ```
/// use jedd_bdd::BddManager;
/// let mgr = BddManager::new(3);
/// let f = mgr.var(0).or(&mgr.var(1));
/// let g = f.and(&mgr.nvar(2));
/// assert_eq!(g.satcount(), 3.0); // 110, 010, 100 over (v0,v1,v2)
/// ```
#[derive(Clone)]
pub struct BddManager {
    pub(crate) inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("BddManager")
            .field("num_vars", &inner.num_vars())
            .field("live_nodes", &inner.live_nodes())
            .finish()
    }
}

/// Runs `op` under the installed governor with the automatic recovery
/// ladder: on a node-limit failure, collect garbage and retry; if the limit
/// fires again, run a sifting reorder and retry once more; only then fail.
/// Other failures (step limit, deadline, cancellation, injected faults) are
/// returned immediately — retrying cannot help them.
pub(crate) fn run_governed<T>(
    mgr: &Rc<RefCell<Inner>>,
    mut op: impl FnMut(&mut Inner) -> Result<T, BddError>,
) -> Result<T, BddError> {
    let mut attempt = |inner: &mut Inner| {
        inner.begin_op();
        op(inner)
    };
    // `InvalidPermutation` is a caller mistake, not resource exhaustion:
    // it is returned as-is and never counted as a budget failure.
    fn record_failure(inner: &mut Inner, e: BddError) -> BddError {
        if !matches!(e, BddError::InvalidPermutation { .. }) {
            inner.stats.budget_failures += 1;
        }
        e
    }
    let mut inner = mgr.borrow_mut();
    inner.maybe_gc();
    let e1 = match attempt(&mut inner) {
        Ok(id) => return Ok(id),
        Err(e) => e,
    };
    if !matches!(e1, BddError::NodeLimit { .. }) {
        return Err(record_failure(&mut inner, e1));
    }
    // Rung 1: a full collection may reclaim enough dead nodes. Partial
    // results of the failed attempt carry no external references, so they
    // are reclaimed here too.
    inner.stats.ladder_gc_retries += 1;
    inner.gc();
    let e2 = match attempt(&mut inner) {
        Ok(id) => return Ok(id),
        Err(e) => e,
    };
    if !matches!(e2, BddError::NodeLimit { .. }) {
        return Err(record_failure(&mut inner, e2));
    }
    // Rung 2: sifting compacts the live nodes themselves; it suspends the
    // governor internally, since compaction must be free to allocate
    // transient nodes.
    inner.stats.ladder_reorder_retries += 1;
    inner.reorder_sift();
    match attempt(&mut inner) {
        Ok(id) => Ok(id),
        Err(e) => Err(record_failure(&mut inner, e)),
    }
}

/// One entry of a serialized node table, as produced by
/// [`BddManager::export_nodes`] and consumed by
/// [`BddManager::import_nodes`].
///
/// Entries refer to each other through *slots*: slot `0` is the `FALSE`
/// terminal, slot `1` is the `TRUE` terminal, and the `i`-th exported entry
/// is slot `i + 2`. The table is children-first (topologically ordered), so
/// `low` and `high` always point at earlier slots. Nodes record their
/// *variable*, not their level position, so a table survives being reloaded
/// under the same order installed via [`BddManager::set_order`] even though
/// levels are an internal notion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExportedNode {
    /// The variable this node tests.
    pub var: u32,
    /// Slot of the low (else) child.
    pub low: u32,
    /// Slot of the high (then) child.
    pub high: u32,
}

/// Unwraps a governed result for the infallible public API. Without a
/// budget or fail plan installed, governed operations cannot fail, so the
/// plain (non-`try_`) methods only panic when the caller installed limits
/// but did not switch to the `try_*` variants.
pub(crate) fn expect_within_budget<T>(op: &'static str, r: Result<T, BddError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!(
            "BDD operation `{op}` exhausted its resource budget ({e}); \
             use the try_* variants to handle exhaustion without panicking"
        ),
    }
}

impl BddManager {
    /// Creates a manager with `num_vars` boolean variables, at levels
    /// `0..num_vars` (level order == variable order).
    pub fn new(num_vars: usize) -> BddManager {
        BddManager {
            inner: Rc::new(RefCell::new(Inner::new(num_vars as u32))),
        }
    }

    /// Creates a manager with Bryant chain reduction (TACAS 2018) enabled:
    /// nodes may carry a chain interval `[level, bot]` encoding the
    /// OR-chain `¬x_level ∧ … ∧ ¬x_{bot-1} ∧ (¬x_bot·low + x_bot·high)`,
    /// so functions whose BDDs contain long "every variable false" spines
    /// (one-hot and sparse-set encodings) store one node per spine. A
    /// chain-reduced BDD never holds more decision nodes than the plain
    /// BDD of the same function under the same order.
    ///
    /// Chain managers are *order-static*: [`BddManager::reorder_sift`] and
    /// [`BddManager::order_search`] degrade to a garbage collection.
    /// Install a learned order with [`BddManager::set_order`] before
    /// building nodes instead. Parallel apply is also disabled — chain
    /// managers always run the sequential kernel.
    pub fn new_chained(num_vars: usize) -> BddManager {
        let m = BddManager::new(num_vars);
        m.inner
            .borrow_mut()
            .set_chain_mode(true)
            .expect("fresh arena holds only terminals");
        m
    }

    /// `true` when this manager applies chain reduction (created via
    /// [`BddManager::new_chained`]).
    pub fn chain_mode(&self) -> bool {
        self.inner.borrow().chain_mode()
    }

    /// Creates a manager whose node arena is paged to disk through the
    /// buffer pool in [`crate::pager`]: at most `frames` blocks of
    /// [`crate::pager::BLOCK_NODES`] nodes are resident at once (`0` =
    /// unbounded), cold blocks are evicted to a scratch page file (under
    /// `JEDD_PAGE_DIR` when set, else the system temp dir) and faulted
    /// back transparently on access. This is the capacity lever for
    /// analyses whose live arena exceeds RAM: the governor's node budget
    /// bounds *live nodes*, the frame budget bounds *resident memory*.
    ///
    /// The determinism contract: a paged manager produces tuple-identical
    /// relations to a fully-resident one at any frame budget — in fact it
    /// allocates node ids in exactly the resident sequential order, since
    /// paged managers always run the sequential kernel (parallel apply is
    /// disabled, like chain mode). Paged managers are also order-static:
    /// [`BddManager::reorder_sift`] and [`BddManager::order_search`]
    /// degrade to a garbage collection; install a learned order with
    /// [`BddManager::set_order`] before building nodes.
    ///
    /// # Panics
    ///
    /// Panics when the page file cannot be created (use
    /// [`BddManager::try_new_paged`] to handle that as an error).
    pub fn new_paged(num_vars: usize, frames: usize) -> BddManager {
        match BddManager::try_new_paged(num_vars, frames) {
            Ok(m) => m,
            Err(e) => panic!("failed to create paged manager: {e}"),
        }
    }

    /// Fallible form of [`BddManager::new_paged`], with chain reduction
    /// selectable: `chained = true` gives a paged CBDD manager (both
    /// contracts compose — the arena is chain-reduced *and* disk-backed).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::Page`] when the page directory or file cannot
    /// be created.
    pub fn try_new_paged_full(
        num_vars: usize,
        frames: usize,
        chained: bool,
    ) -> Result<BddManager, BddError> {
        let m = BddManager::new(num_vars);
        {
            let mut inner = m.inner.borrow_mut();
            if chained {
                inner
                    .set_chain_mode(true)
                    .expect("fresh arena holds only terminals");
            }
            inner.enable_paging(frames, None)?;
        }
        Ok(m)
    }

    /// Fallible form of [`BddManager::new_paged`].
    ///
    /// # Errors
    ///
    /// Returns [`BddError::Page`] when the page directory or file cannot
    /// be created.
    pub fn try_new_paged(num_vars: usize, frames: usize) -> Result<BddManager, BddError> {
        BddManager::try_new_paged_full(num_vars, frames, false)
    }

    /// `true` when this manager pages its arena to disk (created via
    /// [`BddManager::new_paged`]).
    pub fn is_paged(&self) -> bool {
        self.inner.borrow().paged()
    }

    /// Takes the full pager error parked behind the most recent
    /// [`BddError::Page`], if any. The compact `Page` form carries only a
    /// block number and a failure-class tag; this carries the page-file
    /// path, the decode failure class, and the underlying I/O error.
    /// Clears the parked error, un-poisoning the manager.
    pub fn take_page_error(&self) -> Option<crate::pager::PageError> {
        self.inner.borrow().take_page_error()
    }

    /// Installs a deterministic pager crash-injection plan (tests only;
    /// no-op on a resident manager). See [`crate::pager::PagerFaults`].
    pub fn set_pager_faults(&self, faults: crate::pager::PagerFaults) {
        self.inner.borrow().set_pager_faults(faults);
    }

    /// The backing page file of a paged manager (`None` when resident).
    pub fn page_file(&self) -> Option<std::path::PathBuf> {
        self.inner.borrow().page_file()
    }

    /// Faults every block of `b`'s sub-DAG into the buffer pool, reporting
    /// read failures (torn pages, I/O errors) as typed errors. A no-op on
    /// a resident manager.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::Page`] on a fault-in failure; the full error is
    /// retrievable through [`BddManager::take_page_error`].
    pub fn try_page_in(&self, b: &Bdd) -> Result<(), BddError> {
        assert!(self.owns(b), "try_page_in: BDD from a different manager");
        self.inner.borrow_mut().page_in(b.id)
    }

    /// Installs a resource [`Budget`] governing all subsequent operations;
    /// `Budget::unlimited()` removes all limits.
    pub fn set_budget(&self, budget: Budget) {
        self.inner.borrow_mut().set_budget(budget);
    }

    /// The currently installed budget (unlimited by default).
    pub fn budget(&self) -> Budget {
        self.inner.borrow().budget()
    }

    /// Installs (`Some`) or removes (`None`) a deterministic
    /// fault-injection plan; the plan's event counters restart either way.
    /// Intended for tests of error paths.
    pub fn set_fail_plan(&self, plan: Option<FailPlan>) {
        self.inner.borrow_mut().set_fail_plan(plan);
    }

    /// Sets the requested worker-thread count of the parallel apply
    /// engine. `1` (the default, or the `JEDD_THREADS` environment
    /// variable) keeps every operation on the sequential path; `n >= 2`
    /// routes large top-level operations (`and`/`or`/`diff`, `exists`,
    /// `and_exists`, `replace`) and [`BddBatch`](crate::BddBatch) runs
    /// through a pool of workers; `0` means "auto" — use the hardware
    /// parallelism. The *effective* worker count is always clamped to
    /// `std::thread::available_parallelism()` (oversubscribing adds
    /// contention, never speed), and clamp events are recorded in
    /// [`KernelStats::par_thread_clamps`].
    ///
    /// The determinism contract: results are identical *functions* (and
    /// therefore identical relations/tuples) at every thread count.
    /// Node *ids* are deterministic only at `threads = 1`; parallel runs
    /// hand out fresh ids in shared-table insertion order, which depends
    /// on scheduling (see `DESIGN.md` §9).
    pub fn set_threads(&self, n: usize) {
        self.inner.borrow_mut().set_par_threads(n);
    }

    /// The resolved worker-thread count (see [`BddManager::set_threads`]):
    /// a request of `0` reads back as the hardware parallelism.
    pub fn threads(&self) -> usize {
        self.inner.borrow().par_threads()
    }

    /// Sets the parallel engagement cutoff: a top-level operation only
    /// takes the parallel path once its operands hold at least this many
    /// distinct nodes (default 8192, or `JEDD_PAR_CUTOFF`). Values are
    /// clamped to >= 2. Mostly useful for tests that want to force the
    /// parallel path on small inputs.
    pub fn set_par_cutoff(&self, nodes: usize) {
        self.inner.borrow_mut().set_par_cutoff(nodes);
    }

    /// The configured parallel engagement cutoff (node count).
    pub fn par_cutoff(&self) -> usize {
        self.inner.borrow().par_cutoff()
    }

    /// Number of variables currently allocated.
    pub fn num_vars(&self) -> usize {
        self.inner.borrow().num_vars() as usize
    }

    /// Allocates `n` additional variables at the bottom of the order and
    /// returns their level range.
    pub fn add_vars(&self, n: usize) -> std::ops::Range<u32> {
        self.inner.borrow_mut().add_vars(n as u32)
    }

    /// The constant `false` / empty-set BDD.
    pub fn constant_false(&self) -> Bdd {
        self.wrap(NodeId::FALSE.0)
    }

    /// The constant `true` / full-set BDD.
    pub fn constant_true(&self) -> Bdd {
        self.wrap(NodeId::TRUE.0)
    }

    /// The BDD testing variable `var` positively.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range, or on budget exhaustion (see
    /// [`BddManager::try_var`]).
    pub fn var(&self, var: u32) -> Bdd {
        expect_within_budget("var", self.try_var(var))
    }

    /// Budget-aware form of [`BddManager::var`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_var(&self, var: u32) -> Result<Bdd, BddError> {
        let id = run_governed(&self.inner, |inner| inner.mk_var(var))?;
        Ok(self.wrap(id))
    }

    /// The BDD testing variable `var` negatively.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range, or on budget exhaustion (see
    /// [`BddManager::try_nvar`]).
    pub fn nvar(&self, var: u32) -> Bdd {
        expect_within_budget("nvar", self.try_nvar(var))
    }

    /// Budget-aware form of [`BddManager::nvar`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_nvar(&self, var: u32) -> Result<Bdd, BddError> {
        let id = run_governed(&self.inner, |inner| inner.mk_nvar(var))?;
        Ok(self.wrap(id))
    }

    /// A positive cube (conjunction) of the given variables, used as the
    /// quantification set of [`Bdd::exists`] and [`Bdd::and_exists`].
    pub fn cube(&self, vars: &[u32]) -> Bdd {
        expect_within_budget("cube", self.try_cube(vars))
    }

    /// Budget-aware form of [`BddManager::cube`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_cube(&self, vars: &[u32]) -> Result<Bdd, BddError> {
        let id = run_governed(&self.inner, |inner| inner.mk_cube(vars))?;
        Ok(self.wrap(id))
    }

    /// Encodes `value` in binary over `bits` (most significant bit first):
    /// the conjunction of the corresponding literals.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `bits.len()` bits, or on budget
    /// exhaustion (see [`BddManager::try_encode_value`]).
    pub fn encode_value(&self, bits: &[u32], value: u64) -> Bdd {
        expect_within_budget("encode_value", self.try_encode_value(bits, value))
    }

    /// Budget-aware form of [`BddManager::encode_value`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_encode_value(&self, bits: &[u32], value: u64) -> Result<Bdd, BddError> {
        assert!(
            bits.len() >= 64 || value < (1u64 << bits.len()),
            "value {value} does not fit in {} bits",
            bits.len()
        );
        let id = run_governed(&self.inner, |inner| {
            // Build bottom-up in level order for linear-time construction.
            let mut lits: Vec<(u32, bool)> = Vec::with_capacity(bits.len());
            for (i, &b) in bits.iter().enumerate() {
                let bit_set = (value >> (bits.len() - 1 - i)) & 1 == 1;
                lits.push((inner.level_of_var(b), bit_set));
            }
            lits.sort_unstable_by_key(|&(l, _)| l);
            let mut acc = NodeId::TRUE.0;
            for &(level, pos) in lits.iter().rev() {
                acc = if pos {
                    inner.mk(level, NodeId::FALSE.0, acc)?
                } else {
                    inner.mk(level, acc, NodeId::FALSE.0)?
                };
            }
            Ok(acc)
        })?;
        Ok(self.wrap(id))
    }

    /// The BDD asserting that the bit vectors `xs` and `ys` (MSB first, same
    /// length) hold equal values: `AND_i (xs[i] <-> ys[i])`.
    ///
    /// Used for Jedd's attribute-copy operation and for select-style joins.
    pub fn equal_vectors(&self, xs: &[u32], ys: &[u32]) -> Bdd {
        expect_within_budget("equal_vectors", self.try_equal_vectors(xs, ys))
    }

    /// Budget-aware form of [`BddManager::equal_vectors`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_equal_vectors(&self, xs: &[u32], ys: &[u32]) -> Result<Bdd, BddError> {
        assert_eq!(xs.len(), ys.len(), "bit vectors must have equal length");
        let id = run_governed(&self.inner, |inner| {
            let mut acc = NodeId::TRUE.0;
            // Conjunction built from the bottom pair upward keeps
            // intermediate BDDs small when the vectors are interleaved.
            let mut pairs: Vec<(u32, u32)> = xs.iter().copied().zip(ys.iter().copied()).collect();
            pairs.sort_unstable_by_key(|&(a, b)| std::cmp::Reverse(a.max(b)));
            for (x, y) in pairs {
                let vx = inner.mk_var(x)?;
                let vy = inner.mk_var(y)?;
                let eq = inner.apply(BinOp::Biimp, vx, vy)?;
                acc = inner.apply(BinOp::And, acc, eq)?;
            }
            Ok(acc)
        })?;
        Ok(self.wrap(id))
    }

    /// The BDD containing exactly the bit strings whose value over `bits`
    /// (MSB first) is strictly less than `bound`. Used to restrict a
    /// physical domain to the valid codes of a domain whose size is not a
    /// power of two.
    pub fn less_than(&self, bits: &[u32], bound: u64) -> Bdd {
        expect_within_budget("less_than", self.try_less_than(bits, bound))
    }

    /// Budget-aware form of [`BddManager::less_than`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_less_than(&self, bits: &[u32], bound: u64) -> Result<Bdd, BddError> {
        if bits.len() < 64 && bound >= (1u64 << bits.len()) {
            return Ok(self.constant_true());
        }
        let id = run_governed(&self.inner, |inner| {
            // Standard comparator: walk MSB to LSB accumulating "already
            // less": f = OR over positions where the bound bit is 1 of
            // (prefix equal so far) AND (bit i = 0).
            let mut acc = NodeId::FALSE.0;
            let n = bits.len();
            let mut prefix_eq = NodeId::TRUE.0;
            for (i, &var) in bits.iter().enumerate() {
                let b = (bound >> (n - 1 - i)) & 1;
                if b == 1 {
                    let nv = inner.mk_nvar(var)?;
                    let t = inner.apply(BinOp::And, prefix_eq, nv)?;
                    acc = inner.apply(BinOp::Or, acc, t)?;
                    let pv = inner.mk_var(var)?;
                    prefix_eq = inner.apply(BinOp::And, prefix_eq, pv)?;
                } else {
                    let nv = inner.mk_nvar(var)?;
                    prefix_eq = inner.apply(BinOp::And, prefix_eq, nv)?;
                }
            }
            Ok(acc)
        })?;
        Ok(self.wrap(id))
    }

    /// Total number of live nodes in the arena (all BDDs, including
    /// terminals).
    pub fn live_nodes(&self) -> usize {
        self.inner.borrow().live_nodes()
    }

    /// Number of unique-table buckets (diagnostics: the table grows to
    /// keep at most 1.5 nodes per bucket).
    pub fn unique_buckets(&self) -> usize {
        self.inner.borrow().buckets_len()
    }

    /// Forces a full garbage collection and returns the number of reclaimed
    /// nodes.
    pub fn gc(&self) -> usize {
        self.inner.borrow_mut().gc()
    }

    /// Enables or disables automatic garbage collection (enabled by
    /// default). Useful in benchmarks that measure raw operation cost.
    pub fn set_gc_enabled(&self, enabled: bool) {
        self.inner.borrow_mut().gc_enabled = enabled;
    }

    /// Snapshot of kernel activity counters. For paged managers this
    /// merges the pager's counters (`page_faults`, `page_reads`,
    /// `page_writes`, `page_evictions`, `page_max_resident`) into the
    /// snapshot; resident managers report zeros there.
    pub fn kernel_stats(&self) -> KernelStats {
        self.inner.borrow().stats_snapshot()
    }

    /// Runs Rudell sifting: every variable is moved to its locally optimal
    /// level position (the dynamic-reordering facility of BuDDy/CUDD; the
    /// paper's §4.3 profiler exists to guide this tuning by hand).
    ///
    /// Returns `(nodes_before, nodes_after)`. All existing [`Bdd`] handles
    /// remain valid and keep denoting the same boolean functions over the
    /// same variables; only the internal level ordering changes.
    ///
    /// This is an expensive, stop-the-world operation — call it between
    /// analysis phases, not inside hot loops. It is exempt from any
    /// installed budget: compaction must be free to allocate.
    pub fn reorder_sift(&self) -> (usize, usize) {
        self.inner.borrow_mut().reorder_sift()
    }

    /// Offline order search beyond sifting: a sift + window-3 permutation
    /// baseline, then `restarts` rounds that shuffle the profiled hot
    /// level range (the levels where `mk` allocates most, per
    /// [`KernelStats::level_activity`]) and re-optimise, parking on the
    /// best order seen. Deterministic for a given `seed` and arena
    /// content. Returns `(nodes_before, nodes_after)`.
    ///
    /// This is the expensive end of the reorder spectrum — intended for
    /// an offline "order lab" whose result is persisted and replayed via
    /// [`BddManager::set_order`] on later runs, not for use inside
    /// analyses. On a chain-reduced manager it degrades to a collection
    /// (chain managers are order-static).
    pub fn order_search(&self, restarts: usize, seed: u64) -> (usize, usize) {
        self.inner.borrow_mut().order_search(restarts, seed)
    }

    /// The current variable order: the variable at each level position,
    /// top to bottom.
    pub fn current_order(&self) -> Vec<u32> {
        self.inner.borrow().level2var.clone()
    }

    /// The level position currently holding `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn level_of_var(&self, var: u32) -> u32 {
        self.inner.borrow().level_of_var(var)
    }

    /// Returns `true` if `a` and `b` were created by this manager.
    pub fn owns(&self, b: &Bdd) -> bool {
        Rc::ptr_eq(&self.inner, &b.mgr)
    }

    /// Installs a saved variable order wholesale (level position -> variable,
    /// top to bottom), the restore-side counterpart of
    /// [`BddManager::current_order`].
    ///
    /// Unlike [`BddManager::reorder_sift`], which migrates live nodes, this
    /// simply *declares* the order, so it is only legal while the arena
    /// holds nothing but the two terminals — in practice: on a fresh
    /// manager, after [`BddManager::add_vars`] and before any node is
    /// created. Snapshot restore uses it to reproduce the exact level
    /// layout a node table was exported under, which is what makes
    /// re-imported tables node-id-identical.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::InvalidImport`] if internal nodes already exist,
    /// the length does not match the variable count, or the order is not a
    /// permutation of the variables.
    pub fn set_order(&self, level2var: &[u32]) -> Result<(), BddError> {
        self.inner.borrow_mut().set_order(level2var)
    }

    /// Serializes the sub-DAGs under `roots` as a children-first node
    /// table plus the slot of each root, the dddmp-style interchange shape
    /// consumed by [`BddManager::import_nodes`].
    ///
    /// The traversal order is deterministic for a given root list, and
    /// shared structure is exported once, so the table size is the number
    /// of distinct internal nodes under all roots.
    ///
    /// # Panics
    ///
    /// Panics if any root belongs to a different manager.
    pub fn export_nodes(&self, roots: &[&Bdd]) -> (Vec<ExportedNode>, Vec<u32>) {
        for b in roots {
            assert!(self.owns(b), "export_nodes: root from a different manager");
        }
        let inner = self.inner.borrow();
        let mut slot: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        slot.insert(0, 0);
        slot.insert(1, 1);
        let mut out: Vec<ExportedNode> = Vec::new();
        let mut stack: Vec<(u32, bool)> = Vec::new();
        for b in roots {
            stack.push((b.id, false));
            while let Some((id, expanded)) = stack.pop() {
                if slot.contains_key(&id) {
                    continue;
                }
                let (low, high) = (inner.low(id), inner.high(id));
                if expanded {
                    // A chain node expands to its plain spine: the decision
                    // node at `bot`, then one `(next, FALSE)` node per chain
                    // level walking back up to `level`. Plain nodes have an
                    // empty interval and emit exactly one entry, so plain
                    // managers export byte-identical tables. The id maps to
                    // the topmost spine slot.
                    let top = inner.level(id);
                    let bot = inner.bot(id);
                    out.push(ExportedNode {
                        var: inner.var_at_level(bot),
                        low: slot[&low],
                        high: slot[&high],
                    });
                    let mut acc = out.len() as u32 + 1;
                    for l in (top..bot).rev() {
                        out.push(ExportedNode {
                            var: inner.var_at_level(l),
                            low: acc,
                            high: 0,
                        });
                        acc = out.len() as u32 + 1;
                    }
                    slot.insert(id, acc);
                } else {
                    stack.push((id, true));
                    stack.push((high, false));
                    stack.push((low, false));
                }
            }
        }
        let root_slots = roots.iter().map(|b| slot[&b.id]).collect();
        (out, root_slots)
    }

    /// Rebuilds the BDDs described by a node table from
    /// [`BddManager::export_nodes`], returning a handle per root slot.
    ///
    /// Every entry is re-interned through the unique table, so importing
    /// reconstructs hash-consing: importing the same table twice yields
    /// identical handles, and importing into a *fresh* manager carrying the
    /// same variable order (see [`BddManager::set_order`]) assigns the same
    /// node ids on every run.
    ///
    /// The whole table is validated before the first node is created, so a
    /// rejected import leaves the arena untouched.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::InvalidImport`] when the table is malformed
    /// (variable out of range, forward or self reference, level order
    /// violated, unreduced entry, root slot out of range), or any governed
    /// error ([`BddError::NodeLimit`] etc.) if a budget or fail plan is
    /// installed and fires during reconstruction.
    pub fn import_nodes(
        &self,
        nodes: &[ExportedNode],
        roots: &[u32],
    ) -> Result<Vec<Bdd>, BddError> {
        const TERMINAL: u32 = u32::MAX;
        {
            let inner = self.inner.borrow();
            let num_vars = inner.num_vars();
            let mut levels: Vec<u32> = Vec::with_capacity(nodes.len());
            for (i, n) in nodes.iter().enumerate() {
                let index = i as u32;
                if n.var >= num_vars {
                    return Err(BddError::InvalidImport {
                        index,
                        reason: "variable out of range",
                    });
                }
                let level = inner.level_of_var(n.var);
                for child in [n.low, n.high] {
                    if child as usize >= i + 2 {
                        return Err(BddError::InvalidImport {
                            index,
                            reason: "child slot is not an earlier entry",
                        });
                    }
                    let child_level = if child < 2 {
                        TERMINAL
                    } else {
                        levels[child as usize - 2]
                    };
                    if level >= child_level {
                        return Err(BddError::InvalidImport {
                            index,
                            reason: "child does not sit below its parent in the order",
                        });
                    }
                }
                if n.low == n.high {
                    return Err(BddError::InvalidImport {
                        index,
                        reason: "unreduced entry (equal children)",
                    });
                }
                levels.push(level);
            }
            for (i, &r) in roots.iter().enumerate() {
                if r as usize >= nodes.len() + 2 {
                    return Err(BddError::InvalidImport {
                        index: i as u32,
                        reason: "root slot out of range",
                    });
                }
            }
        }
        // Reconstruction runs as one governed operation: a fail plan or
        // budget can interrupt it exactly like any other kernel op, and the
        // recovery ladder may retry it wholesale (nodes from the failed
        // attempt carry no external references, so the ladder's GC reclaims
        // them before the retry re-interns from scratch).
        let mut ids: Vec<u32> = Vec::with_capacity(nodes.len() + 2);
        run_governed(&self.inner, |inner| {
            ids.clear();
            ids.push(0);
            ids.push(1);
            for n in nodes {
                let level = inner.level_of_var(n.var);
                let low = ids[n.low as usize];
                let high = ids[n.high as usize];
                let id = inner.mk(level, low, high)?;
                ids.push(id);
            }
            Ok(0)
        })?;
        Ok(roots.iter().map(|&r| self.wrap(ids[r as usize])).collect())
    }

    pub(crate) fn wrap(&self, id: u32) -> Bdd {
        self.inner.borrow_mut().inc_ref(id);
        Bdd {
            mgr: Rc::clone(&self.inner),
            id,
        }
    }
}

/// A handle to a BDD node, keeping the node (and everything it reaches)
/// alive until dropped.
///
/// Cloning a `Bdd` is cheap (a refcount bump). Equality compares the
/// canonical node identity, so it is constant time — the property the paper
/// relies on for relation comparison (§2.2.1).
pub struct Bdd {
    pub(crate) mgr: Rc<RefCell<Inner>>,
    pub(crate) id: u32,
}

impl Clone for Bdd {
    fn clone(&self) -> Bdd {
        self.mgr.borrow_mut().inc_ref(self.id);
        Bdd {
            mgr: Rc::clone(&self.mgr),
            id: self.id,
        }
    }
}

impl Drop for Bdd {
    fn drop(&mut self) {
        self.mgr.borrow_mut().dec_ref(self.id);
    }
}

impl PartialEq for Bdd {
    fn eq(&self, other: &Bdd) -> bool {
        Rc::ptr_eq(&self.mgr, &other.mgr) && self.id == other.id
    }
}

impl Eq for Bdd {}

impl std::hash::Hash for Bdd {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bdd")
            .field("id", &self.id)
            .field("nodes", &self.node_count())
            .finish()
    }
}

impl Bdd {
    fn check_same_mgr(&self, other: &Bdd) {
        assert!(
            Rc::ptr_eq(&self.mgr, &other.mgr),
            "BDD operands belong to different managers"
        );
    }

    fn try_binop(&self, other: &Bdd, op: BinOp) -> Result<Bdd, BddError> {
        self.check_same_mgr(other);
        let id = run_governed(&self.mgr, |inner| inner.apply(op, self.id, other.id))?;
        Ok(self.wrap(id))
    }

    pub(crate) fn wrap(&self, id: u32) -> Bdd {
        self.mgr.borrow_mut().inc_ref(id);
        Bdd {
            mgr: Rc::clone(&self.mgr),
            id,
        }
    }

    /// The manager this BDD belongs to.
    pub fn manager(&self) -> BddManager {
        BddManager {
            inner: Rc::clone(&self.mgr),
        }
    }

    /// Conjunction (set intersection).
    pub fn and(&self, other: &Bdd) -> Bdd {
        expect_within_budget("and", self.try_and(other))
    }

    /// Budget-aware conjunction; see [`Bdd::and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] when an installed budget, deadline,
    /// cancellation token or fail plan interrupts the operation, after the
    /// recovery ladder (GC retry, then reorder retry) has been exhausted.
    pub fn try_and(&self, other: &Bdd) -> Result<Bdd, BddError> {
        self.try_binop(other, BinOp::And)
    }

    /// Disjunction (set union).
    pub fn or(&self, other: &Bdd) -> Bdd {
        expect_within_budget("or", self.try_or(other))
    }

    /// Budget-aware disjunction; see [`Bdd::or`] and [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_or(&self, other: &Bdd) -> Result<Bdd, BddError> {
        self.try_binop(other, BinOp::Or)
    }

    /// Difference `self & !other` (set difference).
    pub fn diff(&self, other: &Bdd) -> Bdd {
        expect_within_budget("diff", self.try_diff(other))
    }

    /// Budget-aware difference; see [`Bdd::diff`] and [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_diff(&self, other: &Bdd) -> Result<Bdd, BddError> {
        self.try_binop(other, BinOp::Diff)
    }

    /// Exclusive or (symmetric difference).
    pub fn xor(&self, other: &Bdd) -> Bdd {
        expect_within_budget("xor", self.try_xor(other))
    }

    /// Budget-aware exclusive or; see [`Bdd::xor`] and [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_xor(&self, other: &Bdd) -> Result<Bdd, BddError> {
        self.try_binop(other, BinOp::Xor)
    }

    /// Biimplication `self <-> other`.
    pub fn biimp(&self, other: &Bdd) -> Bdd {
        expect_within_budget("biimp", self.try_biimp(other))
    }

    /// Budget-aware biimplication; see [`Bdd::biimp`] and [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_biimp(&self, other: &Bdd) -> Result<Bdd, BddError> {
        self.try_binop(other, BinOp::Biimp)
    }

    /// Implication `self -> other`.
    pub fn implies(&self, other: &Bdd) -> Bdd {
        expect_within_budget("implies", self.try_implies(other))
    }

    /// Budget-aware implication; see [`Bdd::implies`] and [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_implies(&self, other: &Bdd) -> Result<Bdd, BddError> {
        self.try_not()?.try_or(other)
    }

    /// Negation (set complement).
    pub fn not(&self) -> Bdd {
        expect_within_budget("not", self.try_not())
    }

    /// Budget-aware negation; see [`Bdd::not`] and [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_not(&self) -> Result<Bdd, BddError> {
        let id = run_governed(&self.mgr, |inner| inner.not(self.id))?;
        Ok(self.wrap(id))
    }

    /// If-then-else `self ? g : h`.
    pub fn ite(&self, g: &Bdd, h: &Bdd) -> Bdd {
        expect_within_budget("ite", self.try_ite(g, h))
    }

    /// Budget-aware if-then-else; see [`Bdd::ite`] and [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_ite(&self, g: &Bdd, h: &Bdd) -> Result<Bdd, BddError> {
        self.check_same_mgr(g);
        self.check_same_mgr(h);
        let id = run_governed(&self.mgr, |inner| inner.ite(self.id, g.id, h.id))?;
        Ok(self.wrap(id))
    }

    /// Existential quantification over the variables of the positive cube
    /// `cube` (build one with [`BddManager::cube`]).
    pub fn exists(&self, cube: &Bdd) -> Bdd {
        expect_within_budget("exists", self.try_exists(cube))
    }

    /// Budget-aware existential quantification; see [`Bdd::exists`] and
    /// [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_exists(&self, cube: &Bdd) -> Result<Bdd, BddError> {
        self.check_same_mgr(cube);
        let id = run_governed(&self.mgr, |inner| inner.exists(self.id, cube.id))?;
        Ok(self.wrap(id))
    }

    /// Universal quantification over the variables of `cube`.
    pub fn forall(&self, cube: &Bdd) -> Bdd {
        expect_within_budget("forall", self.try_forall(cube))
    }

    /// Budget-aware universal quantification; see [`Bdd::forall`] and
    /// [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_forall(&self, cube: &Bdd) -> Result<Bdd, BddError> {
        self.check_same_mgr(cube);
        let id = run_governed(&self.mgr, |inner| inner.forall(self.id, cube.id))?;
        Ok(self.wrap(id))
    }

    /// Fused relational product `exists cube. (self & other)` — the
    /// primitive behind Jedd's composition operator.
    pub fn and_exists(&self, other: &Bdd, cube: &Bdd) -> Bdd {
        expect_within_budget("and_exists", self.try_and_exists(other, cube))
    }

    /// Budget-aware relational product; see [`Bdd::and_exists`] and
    /// [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_and_exists(&self, other: &Bdd, cube: &Bdd) -> Result<Bdd, BddError> {
        self.check_same_mgr(other);
        self.check_same_mgr(cube);
        let id = run_governed(&self.mgr, |inner| {
            inner.and_exists(self.id, other.id, cube.id)
        })?;
        Ok(self.wrap(id))
    }

    /// Set containment `self ⊆ other` (boolean implication), decided by a
    /// cached recursion that only ever returns terminals — no result BDD is
    /// materialised, so probing a frontier for emptiness allocates nothing.
    /// This is the kernel assist behind the semi-naive fixpoint engine's
    /// frontier checks.
    pub fn is_subset(&self, other: &Bdd) -> bool {
        expect_within_budget("is_subset", self.try_is_subset(other))
    }

    /// Budget-aware containment probe; see [`Bdd::is_subset`] and
    /// [`Bdd::try_and`].
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_is_subset(&self, other: &Bdd) -> Result<bool, BddError> {
        self.check_same_mgr(other);
        let id = run_governed(&self.mgr, |inner| {
            inner
                .subset(self.id, other.id)
                .map(|r| if r { NodeId::TRUE.0 } else { NodeId::FALSE.0 })
        })?;
        Ok(id == NodeId::TRUE.0)
    }

    /// `true` when `self \ other` is empty, without building the
    /// difference. Equivalent to [`Bdd::try_is_subset`]; named for the
    /// delta-fixpoint use site where the question is "did this rule derive
    /// anything new?".
    ///
    /// # Errors
    ///
    /// Returns a [`BddError`] on budget exhaustion or injected faults.
    pub fn try_diff_is_empty(&self, other: &Bdd) -> Result<bool, BddError> {
        self.try_is_subset(other)
    }

    /// Variable replacement (BuDDy `replace`, CUDD `SwapVariables`):
    /// rewrites this BDD under the given variable permutation.
    ///
    /// # Panics
    ///
    /// Panics if the permutation is not injective on the support of `self`
    /// or maps outside the variable range ([`Bdd::try_replace`] reports
    /// the same conditions as [`BddError::InvalidPermutation`] instead),
    /// or on budget exhaustion.
    pub fn replace(&self, perm: &Permutation) -> Bdd {
        match self.try_replace(perm) {
            Err(e @ BddError::InvalidPermutation { .. }) => panic!("replace: {e}"),
            r => expect_within_budget("replace", r),
        }
    }

    /// Budget-aware variable replacement; see [`Bdd::replace`] and
    /// [`Bdd::try_and`]. Never panics on a malformed permutation.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::InvalidPermutation`] if the permutation is not
    /// injective on the support of `self` or maps outside the variable
    /// range; other [`BddError`] variants on budget exhaustion or injected
    /// faults.
    pub fn try_replace(&self, perm: &Permutation) -> Result<Bdd, BddError> {
        let id = run_governed(&self.mgr, |inner| inner.replace(self.id, perm))?;
        Ok(self.wrap(id))
    }

    /// Reference implementation of [`Bdd::replace`]: rebuilds every node
    /// with a 3-operand `ite` under a per-call memo table, bypassing the
    /// shared operation cache. Kept as the correctness oracle for the
    /// property tests and the baseline the `replace_cost` bench compares
    /// the first-class replace recursion against.
    ///
    /// # Errors
    ///
    /// Same contract as [`Bdd::try_replace`].
    pub fn try_replace_rebuild(&self, perm: &Permutation) -> Result<Bdd, BddError> {
        let id = run_governed(&self.mgr, |inner| inner.replace_rebuild(self.id, perm))?;
        Ok(self.wrap(id))
    }

    /// Number of satisfying assignments over all manager variables.
    pub fn satcount(&self) -> f64 {
        self.mgr.borrow().satcount(self.id)
    }

    /// Number of satisfying assignments counting only the given variables
    /// (which must include the support).
    pub fn satcount_over(&self, vars: &[u32]) -> f64 {
        self.mgr.borrow().satcount_over(self.id, vars)
    }

    /// Number of decision nodes in this BDD (terminals excluded).
    pub fn node_count(&self) -> usize {
        self.mgr.borrow().node_count(self.id)
    }

    /// The canonical root node id inside this BDD's manager.
    ///
    /// Ids are arena indices, so they are only comparable between BDDs of
    /// the same manager — except that two single-threaded managers fed the
    /// identical operation sequence allocate identically, which is how the
    /// paged-vs-resident tests check that paging never perturbs structure.
    pub fn root_id(&self) -> u32 {
        self.id
    }

    /// Nodes per level — the "shape" plotted by the Jedd profiler (§4.3).
    pub fn shape(&self) -> Vec<usize> {
        self.mgr.borrow().shape(self.id)
    }

    /// The sorted set of variables this BDD depends on.
    pub fn support(&self) -> Vec<u32> {
        self.mgr.borrow().support(self.id)
    }

    /// `true` if this is the constant false/empty BDD (`0B` in Jedd).
    pub fn is_false(&self) -> bool {
        self.id == NodeId::FALSE.0
    }

    /// `true` if this is the constant true/full BDD (`1B` in Jedd).
    pub fn is_true(&self) -> bool {
        self.id == NodeId::TRUE.0
    }

    /// Enumerates satisfying assignments over exactly `vars` (sorted); see
    /// the relation iterators in `jedd-core` for the high-level version.
    /// The callback returns `false` to stop early.
    ///
    /// # Panics
    ///
    /// Panics if the support is not contained in `vars`.
    pub fn foreach_sat(&self, vars: &[u32], mut cb: impl FnMut(&[bool]) -> bool) {
        self.mgr.borrow().foreach_sat(self.id, vars, &mut cb);
    }

    /// Collects all satisfying assignments over `vars` as bit vectors.
    /// Intended for tests and small relations.
    pub fn sat_assignments(&self, vars: &[u32]) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        self.foreach_sat(vars, |a| {
            out.push(a.to_vec());
            true
        });
        out
    }

    /// The raw node id, for diagnostics and tests.
    pub fn raw_id(&self) -> NodeId {
        NodeId(self.id)
    }
}
