//! The public BDD manager and handle types.

use crate::node::{NodeId, Permutation};
use crate::ops::BinOp;
use crate::table::{Inner, KernelStats};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A shared, reference-counted BDD kernel.
///
/// All [`Bdd`] handles created from one manager share a node arena, a unique
/// table and an operation cache. The manager is cheap to clone (it is a
/// reference-counted handle). Operations between BDDs of *different*
/// managers panic.
///
/// Garbage collection runs automatically between top-level operations once
/// the arena grows large; dropped [`Bdd`] handles release their nodes for
/// the next collection, mirroring the reference-counting discipline Jedd
/// generates for BuDDy/CUDD (paper §4.2).
///
/// # Examples
///
/// ```
/// use jedd_bdd::BddManager;
/// let mgr = BddManager::new(3);
/// let f = mgr.var(0).or(&mgr.var(1));
/// let g = f.and(&mgr.nvar(2));
/// assert_eq!(g.satcount(), 3.0); // 110, 010, 100 over (v0,v1,v2)
/// ```
#[derive(Clone)]
pub struct BddManager {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("BddManager")
            .field("num_vars", &inner.num_vars())
            .field("live_nodes", &inner.live_nodes())
            .finish()
    }
}

impl BddManager {
    /// Creates a manager with `num_vars` boolean variables, at levels
    /// `0..num_vars` (level order == variable order).
    pub fn new(num_vars: usize) -> BddManager {
        BddManager {
            inner: Rc::new(RefCell::new(Inner::new(num_vars as u32))),
        }
    }

    /// Number of variables currently allocated.
    pub fn num_vars(&self) -> usize {
        self.inner.borrow().num_vars() as usize
    }

    /// Allocates `n` additional variables at the bottom of the order and
    /// returns their level range.
    pub fn add_vars(&self, n: usize) -> std::ops::Range<u32> {
        self.inner.borrow_mut().add_vars(n as u32)
    }

    /// The constant `false` / empty-set BDD.
    pub fn constant_false(&self) -> Bdd {
        self.wrap(NodeId::FALSE.0)
    }

    /// The constant `true` / full-set BDD.
    pub fn constant_true(&self) -> Bdd {
        self.wrap(NodeId::TRUE.0)
    }

    /// The BDD testing variable `var` positively.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var(&self, var: u32) -> Bdd {
        let id = self.inner.borrow_mut().mk_var(var);
        self.wrap(id)
    }

    /// The BDD testing variable `var` negatively.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn nvar(&self, var: u32) -> Bdd {
        let id = self.inner.borrow_mut().mk_nvar(var);
        self.wrap(id)
    }

    /// A positive cube (conjunction) of the given variables, used as the
    /// quantification set of [`Bdd::exists`] and [`Bdd::and_exists`].
    pub fn cube(&self, vars: &[u32]) -> Bdd {
        let id = self.inner.borrow_mut().mk_cube(vars);
        self.wrap(id)
    }

    /// Encodes `value` in binary over `bits` (most significant bit first):
    /// the conjunction of the corresponding literals.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `bits.len()` bits.
    pub fn encode_value(&self, bits: &[u32], value: u64) -> Bdd {
        assert!(
            bits.len() >= 64 || value < (1u64 << bits.len()),
            "value {value} does not fit in {} bits",
            bits.len()
        );
        let mut inner = self.inner.borrow_mut();
        inner.maybe_gc();
        // Build bottom-up in level order for linear-time construction.
        let mut lits: Vec<(u32, bool)> = Vec::with_capacity(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            let bit_set = (value >> (bits.len() - 1 - i)) & 1 == 1;
            lits.push((inner.level_of_var(b), bit_set));
        }
        lits.sort_unstable_by_key(|&(l, _)| l);
        let mut acc = NodeId::TRUE.0;
        for &(level, pos) in lits.iter().rev() {
            acc = if pos {
                inner.mk(level, NodeId::FALSE.0, acc)
            } else {
                inner.mk(level, acc, NodeId::FALSE.0)
            };
        }
        drop(inner);
        self.wrap(acc)
    }

    /// The BDD asserting that the bit vectors `xs` and `ys` (MSB first, same
    /// length) hold equal values: `AND_i (xs[i] <-> ys[i])`.
    ///
    /// Used for Jedd's attribute-copy operation and for select-style joins.
    pub fn equal_vectors(&self, xs: &[u32], ys: &[u32]) -> Bdd {
        assert_eq!(xs.len(), ys.len(), "bit vectors must have equal length");
        let mut inner = self.inner.borrow_mut();
        inner.maybe_gc();
        let mut acc = NodeId::TRUE.0;
        // Conjunction built from the bottom pair upward keeps intermediate
        // BDDs small when the vectors are interleaved.
        let mut pairs: Vec<(u32, u32)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        pairs.sort_unstable_by_key(|&(a, b)| std::cmp::Reverse(a.max(b)));
        for (x, y) in pairs {
            let vx = inner.mk_var(x);
            let vy = inner.mk_var(y);
            let eq = inner.apply(BinOp::Biimp, vx, vy);
            acc = inner.apply(BinOp::And, acc, eq);
        }
        drop(inner);
        self.wrap(acc)
    }

    /// The BDD containing exactly the bit strings whose value over `bits`
    /// (MSB first) is strictly less than `bound`. Used to restrict a
    /// physical domain to the valid codes of a domain whose size is not a
    /// power of two.
    pub fn less_than(&self, bits: &[u32], bound: u64) -> Bdd {
        if bits.len() < 64 && bound >= (1u64 << bits.len()) {
            return self.constant_true();
        }
        let mut inner = self.inner.borrow_mut();
        inner.maybe_gc();
        // Standard comparator: walk MSB to LSB accumulating "already less".
        let mut acc = NodeId::FALSE.0; // strings equal so far that are < bound: none yet
        // Process LSB first building a function eq_suffix -> handled
        // iteratively instead: f = OR over positions where bound bit is 1 of
        // (prefix equal so far) AND (bit i = 0).
        let n = bits.len();
        let mut prefix_eq = NodeId::TRUE.0;
        for i in 0..n {
            let b = (bound >> (n - 1 - i)) & 1;
            let var = bits[i];
            if b == 1 {
                let nv = inner.mk_nvar(var);
                let t = inner.apply(BinOp::And, prefix_eq, nv);
                acc = inner.apply(BinOp::Or, acc, t);
                let pv = inner.mk_var(var);
                prefix_eq = inner.apply(BinOp::And, prefix_eq, pv);
            } else {
                let nv = inner.mk_nvar(var);
                prefix_eq = inner.apply(BinOp::And, prefix_eq, nv);
            }
        }
        drop(inner);
        self.wrap(acc)
    }

    /// Total number of live nodes in the arena (all BDDs, including
    /// terminals).
    pub fn live_nodes(&self) -> usize {
        self.inner.borrow().live_nodes()
    }

    /// Forces a full garbage collection and returns the number of reclaimed
    /// nodes.
    pub fn gc(&self) -> usize {
        self.inner.borrow_mut().gc()
    }

    /// Enables or disables automatic garbage collection (enabled by
    /// default). Useful in benchmarks that measure raw operation cost.
    pub fn set_gc_enabled(&self, enabled: bool) {
        self.inner.borrow_mut().gc_enabled = enabled;
    }

    /// Snapshot of kernel activity counters.
    pub fn kernel_stats(&self) -> KernelStats {
        self.inner.borrow().stats
    }

    /// Runs Rudell sifting: every variable is moved to its locally optimal
    /// level position (the dynamic-reordering facility of BuDDy/CUDD; the
    /// paper's §4.3 profiler exists to guide this tuning by hand).
    ///
    /// Returns `(nodes_before, nodes_after)`. All existing [`Bdd`] handles
    /// remain valid and keep denoting the same boolean functions over the
    /// same variables; only the internal level ordering changes.
    ///
    /// This is an expensive, stop-the-world operation — call it between
    /// analysis phases, not inside hot loops.
    pub fn reorder_sift(&self) -> (usize, usize) {
        self.inner.borrow_mut().reorder_sift()
    }

    /// The current variable order: the variable at each level position,
    /// top to bottom.
    pub fn current_order(&self) -> Vec<u32> {
        self.inner.borrow().level2var.clone()
    }

    /// The level position currently holding `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn level_of_var(&self, var: u32) -> u32 {
        self.inner.borrow().level_of_var(var)
    }

    /// Returns `true` if `a` and `b` were created by this manager.
    pub fn owns(&self, b: &Bdd) -> bool {
        Rc::ptr_eq(&self.inner, &b.mgr)
    }

    pub(crate) fn wrap(&self, id: u32) -> Bdd {
        self.inner.borrow_mut().inc_ref(id);
        Bdd {
            mgr: Rc::clone(&self.inner),
            id,
        }
    }
}

/// A handle to a BDD node, keeping the node (and everything it reaches)
/// alive until dropped.
///
/// Cloning a `Bdd` is cheap (a refcount bump). Equality compares the
/// canonical node identity, so it is constant time — the property the paper
/// relies on for relation comparison (§2.2.1).
pub struct Bdd {
    pub(crate) mgr: Rc<RefCell<Inner>>,
    pub(crate) id: u32,
}

impl Clone for Bdd {
    fn clone(&self) -> Bdd {
        self.mgr.borrow_mut().inc_ref(self.id);
        Bdd {
            mgr: Rc::clone(&self.mgr),
            id: self.id,
        }
    }
}

impl Drop for Bdd {
    fn drop(&mut self) {
        self.mgr.borrow_mut().dec_ref(self.id);
    }
}

impl PartialEq for Bdd {
    fn eq(&self, other: &Bdd) -> bool {
        Rc::ptr_eq(&self.mgr, &other.mgr) && self.id == other.id
    }
}

impl Eq for Bdd {}

impl std::hash::Hash for Bdd {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bdd")
            .field("id", &self.id)
            .field("nodes", &self.node_count())
            .finish()
    }
}

impl Bdd {
    fn check_same_mgr(&self, other: &Bdd) {
        assert!(
            Rc::ptr_eq(&self.mgr, &other.mgr),
            "BDD operands belong to different managers"
        );
    }

    fn binop(&self, other: &Bdd, op: BinOp) -> Bdd {
        self.check_same_mgr(other);
        let id = {
            let mut inner = self.mgr.borrow_mut();
            inner.maybe_gc();
            inner.apply(op, self.id, other.id)
        };
        self.wrap(id)
    }

    pub(crate) fn wrap(&self, id: u32) -> Bdd {
        self.mgr.borrow_mut().inc_ref(id);
        Bdd {
            mgr: Rc::clone(&self.mgr),
            id,
        }
    }

    /// The manager this BDD belongs to.
    pub fn manager(&self) -> BddManager {
        BddManager {
            inner: Rc::clone(&self.mgr),
        }
    }

    /// Conjunction (set intersection).
    pub fn and(&self, other: &Bdd) -> Bdd {
        self.binop(other, BinOp::And)
    }

    /// Disjunction (set union).
    pub fn or(&self, other: &Bdd) -> Bdd {
        self.binop(other, BinOp::Or)
    }

    /// Difference `self & !other` (set difference).
    pub fn diff(&self, other: &Bdd) -> Bdd {
        self.binop(other, BinOp::Diff)
    }

    /// Exclusive or (symmetric difference).
    pub fn xor(&self, other: &Bdd) -> Bdd {
        self.binop(other, BinOp::Xor)
    }

    /// Biimplication `self <-> other`.
    pub fn biimp(&self, other: &Bdd) -> Bdd {
        self.binop(other, BinOp::Biimp)
    }

    /// Implication `self -> other`.
    pub fn implies(&self, other: &Bdd) -> Bdd {
        self.not().or(other)
    }

    /// Negation (set complement).
    pub fn not(&self) -> Bdd {
        let id = {
            let mut inner = self.mgr.borrow_mut();
            inner.maybe_gc();
            inner.not(self.id)
        };
        self.wrap(id)
    }

    /// If-then-else `self ? g : h`.
    pub fn ite(&self, g: &Bdd, h: &Bdd) -> Bdd {
        self.check_same_mgr(g);
        self.check_same_mgr(h);
        let id = {
            let mut inner = self.mgr.borrow_mut();
            inner.maybe_gc();
            inner.ite(self.id, g.id, h.id)
        };
        self.wrap(id)
    }

    /// Existential quantification over the variables of the positive cube
    /// `cube` (build one with [`BddManager::cube`]).
    pub fn exists(&self, cube: &Bdd) -> Bdd {
        self.check_same_mgr(cube);
        let id = {
            let mut inner = self.mgr.borrow_mut();
            inner.maybe_gc();
            inner.exists(self.id, cube.id)
        };
        self.wrap(id)
    }

    /// Universal quantification over the variables of `cube`.
    pub fn forall(&self, cube: &Bdd) -> Bdd {
        self.check_same_mgr(cube);
        let id = {
            let mut inner = self.mgr.borrow_mut();
            inner.maybe_gc();
            inner.forall(self.id, cube.id)
        };
        self.wrap(id)
    }

    /// Fused relational product `exists cube. (self & other)` — the
    /// primitive behind Jedd's composition operator.
    pub fn and_exists(&self, other: &Bdd, cube: &Bdd) -> Bdd {
        self.check_same_mgr(other);
        self.check_same_mgr(cube);
        let id = {
            let mut inner = self.mgr.borrow_mut();
            inner.maybe_gc();
            inner.and_exists(self.id, other.id, cube.id)
        };
        self.wrap(id)
    }

    /// Variable replacement (BuDDy `replace`, CUDD `SwapVariables`):
    /// rewrites this BDD under the given variable permutation.
    ///
    /// # Panics
    ///
    /// Panics if the permutation is not injective on the support of `self`
    /// or maps outside the variable range.
    pub fn replace(&self, perm: &Permutation) -> Bdd {
        let id = {
            let mut inner = self.mgr.borrow_mut();
            inner.maybe_gc();
            inner.replace(self.id, perm)
        };
        self.wrap(id)
    }

    /// Number of satisfying assignments over all manager variables.
    pub fn satcount(&self) -> f64 {
        self.mgr.borrow().satcount(self.id)
    }

    /// Number of satisfying assignments counting only the given variables
    /// (which must include the support).
    pub fn satcount_over(&self, vars: &[u32]) -> f64 {
        self.mgr.borrow().satcount_over(self.id, vars)
    }

    /// Number of decision nodes in this BDD (terminals excluded).
    pub fn node_count(&self) -> usize {
        self.mgr.borrow().node_count(self.id)
    }

    /// Nodes per level — the "shape" plotted by the Jedd profiler (§4.3).
    pub fn shape(&self) -> Vec<usize> {
        self.mgr.borrow().shape(self.id)
    }

    /// The sorted set of variables this BDD depends on.
    pub fn support(&self) -> Vec<u32> {
        self.mgr.borrow().support(self.id)
    }

    /// `true` if this is the constant false/empty BDD (`0B` in Jedd).
    pub fn is_false(&self) -> bool {
        self.id == NodeId::FALSE.0
    }

    /// `true` if this is the constant true/full BDD (`1B` in Jedd).
    pub fn is_true(&self) -> bool {
        self.id == NodeId::TRUE.0
    }

    /// Enumerates satisfying assignments over exactly `vars` (sorted); see
    /// the relation iterators in `jedd-core` for the high-level version.
    /// The callback returns `false` to stop early.
    ///
    /// # Panics
    ///
    /// Panics if the support is not contained in `vars`.
    pub fn foreach_sat(&self, vars: &[u32], mut cb: impl FnMut(&[bool]) -> bool) {
        self.mgr.borrow().foreach_sat(self.id, vars, &mut cb);
    }

    /// Collects all satisfying assignments over `vars` as bit vectors.
    /// Intended for tests and small relations.
    pub fn sat_assignments(&self, vars: &[u32]) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        self.foreach_sat(vars, |a| {
            out.push(a.to_vec());
            true
        });
        out
    }

    /// The raw node id, for diagnostics and tests.
    pub fn raw_id(&self) -> NodeId {
        NodeId(self.id)
    }
}
