//! Dynamic variable reordering by sifting (Rudell's algorithm) — the
//! BuDDy/CUDD facility behind the paper's §4.3 concern that "the ordering
//! of bits in a BDD determines its size".
//!
//! Each variable in turn is moved through every level position by
//! adjacent-level swaps; it is parked at the position minimising the total
//! live node count. Swaps are performed in place: every node id keeps the
//! boolean function it denoted, so external [`crate::Bdd`] handles and the
//! operation cache stay valid throughout.

use crate::node::{FREE_LEVEL, TERMINAL_LEVEL};
use crate::table::Inner;

impl Inner {
    /// Swaps the variables at `level` and `level + 1`.
    ///
    /// In-place Rudell swap: nodes at `level` that depend on the lower
    /// variable are rewritten (same id, same function); independent nodes
    /// are relabelled across the boundary. Every node id's function is
    /// preserved.
    pub(crate) fn swap_adjacent(&mut self, level: u32) {
        let l0 = level;
        let l1 = level + 1;
        debug_assert!(l1 < self.num_vars());

        // Collect the nodes at both levels.
        let mut at0: Vec<u32> = Vec::new();
        let mut at1: Vec<u32> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate().skip(2) {
            if n.level == l0 {
                at0.push(i as u32);
            } else if n.level == l1 {
                at1.push(i as u32);
            }
        }

        // Remove them from the unique table: rebuild the buckets without
        // both levels (simple and safe; swaps are rare relative to mk).
        self.in_swap = true;
        self.rebuild_buckets_excluding(l0, l1);

        // Swap the variable <-> level maps first, so mk at these levels
        // during the rewrite sees the final geometry.
        let v0 = self.level2var[l0 as usize];
        let v1 = self.level2var[l1 as usize];
        self.level2var[l0 as usize] = v1;
        self.level2var[l1 as usize] = v0;
        self.var2level[v0 as usize] = l1;
        self.var2level[v1 as usize] = l0;

        // Pass 1: nodes at l0 NOT depending on l1 move down to l1
        // unchanged (they test the same variable, which now lives at l1).
        // They must be inserted before any `mk` can try to recreate them.
        let mut dependent: Vec<u32> = Vec::new();
        for &id in &at0 {
            let (lo, hi) = (self.nodes[id as usize].low, self.nodes[id as usize].high);
            let lo_l = self.nodes[lo as usize].level;
            let hi_l = self.nodes[hi as usize].level;
            if lo_l == l1 || hi_l == l1 {
                dependent.push(id);
            } else {
                self.nodes[id as usize].level = l1;
                self.nodes[id as usize].bot = l1;
                self.insert_unique(id);
            }
        }
        // Pass 2: nodes at l1 move up to l0 (same variable, new position).
        // Their children are strictly below l1, so ordering holds. They
        // may become garbage if only the rewritten nodes referenced them;
        // GC collects them later.
        for &id in &at1 {
            self.nodes[id as usize].level = l0;
            self.nodes[id as usize].bot = l0;
            self.insert_unique(id);
        }
        // Pass 3: rewrite the dependent nodes in place:
        //   N = (x, (y A B), (y C D))  =>  N' = (y, (x A C), (x B D))
        // with the convention that a child not testing y contributes
        // itself to both cofactors. x now lives at l1, y at l0.
        for &id in &dependent {
            let (lo, hi) = (self.nodes[id as usize].low, self.nodes[id as usize].high);
            // The old l1 nodes now carry level l0 (relabelled above).
            let (a, b) = if self.nodes[lo as usize].level == l0 {
                (self.nodes[lo as usize].low, self.nodes[lo as usize].high)
            } else {
                (lo, lo)
            };
            let (c, d) = if self.nodes[hi as usize].level == l0 {
                (self.nodes[hi as usize].low, self.nodes[hi as usize].high)
            } else {
                (hi, hi)
            };
            // Reordering runs with the governor suspended (see
            // `reorder_sift`), so `mk` cannot fail here.
            let new_lo = self.mk(l1, a, c).expect("reordering is exempt from budgets");
            let new_hi = self.mk(l1, b, d).expect("reordering is exempt from budgets");
            debug_assert_ne!(new_lo, new_hi, "swap of a reduced node cannot collapse");
            let n = &mut self.nodes[id as usize];
            n.level = l0;
            n.bot = l0;
            n.low = new_lo;
            n.high = new_hi;
            self.insert_unique(id);
        }
        self.in_swap = false;
        // Re-run the load-factor check that `in_swap` deferred: the swap
        // may have allocated enough rewritten nodes to overload the bucket
        // chains, and `mk` alone would not grow the table until the next
        // allocation happened to come along.
        self.maybe_grow_buckets();
    }

    /// Rebuilds the unique-table buckets, leaving out nodes at the two
    /// given levels (they are re-inserted by the swap).
    fn rebuild_buckets_excluding(&mut self, l0: u32, l1: u32) {
        let len = self.buckets_len();
        self.reset_buckets(len);
        for i in 2..self.nodes.len() {
            let n = self.nodes[i];
            if n.level == TERMINAL_LEVEL
                || n.level == FREE_LEVEL
                || n.level == l0
                || n.level == l1
            {
                continue;
            }
            self.insert_unique(i as u32);
        }
    }

    /// Total live decision nodes (excluding terminals and free slots).
    fn live_decision_nodes(&self) -> usize {
        self.live_nodes() - 2
    }

    /// Sifts every variable to its locally optimal position, largest
    /// levels first. Returns the node count before and after.
    ///
    /// Must be called at a safe point (no recursion in flight); external
    /// handles stay valid.
    pub(crate) fn reorder_sift(&mut self) -> (usize, usize) {
        // A chain-mode manager is order-static: chain intervals are
        // contiguous level ranges, and an adjacent swap would have to
        // split every chain crossing the boundary. Reordering degrades to
        // a collection (the recovery ladder still gets its compaction);
        // order *search* runs offline on plain managers and is applied to
        // chain managers through `set_order` before any node exists.
        // Paged managers are order-static too: the swap passes index the
        // arena slice directly, and level geometry rewrites would have to
        // stream every on-disk block through the pool per swap.
        if self.chain_mode() || self.paged() {
            self.gc();
            let n = self.live_nodes() - 2;
            return (n, n);
        }
        // Reordering is a compaction pass: it must be able to allocate
        // transient nodes even when the arena is over budget, so the
        // governor (and any fail plan) is suspended for its duration.
        let was_suspended = self.governor_suspended();
        self.suspend_governor(true);
        self.stats.sift_sweeps += 1;
        let result = self.reorder_sift_inner();
        self.suspend_governor(was_suspended);
        result
    }

    fn reorder_sift_inner(&mut self) -> (usize, usize) {
        // Start clean: collect garbage so counts reflect live nodes. The
        // operation cache is cleared wholesale up front — reordering is
        // the one event that changes what levels mean, and an empty cache
        // also lets the per-swap collections below skip their cache
        // sweeps entirely (no operations populate the cache mid-sift).
        self.clear_cache();
        self.gc();
        let before = self.live_decision_nodes();
        let n = self.num_vars();
        if n < 2 {
            return (before, before);
        }
        // Process variables by descending population of their level.
        let mut pop = vec![0usize; n as usize];
        for node in self.nodes.iter().skip(2) {
            if node.level != FREE_LEVEL && node.level != TERMINAL_LEVEL {
                pop[node.level as usize] += 1;
            }
        }
        let mut vars: Vec<u32> = (0..n).collect();
        vars.sort_by_key(|&v| std::cmp::Reverse(pop[self.var2level[v as usize] as usize]));

        for v in vars {
            let start_level = self.var2level[v as usize];
            let mut best_count = self.live_decision_nodes();
            let mut best_level = start_level;
            // Walk down to the bottom. A collection after each swap keeps
            // the node counts exact (swaps orphan the old lower-level
            // nodes); this is what makes sifting a deliberate, expensive
            // operation in every BDD library.
            let mut cur = start_level;
            while cur + 1 < n {
                self.swap_adjacent(cur);
                self.gc();
                cur += 1;
                let count = self.live_decision_nodes();
                if count < best_count {
                    best_count = count;
                    best_level = cur;
                }
            }
            // Walk up to the top.
            while cur > 0 {
                self.swap_adjacent(cur - 1);
                self.gc();
                cur -= 1;
                let count = self.live_decision_nodes();
                if count < best_count {
                    best_count = count;
                    best_level = cur;
                }
            }
            // Park at the best position.
            while cur < best_level {
                self.swap_adjacent(cur);
                cur += 1;
            }
            self.gc();
        }
        self.gc();
        (before, self.live_decision_nodes())
    }

    /// Moves the variable at level `from` to level `to` by adjacent swaps,
    /// shifting the variables in between by one position.
    fn move_level(&mut self, from: u32, to: u32) {
        let mut cur = from;
        while cur > to {
            self.swap_adjacent(cur - 1);
            cur -= 1;
        }
        while cur < to {
            self.swap_adjacent(cur);
            cur += 1;
        }
    }

    /// Rebuilds the arena into an explicit `level2var` order via adjacent
    /// swaps (every node id keeps its function throughout).
    fn force_order(&mut self, target: &[u32]) {
        debug_assert_eq!(target.len(), self.num_vars() as usize);
        for (lvl, &var) in target.iter().enumerate() {
            let at = self.var2level[var as usize];
            self.move_level(at, lvl as u32);
        }
    }

    /// One window-permutation pass: for every run of three adjacent
    /// levels, tries all six orderings of the window (via the adjacent
    /// swap cycle `s0 s1 s0 s1 s0 s1`, which returns to the identity) and
    /// parks on the smallest arena. Catches local minima plain sifting
    /// cannot see, because sifting only ever moves one variable at a time.
    fn window3_pass(&mut self) {
        let n = self.num_vars();
        if n < 3 {
            return;
        }
        for l in 0..(n - 2) {
            let seq = [l, l + 1, l, l + 1, l, l + 1];
            let mut best = self.live_decision_nodes();
            let mut best_idx = 0usize;
            for (i, &s) in seq.iter().enumerate().take(5) {
                self.swap_adjacent(s);
                self.gc();
                let count = self.live_decision_nodes();
                if count < best {
                    best = count;
                    best_idx = i + 1;
                }
            }
            // Close the cycle (back to the incoming permutation), then
            // replay the prefix that reached the best of the six states.
            self.swap_adjacent(seq[5]);
            for &s in seq.iter().take(best_idx) {
                self.swap_adjacent(s);
            }
            self.gc();
        }
    }

    /// The profiled hot level range: the level-activity bucket with the
    /// most `mk` allocations, widened by an eighth of the order on each
    /// side. Restarts shuffle inside this window — the levels where the
    /// workload actually allocates are where a different relative order
    /// changes the node count.
    fn hot_window(&self) -> (usize, usize) {
        let n = self.num_vars() as usize;
        let mut hot = 0usize;
        for (i, &c) in self.stats.level_activity.iter().enumerate() {
            if c > self.stats.level_activity[hot] {
                hot = i;
            }
        }
        let mut lo = (hot * n / 16).saturating_sub(n / 8);
        let mut hi = (((hot + 1) * n / 16) + n / 8).min(n.saturating_sub(1));
        if lo >= hi {
            lo = 0;
            hi = n - 1;
        }
        (lo, hi)
    }

    /// Offline order search beyond sifting: a sift-then-window-permute
    /// baseline, followed by `restarts` rounds that shuffle the variables
    /// of the profiled hot level range (escaping the sift's local
    /// minimum) and re-optimise. Parks on the best order seen; returns
    /// the live decision-node count before and after. Deterministic for a
    /// given `seed` and arena.
    ///
    /// On a chain-mode or paged manager this degrades to a collection,
    /// like [`Inner::reorder_sift`]: those managers are order-static.
    pub(crate) fn order_search(&mut self, restarts: usize, seed: u64) -> (usize, usize) {
        if self.chain_mode() || self.paged() {
            self.gc();
            let n = self.live_decision_nodes();
            return (n, n);
        }
        let was_suspended = self.governor_suspended();
        self.suspend_governor(true);
        self.clear_cache();
        self.gc();
        let before = self.live_decision_nodes();
        self.stats.sift_sweeps += 1;
        self.reorder_sift_inner();
        self.window3_pass();
        let mut best_count = self.live_decision_nodes();
        let mut best_order = self.level2var.clone();
        let mut rng = crate::rng::XorShift64Star::new(seed | 1);
        let n = self.num_vars() as usize;
        for _ in 0..restarts {
            if n >= 2 {
                let (wlo, whi) = self.hot_window();
                // Fisher-Yates over the hot window's levels, realised as
                // adjacent swaps so external handles stay valid.
                for i in (wlo + 1..=whi).rev() {
                    let j = wlo + rng.gen_index(0..(i - wlo + 1));
                    self.move_level(i as u32, j as u32);
                }
                self.gc();
            }
            self.stats.sift_sweeps += 1;
            self.reorder_sift_inner();
            self.window3_pass();
            let count = self.live_decision_nodes();
            if count < best_count {
                best_count = count;
                best_order = self.level2var.clone();
            }
        }
        self.force_order(&best_order);
        self.clear_cache();
        self.gc();
        self.suspend_governor(was_suspended);
        (before, self.live_decision_nodes())
    }
}

#[cfg(test)]
mod tests {
    use crate::table::Inner;

    /// Regression test for the deferred-growth bug: growth requests that
    /// arrive while `in_swap` defers them must be re-evaluated when the
    /// swap pass ends, not silently dropped until some later allocation.
    #[test]
    fn deferred_growth_reruns_after_swap() {
        let mut inner = Inner::new(64);
        let buckets_before = inner.buckets_len();
        // Simulate a long swap pass: allocate well past the 1.5x load
        // factor with growth deferred.
        inner.in_swap = true;
        let values: u64 = (buckets_before as u64 * 3 / 2) / 50 + 8;
        for value in 0..values {
            let mut acc = 1u32; // TRUE
            // Varying bits sit at the deepest levels so the per-value
            // chains share almost nothing and the node count is ~62/value.
            for level in (2..64u32).rev() {
                let bit = (value >> (63 - level)) & 1 == 1;
                acc = if bit {
                    inner.mk(level, 0, acc).expect("no budget installed")
                } else {
                    inner.mk(level, acc, 0).expect("no budget installed")
                };
            }
        }
        assert!(
            inner.live_nodes() * 2 > inner.buckets_len() * 3,
            "setup must overload the table (live {} buckets {})",
            inner.live_nodes(),
            inner.buckets_len()
        );
        assert_eq!(inner.buckets_len(), buckets_before, "growth was deferred");
        // The swap pass ends: the deferred check must now run and grow
        // the table back under the load factor.
        inner.swap_adjacent(0);
        assert!(
            inner.buckets_len() > buckets_before,
            "deferred growth must re-run when the swap ends"
        );
        assert!(inner.live_nodes() * 2 <= inner.buckets_len() * 3);
    }
}
