//! Batched evaluation of independent top-level operations.
//!
//! A [`BddBatch`] collects a DAG of relational operations — the delta
//! rules of one fixpoint round, say — and evaluates them in one shot.
//! With the parallel engine engaged ([`BddManager::set_threads`] >= 2)
//! the whole DAG runs on the shared-table kernel: each expression is a
//! unit of work, dispatched to a worker as soon as its operands resolve,
//! so multi-core helps even when the individual operations are too small
//! to split profitably. At `threads = 1` the batch evaluates its terms
//! sequentially through the ordinary governed operations, preserving the
//! sequential path's node-id determinism bit for bit.
//!
//! # Examples
//!
//! ```
//! use jedd_bdd::BddManager;
//! let mgr = BddManager::new(4);
//! let f = mgr.var(0).or(&mgr.var(1));
//! let g = mgr.var(1).or(&mgr.var(2));
//! let h = mgr.var(2).or(&mgr.var(3));
//!
//! let mut batch = mgr.batch();
//! let tf = batch.leaf(&f);
//! let tg = batch.leaf(&g);
//! let th = batch.leaf(&h);
//! // Two independent intersections: one fixpoint round's worth of work.
//! let a = batch.and(tf, tg);
//! let b = batch.and(tg, th);
//! let out = batch.run(&[a, b]);
//! assert_eq!(out[0], f.and(&g));
//! assert_eq!(out[1], g.and(&h));
//! ```

use crate::budget::BddError;
use crate::manager::{run_governed, Bdd, BddManager};
use crate::node::Permutation;
use crate::ops::BinOp;
use crate::par::BatchExpr;
use std::rc::Rc;

/// An opaque handle to one expression of a [`BddBatch`]. Only meaningful
/// for the batch that minted it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchTerm(usize);

enum Term {
    /// Index into `pins`.
    Leaf(usize),
    Bin(BinOp, usize, usize),
    /// `(term, cube pin)`.
    Exists(usize, usize),
    /// `(term, term, cube pin)`.
    AndExists(usize, usize, usize),
    /// `(term, perm index)`.
    Replace(usize, usize),
}

/// A DAG of top-level operations evaluated together; see the
/// [module docs](crate::batch) and [`BddManager::batch`].
pub struct BddBatch {
    mgr: BddManager,
    terms: Vec<Term>,
    perms: Vec<Permutation>,
    /// Operand handles (leaves and cubes), pinned for the batch's
    /// lifetime so a mid-ladder GC cannot reclaim them.
    pins: Vec<Bdd>,
}

impl BddManager {
    /// Starts an empty [`BddBatch`] on this manager.
    pub fn batch(&self) -> BddBatch {
        BddBatch {
            mgr: self.clone(),
            terms: Vec::new(),
            perms: Vec::new(),
            pins: Vec::new(),
        }
    }
}

impl BddBatch {
    fn pin(&mut self, f: &Bdd) -> usize {
        assert!(
            Rc::ptr_eq(&self.mgr.inner, &f.mgr),
            "batch operand from a different manager"
        );
        self.pins.push(f.clone());
        self.pins.len() - 1
    }

    fn push(&mut self, t: Term) -> BatchTerm {
        self.terms.push(t);
        BatchTerm(self.terms.len() - 1)
    }

    fn check(&self, t: BatchTerm) -> usize {
        assert!(t.0 < self.terms.len(), "batch term from another batch");
        t.0
    }

    /// Enters an existing BDD as a batch input.
    pub fn leaf(&mut self, f: &Bdd) -> BatchTerm {
        let p = self.pin(f);
        self.push(Term::Leaf(p))
    }

    /// Conjunction (set intersection) of two terms.
    pub fn and(&mut self, a: BatchTerm, b: BatchTerm) -> BatchTerm {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Term::Bin(BinOp::And, a, b))
    }

    /// Disjunction (set union) of two terms.
    pub fn or(&mut self, a: BatchTerm, b: BatchTerm) -> BatchTerm {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Term::Bin(BinOp::Or, a, b))
    }

    /// Difference `a & !b` (set difference) of two terms.
    pub fn diff(&mut self, a: BatchTerm, b: BatchTerm) -> BatchTerm {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Term::Bin(BinOp::Diff, a, b))
    }

    /// Exclusive or (symmetric difference) of two terms.
    pub fn xor(&mut self, a: BatchTerm, b: BatchTerm) -> BatchTerm {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Term::Bin(BinOp::Xor, a, b))
    }

    /// Existential quantification of a term over the variables of `cube`
    /// (a positive cube, e.g. from [`BddManager::cube`]).
    pub fn exists(&mut self, f: BatchTerm, cube: &Bdd) -> BatchTerm {
        let f = self.check(f);
        let c = self.pin(cube);
        self.push(Term::Exists(f, c))
    }

    /// The fused relational product `exists cube. (f & g)`.
    pub fn and_exists(&mut self, f: BatchTerm, g: BatchTerm, cube: &Bdd) -> BatchTerm {
        let (f, g) = (self.check(f), self.check(g));
        let c = self.pin(cube);
        self.push(Term::AndExists(f, g, c))
    }

    /// Variable replacement of a term under `perm`.
    pub fn replace(&mut self, f: BatchTerm, perm: &Permutation) -> BatchTerm {
        let f = self.check(f);
        self.perms.push(perm.clone());
        let p = self.perms.len() - 1;
        self.push(Term::Replace(f, p))
    }

    /// Evaluates every term and returns the results for `roots`, in
    /// order. All terms are evaluated (they are assumed to be wanted —
    /// don't enter speculative work into a batch).
    ///
    /// # Panics
    ///
    /// Panics on budget exhaustion like the plain (non-`try_`) operation
    /// methods; see [`BddBatch::try_run`].
    pub fn run(&self, roots: &[BatchTerm]) -> Vec<Bdd> {
        crate::manager::expect_within_budget("batch", self.try_run(roots))
    }

    /// Budget-aware form of [`BddBatch::run`].
    ///
    /// # Errors
    ///
    /// Returns the first [`BddError`] any expression trips: resource
    /// errors after the recovery ladder (GC, then reorder) is exhausted,
    /// or [`BddError::InvalidPermutation`] from a replace whose support
    /// collides under its permutation.
    pub fn try_run(&self, roots: &[BatchTerm]) -> Result<Vec<Bdd>, BddError> {
        let par = self.mgr.inner.borrow().par_enabled();
        let values = if par {
            self.run_parallel()?
        } else {
            self.run_sequential()?
        };
        Ok(roots.iter().map(|&r| values[self.check(r)].clone()).collect())
    }

    /// The sequential path: each term is an ordinary governed top-level
    /// operation with its own recovery ladder, so results (including
    /// node ids) are bit-identical to hand-written operation sequences.
    fn run_sequential(&self) -> Result<Vec<Bdd>, BddError> {
        let mut out: Vec<Bdd> = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            let r = match *t {
                Term::Leaf(p) => self.pins[p].clone(),
                Term::Bin(op, a, b) => match op {
                    BinOp::And => out[a].try_and(&out[b])?,
                    BinOp::Or => out[a].try_or(&out[b])?,
                    BinOp::Diff => out[a].try_diff(&out[b])?,
                    BinOp::Xor => out[a].try_xor(&out[b])?,
                    BinOp::Biimp => out[a].try_biimp(&out[b])?,
                },
                Term::Exists(f, c) => out[f].try_exists(&self.pins[c])?,
                Term::AndExists(f, g, c) => out[f].try_and_exists(&out[g], &self.pins[c])?,
                Term::Replace(f, p) => out[f].try_replace(&self.perms[p])?,
            };
            out.push(r);
        }
        Ok(out)
    }

    /// The parallel path: one lowered expression DAG, one kernel run,
    /// one recovery ladder around the whole batch (a mid-batch GC would
    /// move the frozen-arena snapshot under the workers).
    fn run_parallel(&self) -> Result<Vec<Bdd>, BddError> {
        let exprs: Vec<BatchExpr> = self
            .terms
            .iter()
            .map(|t| match *t {
                Term::Leaf(p) => BatchExpr::Leaf(self.pins[p].id),
                Term::Bin(op, a, b) => BatchExpr::Bin(op, a, b),
                Term::Exists(f, c) => BatchExpr::Exists(f, self.pins[c].id),
                Term::AndExists(f, g, c) => BatchExpr::AndExists(f, g, self.pins[c].id),
                Term::Replace(f, p) => BatchExpr::Replace(f, p),
            })
            .collect();
        let ids = run_governed(&self.mgr.inner, |inner| {
            inner.batch_run(&exprs, &self.perms)
        })?;
        Ok(ids.into_iter().map(|id| self.mgr.wrap(id)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    fn setup(threads: usize) -> (BddManager, Bdd, Bdd, Bdd) {
        let mgr = BddManager::new(8);
        mgr.set_threads(threads);
        mgr.set_par_cutoff(2);
        let f = mgr.var(0).xor(&mgr.var(3)).or(&mgr.var(5));
        let g = mgr.var(1).biimp(&mgr.var(4)).and(&mgr.var(6).not());
        let h = mgr.var(2).or(&mgr.var(7));
        (mgr, f, g, h)
    }

    fn build(batch: &mut BddBatch, f: &Bdd, g: &Bdd, h: &Bdd, mgr: &BddManager) -> Vec<BatchTerm> {
        let tf = batch.leaf(f);
        let tg = batch.leaf(g);
        let th = batch.leaf(h);
        let cube = mgr.cube(&[1, 4]);
        let perm = Permutation::from_pairs(&[(0, 2), (2, 0)]);
        let a = batch.and(tf, tg);
        let b = batch.or(tg, th);
        let e = batch.exists(b, &cube);
        let ae = batch.and_exists(tf, tg, &cube);
        let r = batch.replace(e, &perm);
        let u = batch.or(a, r);
        vec![a, b, e, ae, r, u]
    }

    fn reference(f: &Bdd, g: &Bdd, h: &Bdd, mgr: &BddManager) -> Vec<Bdd> {
        let cube = mgr.cube(&[1, 4]);
        let perm = Permutation::from_pairs(&[(0, 2), (2, 0)]);
        let a = f.and(g);
        let b = g.or(h);
        let e = b.exists(&cube);
        let ae = f.and_exists(g, &cube);
        let r = e.replace(&perm);
        let u = a.or(&r);
        vec![a, b, e, ae, r, u]
    }

    #[test]
    fn batch_matches_individual_ops_at_each_thread_count() {
        for threads in [1, 2, 4, 8] {
            let (mgr, f, g, h) = setup(threads);
            let mut batch = mgr.batch();
            let roots = build(&mut batch, &f, &g, &h, &mgr);
            let got = batch.run(&roots);
            let want = reference(&f, &g, &h, &mgr);
            let vars: Vec<u32> = (0..8).collect();
            for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(
                    a.sat_assignments(&vars),
                    b.sat_assignments(&vars),
                    "term {i} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_batch_engages_kernel() {
        let (mgr, f, g, h) = setup(4);
        let before = mgr.kernel_stats().par_ops;
        let mut batch = mgr.batch();
        let roots = build(&mut batch, &f, &g, &h, &mgr);
        let _ = batch.run(&roots);
        assert!(
            mgr.kernel_stats().par_ops > before,
            "a 4-thread batch must run on the parallel kernel"
        );
    }

    #[test]
    fn batch_replace_reports_invalid_permutation() {
        for threads in [1, 4] {
            let (mgr, f, _, _) = setup(threads);
            let mut batch = mgr.batch();
            let tf = batch.leaf(&f);
            // f's support contains 0 and 3; mapping 0 onto the unmoved 3
            // collides.
            let bad = Permutation::from_pairs(&[(0, 3)]);
            let r = batch.replace(tf, &bad);
            let got = batch.try_run(&[r]);
            assert!(
                matches!(got, Err(BddError::InvalidPermutation { .. })),
                "threads={threads}: expected InvalidPermutation, got {got:?}"
            );
        }
    }

    #[test]
    fn batch_respects_step_budget() {
        for threads in [1, 4] {
            let (mgr, f, g, h) = setup(threads);
            mgr.set_budget(Budget::unlimited().with_max_steps(1));
            let mut batch = mgr.batch();
            let roots = build(&mut batch, &f, &g, &h, &mgr);
            let got = batch.try_run(&roots);
            assert!(
                matches!(got, Err(BddError::StepLimit { .. })),
                "threads={threads}: expected StepLimit, got {:?}",
                got.as_ref().err()
            );
        }
    }

    #[test]
    fn empty_and_leaf_only_batches() {
        let (mgr, f, _, _) = setup(4);
        let batch = mgr.batch();
        assert!(batch.run(&[]).is_empty());
        let mut batch = mgr.batch();
        let t = batch.leaf(&f);
        let out = batch.run(&[t, t]);
        assert_eq!(out[0], f);
        assert_eq!(out[1], f);
    }
}
