//! Existential/universal quantification and the fused and-exists
//! ("relational product") used to implement Jedd's composition operator.

use crate::budget::BddError;
use crate::node::NodeId;
use crate::ops::BinOp;
use crate::table::{CacheOp, Inner};

const F: u32 = NodeId::FALSE.0;
const T: u32 = NodeId::TRUE.0;

impl Inner {
    /// Top-level entry for existential quantification: routes large
    /// operands to the parallel apply engine, everything else to the
    /// sequential recursion. The cube is pre-skipped above `f`'s top level
    /// exactly as the sequential recursion would, so both paths share one
    /// cache key; splitting stops above the first quantified level, which
    /// keeps every master-phase combine a plain `mk`.
    pub(crate) fn exists(&mut self, f: u32, cube: u32) -> Result<u32, BddError> {
        self.record_op_shape(&[f]);
        if self.par_enabled() && f > 1 && cube > 1 {
            let lf = self.level(f);
            let mut c = cube;
            while c != T && self.level(c) < lf {
                c = self.high(c);
            }
            if c == T {
                return Ok(f);
            }
            let limit = self.level(c);
            if limit >= 2 && self.probe_at_least(&[f], self.par_cutoff()) {
                match self.par_run(crate::par::Job::Exists { cube: c }, f, 0, limit)? {
                    crate::par::ParAttempt::Done(r) => return Ok(r),
                    crate::par::ParAttempt::Fallback => {}
                }
            }
        }
        self.exists_rec(f, cube)
    }

    /// Existentially quantifies the variables of the positive cube `cube`
    /// out of `f`.
    pub(crate) fn exists_rec(&mut self, f: u32, cube: u32) -> Result<u32, BddError> {
        if f <= 1 || cube == T {
            return Ok(f);
        }
        debug_assert_ne!(cube, F, "exists: cube must be a positive cube");
        self.step()?;
        self.prefault(&[f, cube])?;
        // Skip cube variables above f's top level.
        let mut c = cube;
        let lf = self.level(f);
        while c != T && self.level(c) < lf {
            c = self.high(c);
        }
        if c == T {
            return Ok(f);
        }
        if let Some(r) = self.cache_lookup(CacheOp::Exists, f, c, 0) {
            return Ok(r);
        }
        let lc = self.level(c);
        // Splitting at f's top level keeps chain nodes correct: the
        // cofactor of a chain node is its (tail, FALSE) pair, and the tail
        // re-exposes the remaining chain levels so cube variables that fall
        // strictly inside a chain interval are quantified level by level.
        let (f0, f1) = self.cofactor_pair(f, lf)?;
        let r = if lf == lc {
            let next = self.high(c);
            let r0 = self.exists_rec(f0, next)?;
            let r1 = self.exists_rec(f1, next)?;
            self.apply_rec(BinOp::Or, r0, r1)?
        } else {
            debug_assert!(lf < lc);
            let r0 = self.exists_rec(f0, c)?;
            let r1 = self.exists_rec(f1, c)?;
            self.mk(lf, r0, r1)?
        };
        self.cache_store(CacheOp::Exists, f, c, 0, r);
        Ok(r)
    }

    /// Universal quantification: `forall v. f == !exists v. !f`.
    pub(crate) fn forall(&mut self, f: u32, cube: u32) -> Result<u32, BddError> {
        let nf = self.not(f)?;
        let e = self.exists(nf, cube)?;
        self.not(e)
    }

    /// Top-level entry for the fused relational product: routes large
    /// operand pairs to the parallel apply engine (same normalisation —
    /// commutative swap and cube skip — as the sequential recursion, so
    /// the cache keys coincide).
    pub(crate) fn and_exists(&mut self, f: u32, g: u32, cube: u32) -> Result<u32, BddError> {
        self.record_op_shape(&[f, g]);
        if self.par_enabled() && f > 1 && g > 1 && cube > 1 {
            let m = self.level(f).min(self.level(g));
            let mut c = cube;
            while c != T && self.level(c) < m {
                c = self.high(c);
            }
            if c == T {
                return self.apply(BinOp::And, f, g);
            }
            let limit = self.level(c);
            if limit >= 2 && self.probe_at_least(&[f, g], self.par_cutoff()) {
                let (f2, g2) = if f > g { (g, f) } else { (f, g) };
                match self.par_run(crate::par::Job::AndExists { cube: c }, f2, g2, limit)? {
                    crate::par::ParAttempt::Done(r) => return Ok(r),
                    crate::par::ParAttempt::Fallback => {}
                }
            }
        }
        self.and_exists_rec(f, g, cube)
    }

    /// The fused relational product `exists cube. (f & g)`.
    ///
    /// This is the BDD-library primitive behind Jedd's composition (`<>`)
    /// operator; the paper notes it is implemented "more efficiently in one
    /// step" than a join followed by a projection.
    pub(crate) fn and_exists_rec(&mut self, f: u32, g: u32, cube: u32) -> Result<u32, BddError> {
        if f == F || g == F {
            return Ok(F);
        }
        if cube == T {
            return self.apply_rec(BinOp::And, f, g);
        }
        if f == T && g == T {
            return Ok(T);
        }
        self.step()?;
        self.prefault(&[f, g, cube])?;
        // Normalise commutative argument order for the cache.
        let (f, g) = if f > g { (g, f) } else { (f, g) };
        let (lf, lg) = (self.level(f), self.level(g));
        let m = lf.min(lg);
        // Skip cube variables above the top level of both operands.
        let mut c = cube;
        while c != T && self.level(c) < m {
            c = self.high(c);
        }
        if c == T {
            return self.apply_rec(BinOp::And, f, g);
        }
        if let Some(r) = self.cache_lookup(CacheOp::AndExists, f, g, c) {
            return Ok(r);
        }
        let (f0, f1) = self.cofactor_pair(f, m)?;
        let (g0, g1) = self.cofactor_pair(g, m)?;
        let r = if self.level(c) == m {
            let next = self.high(c);
            let r0 = self.and_exists_rec(f0, g0, next)?;
            if r0 == T {
                T
            } else {
                let r1 = self.and_exists_rec(f1, g1, next)?;
                self.apply_rec(BinOp::Or, r0, r1)?
            }
        } else {
            let r0 = self.and_exists_rec(f0, g0, c)?;
            let r1 = self.and_exists_rec(f1, g1, c)?;
            self.mk(m, r0, r1)?
        };
        self.cache_store(CacheOp::AndExists, f, g, c, r);
        Ok(r)
    }
}
