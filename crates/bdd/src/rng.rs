//! A small, dependency-free xorshift64* pseudo-random number generator.
//!
//! The workspace must build and test with no network access, so instead of
//! depending on the external `rand` crate, everything that needs seeded
//! randomness (the synthetic benchmark generator, the randomized property
//! tests, the benches) uses this module. The generator is deterministic
//! per seed and portable across platforms, which is exactly what seeded
//! test-case generation needs; it makes no cryptographic claims.
//!
//! # Examples
//!
//! ```
//! use jedd_bdd::rng::XorShift64Star;
//! let mut a = XorShift64Star::new(42);
//! let mut b = XorShift64Star::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range(3..10) >= 3);
//! ```

/// Sebastiano Vigna's xorshift64* generator: a 64-bit xorshift step
/// followed by a multiplicative scramble. Passes BigCrush on the high
/// bits; one `u64` of state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed. A zero seed (the one fixed point
    /// of the xorshift step) is remapped to an arbitrary odd constant.
    pub fn new(seed: u64) -> XorShift64Star {
        XorShift64Star {
            // SplitMix64-style pre-scramble so that nearby seeds (0, 1,
            // 2, ...) do not produce correlated early outputs.
            state: seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .max(0x2545_f491_4f6c_dd1d),
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The next 32 pseudo-random bits (the high half, which is the
    /// better-distributed part of xorshift64*).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        // Multiply-shift range reduction; the tiny modulo bias is
        // irrelevant for test-case generation.
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_index(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// A uniform element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.gen_index(0..items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(0..i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64Star::new(7);
        let mut b = XorShift64Star::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64Star::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_works() {
        let mut r = XorShift64Star::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = XorShift64Star::new(123);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let v = r.gen_range(5..13);
            assert!((5..13).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 8, "all values of a small range appear");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = XorShift64Star::new(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut r = XorShift64Star::new(5);
        let mut v: Vec<u32> = (0..10).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        for _ in 0..50 {
            assert!(*r.choose(&v) < 10);
        }
    }
}
