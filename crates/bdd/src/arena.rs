//! The node arena: a flat vector in resident mode, a disk-backed buffer
//! pool ([`crate::pager::Pager`]) in paged mode.
//!
//! This is the paging seam: every node access in `table.rs` routes
//! through the accessors here, so `mk`, the apply caches and GC keep
//! operating on resident frames while cold blocks fault in
//! transparently. The two modes share node ids (`id == arena index`, so
//! `block == id / BLOCK_NODES`); at one thread a paged manager allocates
//! in exactly the order a resident one does, which is what makes the
//! paged-vs-resident differential rig able to demand *id*-identical
//! results, stronger than the tuple contract.
//!
//! Resident mode keeps the seed data layout (a plain `Vec<Node>`) and
//! costs one predictable branch per access. Paged mode holds the pager
//! behind a `Mutex` so the `&self` read paths (`one_sat`, `satcount`,
//! enumeration, export, shape/support) can fault blocks in without any
//! signature changes — `Inner` stays `Sync` for the parallel kernel's
//! `thread::scope`, though paged managers keep the parallel path off by
//! contract (mirroring chain mode).
//!
//! Error discipline: fallible accessors (`try_*`) surface pager failures
//! as typed `BddError::Page` values and park the full
//! [`PageError`](crate::pager::PageError) for
//! `BddManager::take_page_error`. Infallible accessors panic on a fault
//! failure — they sit on API paths that have promised not to fail since
//! the seed — after parking the error, so diagnostics survive the
//! unwind.

use crate::budget::BddError;
use crate::node::Node;
use crate::pager::{PageError, PageStats, Pager, PagerFaults};
use std::ops::{Index, IndexMut};
use std::path::{Path, PathBuf};
use jedd_sync::{Mutex, MutexGuard};

pub(crate) struct Arena {
    /// Resident-mode storage. Empty (and unused) in paged mode.
    flat: Vec<Node>,
    /// Paged-mode storage. `None` in resident mode.
    paged: Option<Mutex<Pager>>,
    /// Shadow of the slot count, kept on this side of the mutex so `len`
    /// never locks.
    len: usize,
}

fn page_panic(e: &BddError) -> ! {
    panic!("jedd-bdd pager failure on an infallible path: {e}");
}

impl Arena {
    pub(crate) fn with_capacity(cap: usize) -> Arena {
        Arena {
            flat: Vec::with_capacity(cap),
            paged: None,
            len: 0,
        }
    }

    /// Switches this arena to paged storage with a resident budget of
    /// `frames` (`0` = unbounded), moving the current nodes (the two
    /// terminals) into the pager.
    pub(crate) fn enable_paging(
        &mut self,
        frames: usize,
        dir: Option<&Path>,
    ) -> Result<(), PageError> {
        debug_assert!(self.paged.is_none(), "paging already enabled");
        let mut pager = Pager::new(frames, dir)?;
        for n in self.flat.drain(..) {
            pager.append(n)?;
        }
        self.paged = Some(Mutex::new(pager));
        Ok(())
    }

    pub(crate) fn is_paged(&self) -> bool {
        self.paged.is_some()
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Locks the pager, recovering from poison: the pager's state is
    /// consistent after every call, so a panic elsewhere does not
    /// invalidate it.
    fn lock(&self) -> MutexGuard<'_, Pager> {
        self.paged.as_ref().expect("arena is paged").lock()
    }

    fn pager_mut(&mut self) -> &mut Pager {
        self.paged.as_mut().expect("arena is paged").get_mut()
    }

    fn convert(pager: &mut Pager, e: PageError) -> BddError {
        let brief = BddError::Page {
            block: e.block(),
            kind: e.kind(),
        };
        pager.park_sticky(e);
        brief
    }

    /// Reads node `id` through a shared borrow, faulting its block in if
    /// cold. Panics on a pager failure (see module docs).
    #[inline]
    pub(crate) fn get(&self, id: usize) -> Node {
        match &self.paged {
            None => self.flat[id],
            Some(_) => {
                let mut pager = self.lock();
                match pager.node(id) {
                    Ok(n) => n,
                    Err(e) => {
                        let brief = Self::convert(&mut pager, e);
                        drop(pager);
                        page_panic(&brief);
                    }
                }
            }
        }
    }

    /// Reads node `id` through an exclusive borrow (no lock in paged
    /// mode). Panics on a pager failure.
    #[inline]
    pub(crate) fn read(&mut self, id: usize) -> Node {
        match self.try_read(id) {
            Ok(n) => n,
            Err(e) => page_panic(&e),
        }
    }

    /// Fallible exclusive read: pager failures come back as typed
    /// [`BddError::Page`] errors.
    #[inline]
    pub(crate) fn try_read(&mut self, id: usize) -> Result<Node, BddError> {
        if self.paged.is_none() {
            return Ok(self.flat[id]);
        }
        let pager = self.pager_mut();
        pager.node(id).map_err(|e| Self::convert(pager, e))
    }

    /// Mutates node `id` in place. Panics on a pager failure.
    #[inline]
    pub(crate) fn update<R>(&mut self, id: usize, f: impl FnOnce(&mut Node) -> R) -> R {
        match self.try_update(id, f) {
            Ok(r) => r,
            Err(e) => page_panic(&e),
        }
    }

    /// Fallible in-place mutation of node `id`.
    #[inline]
    pub(crate) fn try_update<R>(
        &mut self,
        id: usize,
        f: impl FnOnce(&mut Node) -> R,
    ) -> Result<R, BddError> {
        if self.paged.is_none() {
            return Ok(f(&mut self.flat[id]));
        }
        let pager = self.pager_mut();
        pager
            .with_node_mut(id, f)
            .map_err(|e| Self::convert(pager, e))
    }

    /// Appends a node, returning its id. The fallible flavour `mk_raw`
    /// uses; in paged mode appending may evict to stay within budget.
    pub(crate) fn try_append(&mut self, n: Node) -> Result<u32, BddError> {
        if self.paged.is_none() {
            let id = self.flat.len() as u32;
            self.flat.push(n);
            self.len += 1;
            return Ok(id);
        }
        let pager = self.pager_mut();
        let id = pager.append(n).map_err(|e| Self::convert(pager, e))?;
        self.len += 1;
        Ok(id)
    }

    /// Resident-only append for paths that are contractually never paged
    /// (manager construction, the parallel commit).
    pub(crate) fn push_resident(&mut self, n: Node) -> u32 {
        assert!(self.paged.is_none(), "resident append on a paged arena");
        let id = self.flat.len() as u32;
        self.flat.push(n);
        self.len += 1;
        id
    }

    /// Walks slots `from..len` mutably, faulting blocks in sequentially —
    /// the GC / rehash bulk path. Panics on a pager failure.
    pub(crate) fn scan_mut(&mut self, from: usize, f: &mut dyn FnMut(usize, &mut Node)) {
        if self.paged.is_none() {
            for (i, n) in self.flat.iter_mut().enumerate().skip(from) {
                f(i, n);
            }
            return;
        }
        let pager = self.pager_mut();
        if let Err(e) = pager.scan_nodes(from, f) {
            let brief = Self::convert(pager, e);
            page_panic(&brief);
        }
    }

    /// Faults the blocks holding `ids` in, surfacing failures typed — the
    /// pre-fault seam at the top of the kernel recursions, a no-op branch
    /// in resident mode.
    #[inline]
    pub(crate) fn try_fault(&mut self, ids: &[u32]) -> Result<(), BddError> {
        if self.paged.is_none() {
            return Ok(());
        }
        for &id in ids {
            if id > 1 {
                self.try_read(id as usize)?;
            }
        }
        Ok(())
    }

    /// The `(block, kind)` summary of a parked pager error, if any.
    #[inline]
    pub(crate) fn sticky_brief(&mut self) -> Option<(u32, &'static str)> {
        match &mut self.paged {
            None => None,
            Some(_) => self.pager_mut().sticky_brief(),
        }
    }

    /// Takes the parked pager error (clearing it), if any.
    pub(crate) fn take_page_error(&self) -> Option<PageError> {
        self.paged.as_ref().and_then(|_| self.lock().take_sticky())
    }

    /// Installs a pager crash-injection plan. No-op in resident mode.
    pub(crate) fn set_pager_faults(&self, faults: PagerFaults) {
        if self.paged.is_some() {
            self.lock().set_faults(faults);
        }
    }

    /// Paging counters, when paged.
    pub(crate) fn page_stats(&self) -> Option<PageStats> {
        self.paged.as_ref().map(|_| self.lock().stats())
    }

    /// The backing page file, when paged.
    pub(crate) fn page_file(&self) -> Option<PathBuf> {
        self.paged
            .as_ref()
            .map(|_| self.lock().file_path().to_path_buf())
    }

    /// Iterates the resident storage (reorder-only; paged managers keep
    /// reordering degraded to collection, so this never runs paged).
    pub(crate) fn iter(&self) -> std::slice::Iter<'_, Node> {
        debug_assert!(self.paged.is_none(), "slice iteration on a paged arena");
        self.flat.iter()
    }
}

/// Direct slot access for the resident-only passes (reordering, the
/// parallel commit). Paged managers never reach these: indexing an empty
/// `flat` would panic, and the mode guards in `reorder.rs`/`par.rs`
/// enforce the contract before any index lands.
impl Index<usize> for Arena {
    type Output = Node;
    #[inline]
    fn index(&self, i: usize) -> &Node {
        &self.flat[i]
    }
}

impl IndexMut<usize> for Arena {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut Node {
        &mut self.flat[i]
    }
}

/// Model-checked pager contention: the `&self` read path locks the pager
/// for every access, so two readers churning pin/fault/evict through a
/// two-frame buffer pool is the whole protocol — swept deterministically
/// here instead of hoping the OS scheduler collides them.
#[cfg(all(test, feature = "model"))]
mod model_tests {
    use super::*;
    use crate::node::Node;
    use jedd_sync::model::{self, Config};

    fn probe_node(i: u32) -> Node {
        Node {
            level: i % 7,
            bot: i % 7,
            low: i,
            high: i.wrapping_add(1),
            next: u32::MAX,
            ext_refs: 0,
            mark: false,
        }
    }

    /// Two readers fault disjoint far-apart blocks through a two-frame
    /// pager: every interleaving of pin, fault and evict must return the
    /// exact node written, never deadlock on the arena mutex, and leave
    /// the happens-before ledger race-free.
    #[test]
    fn pin_evict_contention_is_exhaustively_coherent() {
        let report = model::check(Config::dfs(1), || {
            let mut arena = Arena::with_capacity(4);
            arena.push_resident(Node::terminal());
            arena.push_resident(Node::terminal());
            arena.enable_paging(2, None).expect("paging on");
            // Four blocks of distinct nodes, so two frames must evict.
            let total = crate::pager::BLOCK_NODES * 4;
            for i in 2..total {
                arena.try_append(probe_node(i as u32)).expect("append");
            }
            let arena = &arena;
            jedd_sync::thread::scope(|s| {
                for t in 0..2usize {
                    s.spawn(move || {
                        // Reader 0 walks blocks 0→3, reader 1 walks 3→0:
                        // opposite sweeps maximise evictions of each
                        // other's hot frame.
                        for step in 0..4usize {
                            let block = if t == 0 { step } else { 3 - step };
                            let id = block * crate::pager::BLOCK_NODES
                                + crate::pager::BLOCK_NODES / 2;
                            let got = arena.get(id);
                            assert_eq!(got.low, id as u32, "block {block} returned a foreign node");
                        }
                    });
                }
            });
        });
        report.assert_clean();
        assert!(report.complete, "DFS must exhaust the pin/evict protocol");
        assert!(report.schedules >= 2, "readers must interleave, got {}", report.schedules);
    }
}
