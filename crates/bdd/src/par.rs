//! The parallel apply engine: hot top-level operations (`and`/`or`/`diff`,
//! `exists`, `and_exists`, `replace`) run on a work-pool of `JEDD_THREADS`
//! workers over a **sharded scratch unique table** and a **striped shared
//! operation cache**, then import their results into the master arena in a
//! deterministic sequential pass.
//!
//! # The three phases
//!
//! 1. **Split (sequential, `&mut Inner`).** The top of the operation's
//!    recursion tree is unrolled for up to [`SPLIT_DEPTH`] levels, exactly
//!    mirroring the sequential recursion's cofactoring, producing a *plan*:
//!    an `mk`-combine tree whose leaves are deduplicated subproblems
//!    ("tasks"). Splitting stops above the first quantified level
//!    (`exists`/`and_exists`) or the first permuted level (`replace`), so
//!    every combine is a plain `mk` — no OR-combines are ever needed in the
//!    master phase.
//! 2. **Work pool (parallel, `&Inner`).** Tasks are dealt round-robin into
//!    per-worker deques; idle workers steal from the back of other deques.
//!    Workers run the standard recursions, reading the master table
//!    immutably and allocating result nodes in a shared scratch table of
//!    [`NUM_SHARDS`] mutex-protected shards (the shard is selected by the
//!    node hash, so contention is spread). Memoisation goes through a
//!    worker-private L1 cache backed by a shared striped L2 cache, so
//!    workers share subresults across tasks. Budget/cancel checks run on
//!    per-worker counters flushed to a shared governor every
//!    [`Budget::CHECK_INTERVAL`] steps.
//! 3. **Import (sequential, `&mut Inner`).** After all workers have joined,
//!    the plan is emitted in canonical order (low child before high child),
//!    translating scratch nodes into master nodes with ordinary `mk` calls.
//!
//! # Determinism
//!
//! Master-table mutations happen only in phases 1 and 3, which are
//! sequential and depend only on the operands' structure — never on thread
//! count or scheduling. The scratch results workers hand to phase 3 are
//! canonical ROBDDs of deterministic boolean functions, and the import
//! walks them in a fixed order, so **the master node ids produced are
//! identical for every thread count >= 2**. Relative to the sequential
//! path (threads = 1) the ids may differ — the sequential recursion interns
//! its intermediate results in the master arena while the parallel engine
//! keeps them in scratch — but the *functions* are identical, and after a
//! full GC the live node set (the canonical DAG of the live functions) is
//! identical too. Cache contents never influence results, only speed:
//! every cached value is the hash-consed canonical node of its key.
//!
//! # GC safepoint protocol
//!
//! Collections only ever run between top-level operations (`maybe_gc`, the
//! recovery ladder, or an explicit `gc()`), and a parallel operation joins
//! all its workers before returning. The join *is* the quiescence point:
//! when a GC runs, no worker can hold a reference into the arena, so the
//! stop-the-world property of the seed collector — including the op-cache
//! survival semantics of the sweep — is preserved without any per-node
//! synchronisation. Scratch tables are operation-local and dropped (or
//! fully imported) before any GC can observe them.

use crate::budget::{BddError, Budget, CancelToken};
use crate::node::{NIL, SCRATCH_TAG};
use crate::ops::BinOp;
use crate::table::{triple_hash, CacheOp, Inner};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of scratch-table shards and cache stripes (a power of two).
const NUM_SHARDS: usize = 64;
/// Bits of a scratch id holding the slot; the shard index sits above.
const SHARD_SHIFT: u32 = 25;
const SLOT_MASK: u32 = (1 << SHARD_SHIFT) - 1;
/// Levels of the recursion tree unrolled by the split phase: at most
/// `2^SPLIT_DEPTH` leaf paths, deduplicated into tasks. This is the
/// subproblem granularity cutoff — everything below a task stays
/// sequential within one worker, so small subtrees never pay
/// synchronisation costs.
const SPLIT_DEPTH: u32 = 8;
/// Direct-mapped slots per shared-cache stripe.
const STRIPE_SLOTS: usize = 1 << 12;
/// Direct-mapped slots of each worker's private L1 cache.
const L1_SLOTS: usize = 1 << 12;
/// Initial buckets per scratch shard (grows by doubling under load).
const SHARD_BUCKETS: usize = 256;

#[inline]
fn is_scratch(id: u32) -> bool {
    id & SCRATCH_TAG != 0
}

#[inline]
fn scratch_id(shard: usize, slot: usize) -> u32 {
    debug_assert!(slot <= SLOT_MASK as usize, "scratch shard overflow");
    SCRATCH_TAG | ((shard as u32) << SHARD_SHIFT) | slot as u32
}

#[inline]
fn scratch_loc(id: u32) -> (usize, usize) {
    (
        ((id >> SHARD_SHIFT) as usize) & (NUM_SHARDS - 1),
        (id & SLOT_MASK) as usize,
    )
}

#[inline]
fn cache_hash(op: CacheOp, a: u32, b: u32, c: u32) -> u64 {
    triple_hash(a ^ ((op as u32) << 24), b, c)
}

/// A node in a scratch shard. Children may live in the master arena
/// (untagged) or any scratch shard (tagged); they are opaque to the shard.
#[derive(Clone, Copy)]
struct SNode {
    level: u32,
    low: u32,
    high: u32,
    /// Intra-shard bucket chain (slot index, `NIL` ends the chain).
    next: u32,
}

/// One lock-protected shard of the scratch unique table.
struct ScratchShard {
    nodes: Vec<SNode>,
    buckets: Vec<u32>,
    mask: usize,
}

impl ScratchShard {
    fn new() -> ScratchShard {
        ScratchShard {
            nodes: Vec::new(),
            buckets: vec![NIL; SHARD_BUCKETS],
            mask: SHARD_BUCKETS - 1,
        }
    }

    /// Finds or inserts `(level, low, high)`; returns the slot and whether
    /// a node was created. Runs under the shard lock.
    fn find_or_insert(&mut self, level: u32, low: u32, high: u32, h: u64) -> (u32, bool) {
        let b = h as usize & self.mask;
        let mut cur = self.buckets[b];
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if n.level == level && n.low == low && n.high == high {
                return (cur, false);
            }
            cur = n.next;
        }
        let slot = self.nodes.len() as u32;
        self.nodes.push(SNode {
            level,
            low,
            high,
            next: self.buckets[b],
        });
        self.buckets[b] = slot;
        if self.nodes.len() * 2 > self.buckets.len() * 3 {
            self.grow();
        }
        (slot, true)
    }

    /// Doubles the bucket array and rehashes every node, keeping the load
    /// factor bounded under concurrent growth.
    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        self.buckets.clear();
        self.buckets.resize(new_len, NIL);
        self.mask = new_len - 1;
        for i in 0..self.nodes.len() {
            let n = self.nodes[i];
            let b = triple_hash(n.level, n.low, n.high) as usize & self.mask;
            self.nodes[i].next = self.buckets[b];
            self.buckets[b] = i as u32;
        }
    }
}

/// The sharded scratch unique table shared by all workers of one parallel
/// operation. The shard is picked from high hash bits (the bucket within a
/// shard uses the low bits), so concurrent `mk`s spread over the locks.
struct ScratchTable {
    shards: Vec<Mutex<ScratchShard>>,
}

impl ScratchTable {
    fn new() -> ScratchTable {
        ScratchTable {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(ScratchShard::new())).collect(),
        }
    }

    /// Hash-consing find-or-insert across the shards. The reduction rule
    /// (`low == high`) is applied by the caller.
    fn mk(&self, level: u32, low: u32, high: u32) -> (u32, bool) {
        let h = triple_hash(level, low, high);
        let shard_idx = (h >> 40) as usize & (NUM_SHARDS - 1);
        let mut shard = self.shards[shard_idx].lock().unwrap();
        let (slot, created) = shard.find_or_insert(level, low, high, h);
        (scratch_id(shard_idx, slot as usize), created)
    }

    /// Reads a scratch node's triple (brief shard lock). Only quantifier
    /// and replace recursions ever read scratch nodes — the pure binop
    /// recursion descends master operands exclusively.
    fn get(&self, id: u32) -> (u32, u32, u32) {
        let (shard_idx, slot) = scratch_loc(id);
        let shard = self.shards[shard_idx].lock().unwrap();
        let n = shard.nodes[slot];
        (n.level, n.low, n.high)
    }

    /// Unwraps the shards after all workers joined, for lock-free reads
    /// during the import phase.
    fn into_shards(self) -> Vec<ScratchShard> {
        self.shards
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect()
    }
}

#[derive(Clone, Copy)]
struct CEntry {
    op: CacheOp,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
}

impl CEntry {
    const EMPTY: CEntry = CEntry {
        op: CacheOp::None,
        a: NIL,
        b: NIL,
        c: NIL,
        result: NIL,
    };
}

/// The striped shared operation cache: `NUM_SHARDS` stripes of
/// direct-mapped entries, each behind its own mutex. Sharing results
/// across workers is what keeps the parallel engine's total work close to
/// the sequential `O(|f||g|)` bound when subproblems overlap.
struct ParCache {
    stripes: Vec<Mutex<Vec<CEntry>>>,
}

impl ParCache {
    fn new() -> ParCache {
        ParCache {
            stripes: (0..NUM_SHARDS)
                .map(|_| Mutex::new(vec![CEntry::EMPTY; STRIPE_SLOTS]))
                .collect(),
        }
    }

    fn get(&self, h: u64, op: CacheOp, a: u32, b: u32, c: u32) -> Option<u32> {
        let stripe = self.stripes[(h >> 40) as usize & (NUM_SHARDS - 1)].lock().unwrap();
        let e = stripe[h as usize & (STRIPE_SLOTS - 1)];
        if e.op == op && e.a == a && e.b == b && e.c == c {
            Some(e.result)
        } else {
            None
        }
    }

    fn put(&self, h: u64, e: CEntry) {
        let mut stripe = self.stripes[(h >> 40) as usize & (NUM_SHARDS - 1)].lock().unwrap();
        stripe[h as usize & (STRIPE_SLOTS - 1)] = e;
    }
}

/// The shared governor: per-worker budget counters flush here, and the
/// first tripped limit aborts every worker at its next check.
struct SharedGov {
    /// Mirrors the master's `checks_active` at operation entry.
    active: bool,
    abort: AtomicBool,
    /// Recursion steps of the current top-level op (master steps taken so
    /// far seed the counter; workers add their flushed batches).
    steps: AtomicU64,
    max_steps: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    node_limit: Option<usize>,
    master_live: usize,
    scratch_nodes: AtomicUsize,
    error: Mutex<Option<BddError>>,
}

impl SharedGov {
    fn new(inner: &Inner) -> SharedGov {
        let budget = inner.budget();
        SharedGov {
            active: inner.checks_active(),
            abort: AtomicBool::new(false),
            steps: AtomicU64::new(inner.op_steps()),
            max_steps: budget.max_steps,
            deadline: budget.deadline,
            cancel: budget.cancel,
            node_limit: budget.max_live_nodes,
            master_live: inner.live_nodes(),
            scratch_nodes: AtomicUsize::new(0),
            error: Mutex::new(None),
        }
    }

    #[inline]
    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// Records the first error and raises the abort flag. Later errors are
    /// dropped — the first trip is the one reported, matching the
    /// sequential engine's single-error semantics.
    fn trip(&self, e: BddError) -> BddError {
        let mut slot = self.error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.abort.store(true, Ordering::Release);
        e
    }

    fn take_error(&self) -> Option<BddError> {
        self.error.lock().unwrap().take()
    }
}

/// What a parallel operation computes; carried by every worker.
#[derive(Clone, Copy)]
pub(crate) enum Job<'p> {
    /// A binary boolean operation.
    Bin(BinOp),
    /// `exists cube. f` — `cube` already skipped above `f`'s top level.
    Exists {
        /// Master id of the (pre-skipped) positive cube.
        cube: u32,
    },
    /// The fused relational product `exists cube. (f & g)`.
    AndExists {
        /// Master id of the (pre-skipped) positive cube.
        cube: u32,
    },
    /// Variable replacement under an interned permutation.
    Replace {
        /// The permutation (borrowed from the caller).
        perm: &'p crate::node::Permutation,
        /// Its interned id, the `CacheOp::Replace` cache key.
        pid: u32,
    },
}

/// Outcome of a parallel attempt: either the finished master id, or a
/// deterministic decision to fall back to the sequential recursion
/// (e.g. the split produced fewer than two distinct tasks).
pub(crate) enum ParAttempt {
    /// The operation ran on the work pool; here is the master result.
    Done(u32),
    /// Not worth parallelising — caller should run the sequential path.
    Fallback,
}

enum PlanNode {
    /// Resolved during the split (terminal case or trivial operand).
    Done(u32),
    /// Index into the task list; result imported from scratch.
    Task(u32),
    /// Combine children with `mk` at this level (canonical order: lo, hi).
    Mk { level: u32, lo: u32, hi: u32 },
}

struct Plan {
    nodes: Vec<PlanNode>,
    tasks: Vec<(u32, u32)>,
    root: u32,
}

/// Unrolls the top `SPLIT_DEPTH` levels of the operation's recursion,
/// mirroring the sequential cofactoring exactly, and deduplicates the leaf
/// subproblems. Reads the master table only; fully deterministic.
fn build_plan(inner: &Inner, job: &Job, a: u32, b: u32, limit: u32) -> Plan {
    let mut plan = Plan {
        nodes: Vec::new(),
        tasks: Vec::new(),
        root: 0,
    };
    let mut dedup: HashMap<(u32, u32), u32> = HashMap::new();
    plan.root = expand(inner, job, &mut plan, &mut dedup, a, b, limit, SPLIT_DEPTH);
    plan
}

fn immediate(job: &Job, a: u32, b: u32) -> Option<u32> {
    match job {
        Job::Bin(op) => op.terminal_case(a, b),
        Job::Exists { .. } | Job::Replace { .. } => {
            if a <= 1 {
                Some(a)
            } else {
                None
            }
        }
        Job::AndExists { .. } => {
            if a == 0 || b == 0 {
                Some(0)
            } else if a == 1 && b == 1 {
                Some(1)
            } else {
                None
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn expand(
    inner: &Inner,
    job: &Job,
    plan: &mut Plan,
    dedup: &mut HashMap<(u32, u32), u32>,
    a: u32,
    b: u32,
    limit: u32,
    depth: u32,
) -> u32 {
    let node = if let Some(r) = immediate(job, a, b) {
        PlanNode::Done(r)
    } else {
        let pair_op = matches!(job, Job::Bin(_) | Job::AndExists { .. });
        let m = if pair_op {
            inner.level(a).min(inner.level(b))
        } else {
            inner.level(a)
        };
        if depth == 0 || m >= limit {
            let next = plan.tasks.len() as u32;
            let t = *dedup.entry((a, b)).or_insert_with(|| {
                plan.tasks.push((a, b));
                next
            });
            PlanNode::Task(t)
        } else {
            let (a0, a1) = if inner.level(a) == m {
                (inner.low(a), inner.high(a))
            } else {
                (a, a)
            };
            let (b0, b1) = if pair_op && inner.level(b) == m {
                (inner.low(b), inner.high(b))
            } else {
                (b, b)
            };
            let lo = expand(inner, job, plan, dedup, a0, b0, limit, depth - 1);
            let hi = expand(inner, job, plan, dedup, a1, b1, limit, depth - 1);
            PlanNode::Mk { level: m, lo, hi }
        }
    };
    plan.nodes.push(node);
    (plan.nodes.len() - 1) as u32
}

/// Everything a worker borrows for the duration of the parallel phase.
struct Shared<'a, 'p> {
    inner: &'a Inner,
    job: Job<'p>,
    tasks: &'a [(u32, u32)],
    scratch: &'a ScratchTable,
    cache: &'a ParCache,
    gov: &'a SharedGov,
    deques: &'a [Mutex<VecDeque<u32>>],
    results: &'a [AtomicU32],
}

/// Per-worker counters, merged into [`crate::KernelStats`] after the join.
/// Each worker's `lookups >= hits` invariant holds locally, so it holds
/// for the merged totals too — no interleaving can undercount lookups.
#[derive(Clone, Copy)]
struct WorkerStats {
    steps: u64,
    lookups: u64,
    hits: u64,
    per_op: [(u64, u64); 10],
    scratch_created: u64,
    scratch_hits: u64,
    steals: u64,
}

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            steps: 0,
            lookups: 0,
            hits: 0,
            per_op: [(0, 0); 10],
            scratch_created: 0,
            scratch_hits: 0,
            steals: 0,
        }
    }
}

struct Worker<'a, 'p> {
    sh: &'a Shared<'a, 'p>,
    stats: WorkerStats,
    l1: Vec<CEntry>,
    /// Steps since the last governor flush.
    pending: u64,
}

impl<'a, 'p> Worker<'a, 'p> {
    fn new(sh: &'a Shared<'a, 'p>) -> Worker<'a, 'p> {
        Worker {
            sh,
            stats: WorkerStats::new(),
            l1: vec![CEntry::EMPTY; L1_SLOTS],
            pending: 0,
        }
    }

    /// Reads a node triple from either address space. Master reads are
    /// lock-free; scratch reads take the owning shard's lock briefly.
    #[inline]
    fn node3(&self, id: u32) -> (u32, u32, u32) {
        if is_scratch(id) {
            self.sh.scratch.get(id)
        } else {
            let inner = self.sh.inner;
            (inner.level(id), inner.low(id), inner.high(id))
        }
    }

    #[inline]
    fn level_any(&self, id: u32) -> u32 {
        if is_scratch(id) {
            self.sh.scratch.get(id).0
        } else {
            self.sh.inner.level(id)
        }
    }

    /// One recursion step: counts locally, flushes to the shared governor
    /// every [`Budget::CHECK_INTERVAL`] steps.
    #[inline]
    fn tick(&mut self) -> Result<(), BddError> {
        self.stats.steps += 1;
        self.pending += 1;
        if self.pending >= Budget::CHECK_INTERVAL {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes the pending step batch and probes every limit. An abort
    /// raised by another worker surfaces as `Cancelled` here; the
    /// authoritative error is whatever the first tripping worker recorded.
    fn flush(&mut self) -> Result<(), BddError> {
        let gov = self.sh.gov;
        let pending = std::mem::take(&mut self.pending);
        if gov.aborted() {
            return Err(BddError::Cancelled);
        }
        if !gov.active {
            return Ok(());
        }
        let total = gov.steps.fetch_add(pending, Ordering::Relaxed) + pending;
        if let Some(limit) = gov.max_steps {
            if total > limit {
                return Err(gov.trip(BddError::StepLimit { steps: total, limit }));
            }
        }
        if let Some(token) = &gov.cancel {
            if token.is_cancelled() {
                return Err(gov.trip(BddError::Cancelled));
            }
        }
        if let Some(deadline) = gov.deadline {
            if Instant::now() >= deadline {
                return Err(gov.trip(BddError::Deadline));
            }
        }
        if let Some(limit) = gov.node_limit {
            let live = gov.master_live + gov.scratch_nodes.load(Ordering::Relaxed);
            if live >= limit {
                return Err(gov.trip(BddError::NodeLimit { live, limit }));
            }
        }
        Ok(())
    }

    /// Scratch `mk`: reduction rule, then hash-consing in the sharded
    /// table. Counts allocations against the node budget.
    fn smk(&mut self, level: u32, low: u32, high: u32) -> Result<u32, BddError> {
        if low == high {
            return Ok(low);
        }
        let (id, created) = self.sh.scratch.mk(level, low, high);
        if created {
            self.stats.scratch_created += 1;
            let gov = self.sh.gov;
            let n = gov.scratch_nodes.fetch_add(1, Ordering::Relaxed) + 1;
            if gov.active {
                if let Some(limit) = gov.node_limit {
                    let live = gov.master_live + n;
                    if live >= limit {
                        return Err(gov.trip(BddError::NodeLimit { live, limit }));
                    }
                }
            }
        } else {
            self.stats.scratch_hits += 1;
        }
        Ok(id)
    }

    #[inline]
    fn cache_get(&mut self, op: CacheOp, a: u32, b: u32, c: u32) -> Option<u32> {
        self.stats.lookups += 1;
        self.stats.per_op[op as usize - 1].0 += 1;
        let h = cache_hash(op, a, b, c);
        let slot = h as usize & (L1_SLOTS - 1);
        let e = self.l1[slot];
        if e.op == op && e.a == a && e.b == b && e.c == c {
            self.stats.hits += 1;
            self.stats.per_op[op as usize - 1].1 += 1;
            return Some(e.result);
        }
        if let Some(r) = self.sh.cache.get(h, op, a, b, c) {
            self.l1[slot] = CEntry { op, a, b, c, result: r };
            self.stats.hits += 1;
            self.stats.per_op[op as usize - 1].1 += 1;
            return Some(r);
        }
        None
    }

    #[inline]
    fn cache_put(&mut self, op: CacheOp, a: u32, b: u32, c: u32, result: u32) {
        let h = cache_hash(op, a, b, c);
        let e = CEntry { op, a, b, c, result };
        self.l1[h as usize & (L1_SLOTS - 1)] = e;
        self.sh.cache.put(h, e);
    }

    fn run_task(&mut self, key: (u32, u32)) -> Result<u32, BddError> {
        match self.sh.job {
            Job::Bin(op) => self.wapply(op, key.0, key.1),
            Job::Exists { cube } => self.wexists(key.0, cube),
            Job::AndExists { cube } => self.wand_exists(key.0, key.1, cube),
            Job::Replace { perm, pid } => self.wreplace(key.0, perm, pid),
        }
    }

    /// Bryant apply over mixed master/scratch operands. For pure binop
    /// tasks the operands are always master nodes; scratch operands only
    /// appear via the OR-combines of quantifier recursions.
    fn wapply(&mut self, op: BinOp, a: u32, b: u32) -> Result<u32, BddError> {
        if let Some(r) = op.terminal_case(a, b) {
            return Ok(r);
        }
        self.tick()?;
        let (ka, kb) = if op.commutative() && a > b { (b, a) } else { (a, b) };
        if let Some(r) = self.cache_get(op.cache_op(), ka, kb, 0) {
            return Ok(r);
        }
        let (la, alo, ahi) = self.node3(a);
        let (lb, blo, bhi) = self.node3(b);
        let m = la.min(lb);
        let (a0, a1) = if la == m { (alo, ahi) } else { (a, a) };
        let (b0, b1) = if lb == m { (blo, bhi) } else { (b, b) };
        let r0 = self.wapply(op, a0, b0)?;
        let r1 = self.wapply(op, a1, b1)?;
        let r = self.smk(m, r0, r1)?;
        self.cache_put(op.cache_op(), ka, kb, 0, r);
        Ok(r)
    }

    /// Existential quantification; mirrors `Inner::exists`. `f` and `cube`
    /// are always master nodes — only the OR of subresults touches scratch.
    fn wexists(&mut self, f: u32, cube: u32) -> Result<u32, BddError> {
        if f <= 1 || cube == 1 {
            return Ok(f);
        }
        self.tick()?;
        let inner = self.sh.inner;
        let lf = inner.level(f);
        let mut c = cube;
        while c != 1 && inner.level(c) < lf {
            c = inner.high(c);
        }
        if c == 1 {
            return Ok(f);
        }
        if let Some(r) = self.cache_get(CacheOp::Exists, f, c, 0) {
            return Ok(r);
        }
        let lc = inner.level(c);
        let (f0, f1) = (inner.low(f), inner.high(f));
        let r = if lf == lc {
            let next = inner.high(c);
            let r0 = self.wexists(f0, next)?;
            let r1 = self.wexists(f1, next)?;
            self.wapply(BinOp::Or, r0, r1)?
        } else {
            debug_assert!(lf < lc);
            let r0 = self.wexists(f0, c)?;
            let r1 = self.wexists(f1, c)?;
            self.smk(lf, r0, r1)?
        };
        self.cache_put(CacheOp::Exists, f, c, 0, r);
        Ok(r)
    }

    /// Fused relational product; mirrors `Inner::and_exists`.
    fn wand_exists(&mut self, f: u32, g: u32, cube: u32) -> Result<u32, BddError> {
        if f == 0 || g == 0 {
            return Ok(0);
        }
        if cube == 1 {
            return self.wapply(BinOp::And, f, g);
        }
        if f == 1 && g == 1 {
            return Ok(1);
        }
        self.tick()?;
        let inner = self.sh.inner;
        let (f, g) = if f > g { (g, f) } else { (f, g) };
        let (lf, lg) = (inner.level(f), inner.level(g));
        let m = lf.min(lg);
        let mut c = cube;
        while c != 1 && inner.level(c) < m {
            c = inner.high(c);
        }
        if c == 1 {
            return self.wapply(BinOp::And, f, g);
        }
        if let Some(r) = self.cache_get(CacheOp::AndExists, f, g, c) {
            return Ok(r);
        }
        let (f0, f1) = if lf == m {
            (inner.low(f), inner.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (inner.low(g), inner.high(g))
        } else {
            (g, g)
        };
        let r = if inner.level(c) == m {
            let next = inner.high(c);
            let r0 = self.wand_exists(f0, g0, next)?;
            if r0 == 1 {
                1
            } else {
                let r1 = self.wand_exists(f1, g1, next)?;
                self.wapply(BinOp::Or, r0, r1)?
            }
        } else {
            let r0 = self.wand_exists(f0, g0, c)?;
            let r1 = self.wand_exists(f1, g1, c)?;
            self.smk(m, r0, r1)?
        };
        self.cache_put(CacheOp::AndExists, f, g, c, r);
        Ok(r)
    }

    /// Variable replacement; mirrors `Inner::replace_rec`, with the
    /// order-reversing fallback going through the worker's `ite`.
    fn wreplace(
        &mut self,
        f: u32,
        perm: &crate::node::Permutation,
        pid: u32,
    ) -> Result<u32, BddError> {
        if f <= 1 {
            return Ok(f);
        }
        self.tick()?;
        if let Some(r) = self.cache_get(CacheOp::Replace, f, pid, 0) {
            return Ok(r);
        }
        let inner = self.sh.inner;
        let (lo, hi) = (inner.low(f), inner.high(f));
        let lo2 = self.wreplace(lo, perm, pid)?;
        let hi2 = self.wreplace(hi, perm, pid)?;
        let new_var = perm.apply(inner.var_at_level(inner.level(f)));
        let new_level = inner.level_of_var(new_var);
        let r = if new_level < self.level_any(lo2) && new_level < self.level_any(hi2) {
            self.smk(new_level, lo2, hi2)?
        } else {
            let var = self.smk(new_level, 0, 1)?;
            self.wite(var, hi2, lo2)?
        };
        self.cache_put(CacheOp::Replace, f, pid, 0, r);
        Ok(r)
    }

    /// If-then-else over mixed operands; mirrors `Inner::ite`. Only
    /// reachable from the order-reversing branch of `wreplace`.
    fn wite(&mut self, f: u32, g: u32, h: u32) -> Result<u32, BddError> {
        if f == 1 {
            return Ok(g);
        }
        if f == 0 {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == 1 && h == 0 {
            return Ok(f);
        }
        self.tick()?;
        if let Some(r) = self.cache_get(CacheOp::Ite, f, g, h) {
            return Ok(r);
        }
        let (lf, flo, fhi) = self.node3(f);
        let (lg, glo, ghi) = self.node3(g);
        let (lh, hlo, hhi) = self.node3(h);
        let m = lf.min(lg).min(lh);
        let (f0, f1) = if lf == m { (flo, fhi) } else { (f, f) };
        let (g0, g1) = if lg == m { (glo, ghi) } else { (g, g) };
        let (h0, h1) = if lh == m { (hlo, hhi) } else { (h, h) };
        let r0 = self.wite(f0, g0, h0)?;
        let r1 = self.wite(f1, g1, h1)?;
        let r = self.smk(m, r0, r1)?;
        self.cache_put(CacheOp::Ite, f, g, h, r);
        Ok(r)
    }
}

/// Pops from the worker's own deque front, then steals from the back of
/// the other deques (round-robin from the right neighbour).
fn next_task(sh: &Shared, idx: usize, stats: &mut WorkerStats) -> Option<u32> {
    if let Some(t) = sh.deques[idx].lock().unwrap().pop_front() {
        return Some(t);
    }
    let n = sh.deques.len();
    for k in 1..n {
        let j = (idx + k) % n;
        if let Some(t) = sh.deques[j].lock().unwrap().pop_back() {
            stats.steals += 1;
            return Some(t);
        }
    }
    None
}

fn worker_main(sh: &Shared, idx: usize) -> WorkerStats {
    let mut w = Worker::new(sh);
    loop {
        if sh.gov.aborted() {
            break;
        }
        let Some(t) = next_task(sh, idx, &mut w.stats) else {
            break;
        };
        match w.run_task(sh.tasks[t as usize]) {
            Ok(r) => sh.results[t as usize].store(r, Ordering::Release),
            // The error (if it was this worker's own trip) is already
            // recorded in the governor; stop draining tasks.
            Err(_) => break,
        }
    }
    // Flush the remainder below one check interval: a step limit smaller
    // than the interval must still fire even when every task is tiny.
    let _ = w.flush();
    w.stats
}

fn master_key(job: &Job, a: u32, b: u32) -> (CacheOp, u32, u32, u32) {
    match *job {
        Job::Bin(op) => {
            let (ka, kb) = if op.commutative() && a > b { (b, a) } else { (a, b) };
            (op.cache_op(), ka, kb, 0)
        }
        Job::Exists { cube } => (CacheOp::Exists, a, cube, 0),
        Job::AndExists { cube } => (CacheOp::AndExists, a, b, cube),
        Job::Replace { pid, .. } => (CacheOp::Replace, a, pid, 0),
    }
}

impl Inner {
    /// `true` when the parallel engine is switched on (threads >= 2).
    pub(crate) fn par_enabled(&self) -> bool {
        self.par_threads() >= 2
    }

    /// Runs one top-level operation on the work pool. `a`/`b` are the
    /// (pre-normalised) operands, `limit` the first level splitting must
    /// not cross. Returns `Fallback` when the split yields fewer than two
    /// distinct tasks — a structural property of the operands, so the
    /// decision is identical for every thread count.
    pub(crate) fn par_run(
        &mut self,
        job: Job,
        a: u32,
        b: u32,
        limit: u32,
    ) -> Result<ParAttempt, BddError> {
        // A warm master cache answers repeated top-level operations (the
        // fixpoint engines re-issue many) without spawning anything.
        let (ck, ka, kb, kc) = master_key(&job, a, b);
        if let Some(r) = self.cache_lookup(ck, ka, kb, kc) {
            return Ok(ParAttempt::Done(r));
        }
        let plan = build_plan(self, &job, a, b, limit);
        if plan.tasks.len() < 2 {
            return Ok(ParAttempt::Fallback);
        }
        let threads = self.par_threads().min(plan.tasks.len());
        let scratch = ScratchTable::new();
        let cache = ParCache::new();
        let gov = SharedGov::new(self);
        let results: Vec<AtomicU32> =
            (0..plan.tasks.len()).map(|_| AtomicU32::new(NIL)).collect();
        // Deal tasks round-robin; dealing order is deterministic, and
        // stealing only redistributes who computes a task, never what it
        // computes.
        let deques: Vec<Mutex<VecDeque<u32>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (t, dq) in (0..plan.tasks.len() as u32).zip((0..threads).cycle()) {
            deques[dq].lock().unwrap().push_back(t);
        }
        let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(threads);
        {
            let shared = Shared {
                inner: &*self,
                job,
                tasks: &plan.tasks,
                scratch: &scratch,
                cache: &cache,
                gov: &gov,
                deques: &deques,
                results: &results,
            };
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|i| {
                        let sh = &shared;
                        s.spawn(move || worker_main(sh, i))
                    })
                    .collect();
                for h in handles {
                    worker_stats.push(h.join().expect("parallel worker panicked"));
                }
            });
        }
        // Merge per-worker counters into the shared KernelStats. Sums are
        // order-independent, so the merged stats keep their invariants
        // (lookups >= hits) regardless of scheduling.
        let mut steps = 0u64;
        for w in &worker_stats {
            steps += w.steps;
            self.stats.cache_lookups += w.lookups;
            self.stats.cache_hits += w.hits;
            for (i, &(l, h)) in w.per_op.iter().enumerate() {
                self.stats.per_op_cache[i].lookups += l;
                self.stats.per_op_cache[i].hits += h;
            }
            self.stats.unique_hits += w.scratch_hits;
            self.stats.par_scratch_nodes += w.scratch_created;
            self.stats.par_steals += w.steals;
        }
        self.stats.par_ops += 1;
        self.stats.par_tasks += plan.tasks.len() as u64;
        if gov.active {
            self.stats.governed_steps += steps;
            self.add_op_steps(steps);
        }
        if let Some(e) = gov.take_error() {
            return Err(e);
        }
        // Import phase: emit the plan in canonical order, translating
        // scratch results into master nodes.
        let shards = scratch.into_shards();
        let mut memo: HashMap<u32, u32> = HashMap::new();
        let r = self.emit_plan(&plan, plan.root, &results, &shards, &mut memo)?;
        self.cache_store(ck, ka, kb, kc, r);
        Ok(ParAttempt::Done(r))
    }

    fn emit_plan(
        &mut self,
        plan: &Plan,
        idx: u32,
        results: &[AtomicU32],
        shards: &[ScratchShard],
        memo: &mut HashMap<u32, u32>,
    ) -> Result<u32, BddError> {
        match plan.nodes[idx as usize] {
            PlanNode::Done(id) => Ok(id),
            PlanNode::Task(t) => {
                let r = results[t as usize].load(Ordering::Acquire);
                debug_assert_ne!(r, NIL, "parallel task finished without a result");
                self.import_scratch(shards, memo, r)
            }
            PlanNode::Mk { level, lo, hi } => {
                let l = self.emit_plan(plan, lo, results, shards, memo)?;
                let h = self.emit_plan(plan, hi, results, shards, memo)?;
                self.mk(level, l, h)
            }
        }
    }

    /// Translates a scratch node (and its closure) into master nodes,
    /// memoised per scratch id, children first in low-then-high order.
    fn import_scratch(
        &mut self,
        shards: &[ScratchShard],
        memo: &mut HashMap<u32, u32>,
        id: u32,
    ) -> Result<u32, BddError> {
        if !is_scratch(id) {
            return Ok(id);
        }
        if let Some(&m) = memo.get(&id) {
            return Ok(m);
        }
        let (shard, slot) = scratch_loc(id);
        let n = shards[shard].nodes[slot];
        let lo = self.import_scratch(shards, memo, n.low)?;
        let hi = self.import_scratch(shards, memo, n.high)?;
        let r = self.mk(n.level, lo, hi)?;
        memo.insert(id, r);
        Ok(r)
    }
}
