//! The parallel apply engine: hot top-level operations (`and`/`or`/`diff`,
//! `exists`, `and_exists`, `replace`) run on a work-pool of worker threads
//! that hash-cons **master node ids directly** into a shared concurrent
//! unique table. There is no scratch address space and no sequential
//! import replay — the serial bottleneck of the previous engine.
//!
//! # Architecture
//!
//! A parallel operation snapshots the master arena (frozen for its
//! duration) and builds a [`Kernel`]: a lock-free node allocator that
//! reserves ids `base + i` above the arena (`base = nodes.len()`), a
//! sharded concurrent unique table over the *new* triples, and a striped
//! shared op cache fronted by per-worker L1s. Worker `mk` ([`Worker::cmk`])
//! first probes the frozen master table lock-free (master triples keep
//! their existing ids), then dedups against the other workers through the
//! shard map, and only then reserves a fresh id with a CAS on the
//! allocation counter. At the join, the reserved block is committed to the
//! master arena in id order ([`Inner::commit_par_nodes`]) — an append, not
//! a replay: no re-hashing of children, no memo table, no `mk` calls.
//!
//! Two drivers sit on top of the kernel:
//!
//! - **Split tasks** ([`Inner::par_run`]): one big operation is unrolled
//!   for [`SPLIT_DEPTH`] levels into deduplicated subproblems, dealt into
//!   per-worker deques with work stealing, and recombined with plain `mk`
//!   calls at the end.
//! - **Batch expressions** ([`Inner::batch_run`]): many *independent*
//!   top-level operations (the delta rules of one fixpoint round) are
//!   evaluated as a dependency DAG, each expression a unit of work, so
//!   multi-core helps even when single operations are small.
//!
//! # Determinism
//!
//! Each boolean function keeps exactly **one** id: master nodes only ever
//! reference ids below `base`, so the frozen-table probe fires exactly
//! when a triple could already exist in the master arena, and the shard
//! map (the shard is picked from the triple hash, deterministically)
//! dedups all new triples. Which *fresh* id a new triple receives,
//! however, depends on the CAS interleaving — so the contract is:
//! **identical functions (identical relations/tuples) at any thread
//! count**, with node-id determinism retained at `threads = 1` (the
//! sequential path). The BTreeSet/ZDD differential fuzzer and the
//! Naive-strategy oracle in `jedd-core` are the safety net for this
//! contract.
//!
//! # Governor accounting
//!
//! Worker step counters flush to a shared governor every
//! [`Budget::CHECK_INTERVAL`] steps (step/deadline/cancel parity with the
//! sequential `step()`). The node limit is enforced at the *reservation*
//! point in `cmk` — the exact analogue of the sequential `mk`, which
//! checks `live_nodes() >= limit` before allocating — using
//! `master_live + reserved`. On any trip the commit is skipped wholesale,
//! leaving the master table untouched, so the recovery ladder can GC and
//! retry exactly as it does for a failed sequential operation.
//!
//! # GC safepoint protocol
//!
//! Collections only ever run between top-level operations, and a parallel
//! operation joins all its workers before returning. The join *is* the
//! quiescence point: when a GC runs, no worker holds a reference into the
//! arena. The kernel (allocator, shard maps, caches) is operation-local
//! and dropped — or fully committed — before any GC can observe it.

use crate::budget::{BddError, Budget, CancelToken, PermutationFlaw};
use crate::node::{Permutation, NIL};
use crate::ops::BinOp;
use crate::table::{triple_hash, CacheOp, Inner};
use std::collections::{HashMap, VecDeque};
use jedd_sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use jedd_sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Number of unique-table shards and cache stripes (a power of two).
const NUM_SHARDS: usize = 64;
/// Levels of the recursion tree unrolled by the split phase: at most
/// `2^SPLIT_DEPTH` leaf paths, deduplicated into tasks. This is the
/// subproblem granularity cutoff — everything below a task stays
/// sequential within one worker, so small subtrees never pay
/// synchronisation costs.
const SPLIT_DEPTH: u32 = 8;
/// Direct-mapped slots per shared-cache stripe.
const STRIPE_SLOTS: usize = 1 << 12;
/// Direct-mapped slots of each worker's private L1 cache.
const L1_SLOTS: usize = 1 << 12;
/// log2 of the node-allocator segment size.
const SEG_BITS: usize = 16;
/// Nodes per allocator segment.
const SEG_SIZE: usize = 1 << SEG_BITS;
/// Maximum segments per operation (2^28 new nodes — far above any real
/// single-operation result; the arena itself holds at most 2^32 ids).
const SEGMENTS: usize = 1 << 12;

#[inline]
fn cache_hash(op: CacheOp, a: u32, b: u32, c: u32) -> u64 {
    triple_hash(a ^ ((op as u32) << 24), b, c)
}

/// The lock-free node allocator of one parallel operation. Workers
/// reserve ids `base + i` with a CAS on `count` and publish the triple
/// into a lazily initialised segment; the commit phase reads the triples
/// back in reservation order. Ids above `base` are only ever *shared*
/// through synchronising channels (the shard mutexes, the striped cache
/// mutexes, `Release`/`Acquire` result slots, or the final join), so the
/// relaxed per-word atomics are never read before the writing thread's
/// stores are visible.
struct NodeAlloc {
    /// Master arena length at operation entry; the first fresh id.
    base: u32,
    /// Nodes reserved so far.
    count: AtomicUsize,
    /// Triple storage: `(level, low, high)` interleaved, 3 words per node.
    segs: Vec<OnceLock<Box<[AtomicU32]>>>,
}

impl NodeAlloc {
    fn new(base: u32) -> NodeAlloc {
        NodeAlloc {
            base,
            count: AtomicUsize::new(0),
            segs: (0..SEGMENTS).map(|_| OnceLock::new()).collect(),
        }
    }

    fn write(&self, i: usize, level: u32, low: u32, high: u32) {
        let seg = i >> SEG_BITS;
        assert!(seg < SEGMENTS, "parallel node allocator overflow");
        let s = self.segs[seg].get_or_init(|| {
            (0..SEG_SIZE * 3)
                .map(|_| AtomicU32::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        let off = (i & (SEG_SIZE - 1)) * 3;
        s[off].store(level, Ordering::Relaxed);
        s[off + 1].store(low, Ordering::Relaxed);
        s[off + 2].store(high, Ordering::Relaxed);
    }

    fn read(&self, i: usize) -> (u32, u32, u32) {
        let s = self.segs[i >> SEG_BITS]
            .get()
            .expect("reading an unpublished parallel node");
        let off = (i & (SEG_SIZE - 1)) * 3;
        (
            s[off].load(Ordering::Relaxed),
            s[off + 1].load(Ordering::Relaxed),
            s[off + 2].load(Ordering::Relaxed),
        )
    }
}

#[derive(Clone, Copy)]
struct CEntry {
    op: CacheOp,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
}

impl CEntry {
    const EMPTY: CEntry = CEntry {
        op: CacheOp::None,
        a: NIL,
        b: NIL,
        c: NIL,
        result: NIL,
    };
}

/// The striped shared operation cache: [`NUM_SHARDS`] stripes of
/// direct-mapped entries, each behind its own mutex. Sharing results
/// across workers is what keeps the parallel engine's total work close to
/// the sequential `O(|f||g|)` bound when subproblems overlap.
struct ParCache {
    stripes: Vec<Mutex<Vec<CEntry>>>,
}

impl ParCache {
    fn new() -> ParCache {
        ParCache {
            stripes: (0..NUM_SHARDS)
                .map(|_| Mutex::new(vec![CEntry::EMPTY; STRIPE_SLOTS]))
                .collect(),
        }
    }

    fn get(&self, h: u64, op: CacheOp, a: u32, b: u32, c: u32) -> Option<u32> {
        let stripe = self.stripes[(h >> 40) as usize & (NUM_SHARDS - 1)]
            .lock();
        let e = stripe[h as usize & (STRIPE_SLOTS - 1)];
        if e.op == op && e.a == a && e.b == b && e.c == c {
            Some(e.result)
        } else {
            None
        }
    }

    fn put(&self, h: u64, e: CEntry) {
        let mut stripe = self.stripes[(h >> 40) as usize & (NUM_SHARDS - 1)]
            .lock();
        stripe[h as usize & (STRIPE_SLOTS - 1)] = e;
    }
}

/// The shared governor: per-worker budget counters flush here, and the
/// first tripped limit aborts every worker at its next check.
struct SharedGov {
    /// Mirrors the master's `checks_active` at operation entry.
    active: bool,
    abort: AtomicBool,
    /// Recursion steps of the current top-level op (master steps taken so
    /// far seed the counter; workers add their flushed batches). Batch
    /// expressions use per-expression counters instead — each expression
    /// mirrors a sequential top-level operation's fresh counter.
    steps: AtomicU64,
    max_steps: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    node_limit: Option<usize>,
    master_live: usize,
    error: Mutex<Option<BddError>>,
}

impl SharedGov {
    fn new(inner: &Inner) -> SharedGov {
        let budget = inner.budget();
        SharedGov {
            active: inner.checks_active(),
            abort: AtomicBool::new(false),
            steps: AtomicU64::new(inner.op_steps()),
            max_steps: budget.max_steps,
            deadline: budget.deadline,
            cancel: budget.cancel,
            node_limit: budget.max_live_nodes,
            master_live: inner.live_nodes(),
            error: Mutex::new(None),
        }
    }

    #[inline]
    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// Records the first error and raises the abort flag. Later errors are
    /// dropped — the first trip is the one reported, matching the
    /// sequential engine's single-error semantics.
    fn trip(&self, e: BddError) -> BddError {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.abort.store(true, Ordering::Release);
        e
    }

    fn take_error(&self) -> Option<BddError> {
        self.error.lock().take()
    }
}

/// All shared state of one parallel operation: the node allocator, the
/// sharded unique table over the new triples, the striped op cache and
/// the governor. Deliberately holds no borrow of [`Inner`], so the owner
/// regains `&mut self` for the commit after the worker scope joins.
/// One shard of the fresh-node unique table: `(level, low, high)` → id.
type FreshShard = Mutex<HashMap<(u32, u32, u32), u32>>;

struct Kernel {
    alloc: NodeAlloc,
    shards: Vec<FreshShard>,
    cache: ParCache,
    gov: SharedGov,
}

impl Kernel {
    fn new(inner: &Inner) -> Kernel {
        Kernel {
            alloc: NodeAlloc::new(inner.nodes.len() as u32),
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            cache: ParCache::new(),
            gov: SharedGov::new(inner),
        }
    }
}

/// What a parallel operation computes; carried by every worker.
#[derive(Clone, Copy)]
pub(crate) enum Job<'p> {
    /// A binary boolean operation.
    Bin(BinOp),
    /// `exists cube. f` — `cube` already skipped above `f`'s top level.
    Exists {
        /// Master id of the (pre-skipped) positive cube.
        cube: u32,
    },
    /// The fused relational product `exists cube. (f & g)`.
    AndExists {
        /// Master id of the (pre-skipped) positive cube.
        cube: u32,
    },
    /// Variable replacement under an interned permutation.
    Replace {
        /// The permutation (borrowed from the caller).
        perm: &'p Permutation,
        /// Its interned id, the `CacheOp::Replace` cache key.
        pid: u32,
    },
}

/// Outcome of a parallel attempt: either the finished master id, or a
/// deterministic decision to fall back to the sequential recursion
/// (e.g. the split produced fewer than two distinct tasks).
pub(crate) enum ParAttempt {
    /// The operation ran on the work pool; here is the master result.
    Done(u32),
    /// Not worth parallelising — caller should run the sequential path.
    Fallback,
}

enum PlanNode {
    /// Resolved during the split (terminal case or trivial operand).
    Done(u32),
    /// Index into the task list; the worker's result is the master id.
    Task(u32),
    /// Combine children with `mk` at this level (canonical order: lo, hi).
    Mk { level: u32, lo: u32, hi: u32 },
}

struct Plan {
    nodes: Vec<PlanNode>,
    tasks: Vec<(u32, u32)>,
    root: u32,
}

/// Unrolls the top `SPLIT_DEPTH` levels of the operation's recursion,
/// mirroring the sequential cofactoring exactly, and deduplicates the leaf
/// subproblems. Reads the master table only; fully deterministic.
fn build_plan(inner: &Inner, job: &Job, a: u32, b: u32, limit: u32) -> Plan {
    let mut plan = Plan {
        nodes: Vec::new(),
        tasks: Vec::new(),
        root: 0,
    };
    let mut dedup: HashMap<(u32, u32), u32> = HashMap::new();
    plan.root = expand(inner, job, &mut plan, &mut dedup, a, b, limit, SPLIT_DEPTH);
    plan
}

fn immediate(job: &Job, a: u32, b: u32) -> Option<u32> {
    match job {
        Job::Bin(op) => op.terminal_case(a, b),
        Job::Exists { .. } | Job::Replace { .. } => {
            if a <= 1 {
                Some(a)
            } else {
                None
            }
        }
        Job::AndExists { .. } => {
            if a == 0 || b == 0 {
                Some(0)
            } else if a == 1 && b == 1 {
                Some(1)
            } else {
                None
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn expand(
    inner: &Inner,
    job: &Job,
    plan: &mut Plan,
    dedup: &mut HashMap<(u32, u32), u32>,
    a: u32,
    b: u32,
    limit: u32,
    depth: u32,
) -> u32 {
    let node = if let Some(r) = immediate(job, a, b) {
        PlanNode::Done(r)
    } else {
        let pair_op = matches!(job, Job::Bin(_) | Job::AndExists { .. });
        let m = if pair_op {
            inner.level(a).min(inner.level(b))
        } else {
            inner.level(a)
        };
        if depth == 0 || m >= limit {
            let next = plan.tasks.len() as u32;
            let t = *dedup.entry((a, b)).or_insert_with(|| {
                plan.tasks.push((a, b));
                next
            });
            PlanNode::Task(t)
        } else {
            let (a0, a1) = if inner.level(a) == m {
                (inner.low(a), inner.high(a))
            } else {
                (a, a)
            };
            let (b0, b1) = if pair_op && inner.level(b) == m {
                (inner.low(b), inner.high(b))
            } else {
                (b, b)
            };
            let lo = expand(inner, job, plan, dedup, a0, b0, limit, depth - 1);
            let hi = expand(inner, job, plan, dedup, a1, b1, limit, depth - 1);
            PlanNode::Mk { level: m, lo, hi }
        }
    };
    plan.nodes.push(node);
    (plan.nodes.len() - 1) as u32
}

/// Per-worker counters, merged into [`crate::KernelStats`] after the join.
/// Each worker's `lookups >= hits` invariant holds locally, so it holds
/// for the merged totals too — no interleaving can undercount lookups.
#[derive(Clone, Copy)]
struct WorkerStats {
    steps: u64,
    lookups: u64,
    hits: u64,
    per_op: [(u64, u64); 10],
    created: u64,
    unique_hits: u64,
    steals: u64,
}

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            steps: 0,
            lookups: 0,
            hits: 0,
            per_op: [(0, 0); 10],
            created: 0,
            unique_hits: 0,
            steals: 0,
        }
    }
}

/// One worker's view of the kernel: the frozen master table, the shared
/// allocator/unique-table/cache, a step counter to flush into (the
/// governor's op-wide counter for split tasks, a per-expression counter
/// in batch mode) and the private L1 cache.
struct Worker<'a> {
    inner: &'a Inner,
    k: &'a Kernel,
    /// Where flushed step batches accumulate for the step-limit check.
    steps_ctr: &'a AtomicU64,
    stats: WorkerStats,
    l1: Vec<CEntry>,
    /// Steps since the last governor flush.
    pending: u64,
}

impl<'a> Worker<'a> {
    fn new(inner: &'a Inner, k: &'a Kernel, steps_ctr: &'a AtomicU64) -> Worker<'a> {
        Worker {
            inner,
            k,
            steps_ctr,
            stats: WorkerStats::new(),
            l1: vec![CEntry::EMPTY; L1_SLOTS],
            pending: 0,
        }
    }

    /// Reads a node triple: master ids (below `base`) straight from the
    /// frozen arena, fresh ids from the operation's allocator.
    #[inline]
    fn node3(&self, id: u32) -> (u32, u32, u32) {
        if id < self.k.alloc.base {
            let inner = self.inner;
            (inner.level(id), inner.low(id), inner.high(id))
        } else {
            self.k.alloc.read((id - self.k.alloc.base) as usize)
        }
    }

    #[inline]
    fn level_any(&self, id: u32) -> u32 {
        if id < self.k.alloc.base {
            self.inner.level(id)
        } else {
            self.k.alloc.read((id - self.k.alloc.base) as usize).0
        }
    }

    /// One recursion step: counts locally, flushes to the shared governor
    /// every [`Budget::CHECK_INTERVAL`] steps.
    #[inline]
    fn tick(&mut self) -> Result<(), BddError> {
        self.stats.steps += 1;
        self.pending += 1;
        if self.pending >= Budget::CHECK_INTERVAL {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes the pending step batch and probes the step, cancellation
    /// and deadline limits — the same comparisons, in the same order, as
    /// the sequential `Inner::step`. The node limit is *not* probed here:
    /// the sequential governor only checks it at the allocation point
    /// (`mk`), and [`Worker::cmk`] is that point for workers. An abort
    /// raised by another worker surfaces as `Cancelled` here; the
    /// authoritative error is whatever the first tripping worker recorded.
    fn flush(&mut self) -> Result<(), BddError> {
        let gov = &self.k.gov;
        let pending = std::mem::take(&mut self.pending);
        if gov.aborted() {
            return Err(BddError::Cancelled);
        }
        if !gov.active {
            return Ok(());
        }
        let total = self.steps_ctr.fetch_add(pending, Ordering::Relaxed) + pending;
        if let Some(limit) = gov.max_steps {
            if total > limit {
                return Err(gov.trip(BddError::StepLimit { steps: total, limit }));
            }
        }
        if let Some(token) = &gov.cancel {
            if token.is_cancelled() {
                return Err(gov.trip(BddError::Cancelled));
            }
        }
        if let Some(deadline) = gov.deadline {
            if Instant::now() >= deadline {
                return Err(gov.trip(BddError::Deadline));
            }
        }
        Ok(())
    }

    /// Concurrent `mk`: the reduction rule, a lock-free probe of the
    /// frozen master table (master nodes only reference ids below `base`,
    /// so the probe fires exactly when the triple could already exist
    /// there), then find-or-reserve through the shard map. The node
    /// budget is enforced before the reservation, mirroring the
    /// sequential `mk`'s check-before-alloc semantics: the tripped error
    /// reports `master_live + reserved` as the live count.
    fn cmk(&mut self, level: u32, low: u32, high: u32) -> Result<u32, BddError> {
        if low == high {
            return Ok(low);
        }
        let base = self.k.alloc.base;
        if low < base && high < base {
            if let Some(id) = self.inner.lookup_frozen(level, low, high) {
                self.stats.unique_hits += 1;
                return Ok(id);
            }
        }
        let h = triple_hash(level, low, high);
        let mut shard = self.k.shards[(h >> 40) as usize & (NUM_SHARDS - 1)]
            .lock();
        if let Some(&id) = shard.get(&(level, low, high)) {
            self.stats.unique_hits += 1;
            return Ok(id);
        }
        let gov = &self.k.gov;
        let mut c = self.k.alloc.count.load(Ordering::Relaxed);
        loop {
            if gov.active {
                if let Some(limit) = gov.node_limit {
                    let live = gov.master_live + c;
                    if live >= limit {
                        return Err(gov.trip(BddError::NodeLimit { live, limit }));
                    }
                }
            }
            match self.k.alloc.count.compare_exchange_weak(
                c,
                c + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => c = cur,
            }
        }
        let id = base + c as u32;
        self.k.alloc.write(c, level, low, high);
        shard.insert((level, low, high), id);
        self.stats.created += 1;
        Ok(id)
    }

    #[inline]
    fn cache_get(&mut self, op: CacheOp, a: u32, b: u32, c: u32) -> Option<u32> {
        self.stats.lookups += 1;
        self.stats.per_op[op as usize - 1].0 += 1;
        let h = cache_hash(op, a, b, c);
        let slot = h as usize & (L1_SLOTS - 1);
        let e = self.l1[slot];
        if e.op == op && e.a == a && e.b == b && e.c == c {
            self.stats.hits += 1;
            self.stats.per_op[op as usize - 1].1 += 1;
            return Some(e.result);
        }
        if let Some(r) = self.k.cache.get(h, op, a, b, c) {
            self.l1[slot] = CEntry { op, a, b, c, result: r };
            self.stats.hits += 1;
            self.stats.per_op[op as usize - 1].1 += 1;
            return Some(r);
        }
        None
    }

    #[inline]
    fn cache_put(&mut self, op: CacheOp, a: u32, b: u32, c: u32, result: u32) {
        let h = cache_hash(op, a, b, c);
        let e = CEntry { op, a, b, c, result };
        self.l1[h as usize & (L1_SLOTS - 1)] = e;
        self.k.cache.put(h, e);
    }

    /// Bryant apply. Operands may be master ids or (in batch mode, where
    /// an expression's inputs can be results of earlier expressions)
    /// fresh ids from this operation's allocator.
    fn wapply(&mut self, op: BinOp, a: u32, b: u32) -> Result<u32, BddError> {
        if let Some(r) = op.terminal_case(a, b) {
            return Ok(r);
        }
        self.tick()?;
        let (ka, kb) = if op.commutative() && a > b { (b, a) } else { (a, b) };
        if let Some(r) = self.cache_get(op.cache_op(), ka, kb, 0) {
            return Ok(r);
        }
        let (la, alo, ahi) = self.node3(a);
        let (lb, blo, bhi) = self.node3(b);
        let m = la.min(lb);
        let (a0, a1) = if la == m { (alo, ahi) } else { (a, a) };
        let (b0, b1) = if lb == m { (blo, bhi) } else { (b, b) };
        let r0 = self.wapply(op, a0, b0)?;
        let r1 = self.wapply(op, a1, b1)?;
        let r = self.cmk(m, r0, r1)?;
        self.cache_put(op.cache_op(), ka, kb, 0, r);
        Ok(r)
    }

    /// Existential quantification; mirrors `Inner::exists`. The cube is
    /// always a master node (built before the workers start).
    fn wexists(&mut self, f: u32, cube: u32) -> Result<u32, BddError> {
        if f <= 1 || cube == 1 {
            return Ok(f);
        }
        self.tick()?;
        let inner = self.inner;
        let (lf, f0, f1) = self.node3(f);
        let mut c = cube;
        while c != 1 && inner.level(c) < lf {
            c = inner.high(c);
        }
        if c == 1 {
            return Ok(f);
        }
        if let Some(r) = self.cache_get(CacheOp::Exists, f, c, 0) {
            return Ok(r);
        }
        let lc = inner.level(c);
        let r = if lf == lc {
            let next = inner.high(c);
            let r0 = self.wexists(f0, next)?;
            let r1 = self.wexists(f1, next)?;
            self.wapply(BinOp::Or, r0, r1)?
        } else {
            debug_assert!(lf < lc);
            let r0 = self.wexists(f0, c)?;
            let r1 = self.wexists(f1, c)?;
            self.cmk(lf, r0, r1)?
        };
        self.cache_put(CacheOp::Exists, f, c, 0, r);
        Ok(r)
    }

    /// Fused relational product; mirrors `Inner::and_exists`.
    fn wand_exists(&mut self, f: u32, g: u32, cube: u32) -> Result<u32, BddError> {
        if f == 0 || g == 0 {
            return Ok(0);
        }
        if cube == 1 {
            return self.wapply(BinOp::And, f, g);
        }
        if f == 1 && g == 1 {
            return Ok(1);
        }
        self.tick()?;
        let inner = self.inner;
        let (f, g) = if f > g { (g, f) } else { (f, g) };
        let (lf, flo, fhi) = self.node3(f);
        let (lg, glo, ghi) = self.node3(g);
        let m = lf.min(lg);
        let mut c = cube;
        while c != 1 && inner.level(c) < m {
            c = inner.high(c);
        }
        if c == 1 {
            return self.wapply(BinOp::And, f, g);
        }
        if let Some(r) = self.cache_get(CacheOp::AndExists, f, g, c) {
            return Ok(r);
        }
        let (f0, f1) = if lf == m { (flo, fhi) } else { (f, f) };
        let (g0, g1) = if lg == m { (glo, ghi) } else { (g, g) };
        let r = if inner.level(c) == m {
            let next = inner.high(c);
            let r0 = self.wand_exists(f0, g0, next)?;
            if r0 == 1 {
                1
            } else {
                let r1 = self.wand_exists(f1, g1, next)?;
                self.wapply(BinOp::Or, r0, r1)?
            }
        } else {
            let r0 = self.wand_exists(f0, g0, c)?;
            let r1 = self.wand_exists(f1, g1, c)?;
            self.cmk(m, r0, r1)?
        };
        self.cache_put(CacheOp::AndExists, f, g, c, r);
        Ok(r)
    }

    /// Variable replacement; mirrors `Inner::replace_rec`, with the
    /// order-reversing fallback going through the worker's `ite`.
    fn wreplace(&mut self, f: u32, perm: &Permutation, pid: u32) -> Result<u32, BddError> {
        if f <= 1 {
            return Ok(f);
        }
        self.tick()?;
        if let Some(r) = self.cache_get(CacheOp::Replace, f, pid, 0) {
            return Ok(r);
        }
        let (lf, lo, hi) = self.node3(f);
        let lo2 = self.wreplace(lo, perm, pid)?;
        let hi2 = self.wreplace(hi, perm, pid)?;
        let inner = self.inner;
        let new_var = perm.apply(inner.var_at_level(lf));
        let new_level = inner.level_of_var(new_var);
        let r = if new_level < self.level_any(lo2) && new_level < self.level_any(hi2) {
            self.cmk(new_level, lo2, hi2)?
        } else {
            let var = self.cmk(new_level, 0, 1)?;
            self.wite(var, hi2, lo2)?
        };
        self.cache_put(CacheOp::Replace, f, pid, 0, r);
        Ok(r)
    }

    /// If-then-else; mirrors `Inner::ite`. Only reachable from the
    /// order-reversing branch of `wreplace`.
    fn wite(&mut self, f: u32, g: u32, h: u32) -> Result<u32, BddError> {
        if f == 1 {
            return Ok(g);
        }
        if f == 0 {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == 1 && h == 0 {
            return Ok(f);
        }
        self.tick()?;
        if let Some(r) = self.cache_get(CacheOp::Ite, f, g, h) {
            return Ok(r);
        }
        let (lf, flo, fhi) = self.node3(f);
        let (lg, glo, ghi) = self.node3(g);
        let (lh, hlo, hhi) = self.node3(h);
        let m = lf.min(lg).min(lh);
        let (f0, f1) = if lf == m { (flo, fhi) } else { (f, f) };
        let (g0, g1) = if lg == m { (glo, ghi) } else { (g, g) };
        let (h0, h1) = if lh == m { (hlo, hhi) } else { (h, h) };
        let r0 = self.wite(f0, g0, h0)?;
        let r1 = self.wite(f1, g1, h1)?;
        let r = self.cmk(m, r0, r1)?;
        self.cache_put(CacheOp::Ite, f, g, h, r);
        Ok(r)
    }

    /// Mirrors `Inner::validate_replace` for operands that may live in the
    /// operation's allocator: walks the support through [`Worker::node3`]
    /// and reports the same typed errors, routed through the governor so
    /// the whole batch aborts with the sequential path's error.
    fn wvalidate_replace(&mut self, f: u32, perm: &Permutation) -> Result<(), BddError> {
        let mut vars = std::collections::BTreeSet::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if id <= 1 || !seen.insert(id) {
                continue;
            }
            let (level, lo, hi) = self.node3(id);
            vars.insert(self.inner.var_at_level(level));
            stack.push(lo);
            stack.push(hi);
        }
        let mut targets: Vec<u32> = vars.iter().map(|&v| perm.apply(v)).collect();
        targets.sort_unstable();
        for w in targets.windows(2) {
            if w[0] == w[1] {
                return Err(self.k.gov.trip(BddError::InvalidPermutation {
                    var: w[0],
                    kind: PermutationFlaw::DuplicateTarget,
                }));
            }
        }
        for &t in &targets {
            if t >= self.inner.num_vars() {
                return Err(self.k.gov.trip(BddError::InvalidPermutation {
                    var: t,
                    kind: PermutationFlaw::OutOfRange,
                }));
            }
        }
        Ok(())
    }
}

/// Everything the split-task workers borrow for the parallel phase.
struct OpShared<'a, 'p> {
    inner: &'a Inner,
    k: &'a Kernel,
    job: Job<'p>,
    tasks: &'a [(u32, u32)],
    deques: &'a [Mutex<VecDeque<u32>>],
    results: &'a [AtomicU32],
}

/// Pops from the worker's own deque front, then steals from the back of
/// the other deques (round-robin from the right neighbour).
fn next_task(sh: &OpShared, idx: usize, stats: &mut WorkerStats) -> Option<u32> {
    if let Some(t) = sh.deques[idx].lock().pop_front() {
        return Some(t);
    }
    let n = sh.deques.len();
    for k in 1..n {
        let j = (idx + k) % n;
        if let Some(t) = sh.deques[j].lock().pop_back() {
            stats.steals += 1;
            return Some(t);
        }
    }
    None
}

fn worker_main(sh: &OpShared, idx: usize) -> WorkerStats {
    let mut w = Worker::new(sh.inner, sh.k, &sh.k.gov.steps);
    loop {
        if sh.k.gov.aborted() {
            break;
        }
        let Some(t) = next_task(sh, idx, &mut w.stats) else {
            break;
        };
        let (a, b) = sh.tasks[t as usize];
        let r = match sh.job {
            Job::Bin(op) => w.wapply(op, a, b),
            Job::Exists { cube } => w.wexists(a, cube),
            Job::AndExists { cube } => w.wand_exists(a, b, cube),
            Job::Replace { perm, pid } => w.wreplace(a, perm, pid),
        };
        match r {
            Ok(r) => sh.results[t as usize].store(r, Ordering::Release),
            // The error (if it was this worker's own trip) is already
            // recorded in the governor; stop draining tasks.
            Err(_) => break,
        }
    }
    // Flush the remainder below one check interval: a step limit smaller
    // than the interval must still fire even when every task is tiny.
    let _ = w.flush();
    w.stats
}

fn master_key(job: &Job, a: u32, b: u32) -> (CacheOp, u32, u32, u32) {
    match *job {
        Job::Bin(op) => {
            let (ka, kb) = if op.commutative() && a > b { (b, a) } else { (a, b) };
            (op.cache_op(), ka, kb, 0)
        }
        Job::Exists { cube } => (CacheOp::Exists, a, cube, 0),
        Job::AndExists { cube } => (CacheOp::AndExists, a, b, cube),
        Job::Replace { pid, .. } => (CacheOp::Replace, a, pid, 0),
    }
}

/// One expression of a [`Inner::batch_run`] dependency DAG. Operand
/// indices refer to earlier expressions in the same batch (`d < i`);
/// cube operands are master node ids, `Replace` carries an index into
/// the batch's permutation table.
#[derive(Clone, Copy)]
pub(crate) enum BatchExpr {
    /// An existing master node (an input relation).
    Leaf(u32),
    /// `exprs[a] op exprs[b]`.
    Bin(BinOp, usize, usize),
    /// `exists cube. exprs[f]`.
    Exists(usize, u32),
    /// `exists cube. (exprs[f] & exprs[g])`.
    AndExists(usize, usize, u32),
    /// `replace(exprs[f])` under the batch's `perms[p]`.
    Replace(usize, usize),
}

/// The ready-queue scheduler of one batch: expressions whose operands
/// have all resolved wait in `queue`; workers sleep on `ready_cv` when it
/// runs dry. All completion-side transitions (pending decrements, ready
/// pushes, the remaining count) happen under the queue mutex, so a waiter
/// that re-checks its exit conditions inside the wait loop can never miss
/// a wakeup.
struct BatchSched {
    queue: Mutex<VecDeque<usize>>,
    ready_cv: Condvar,
    /// Unresolved-operand counts, indexed by expression.
    pending: Vec<AtomicUsize>,
    /// Reverse dependency edges: who becomes ready when `i` resolves.
    parents: Vec<Vec<u32>>,
    /// Non-leaf expressions not yet resolved; 0 means everyone can stop.
    remaining: AtomicUsize,
}

/// Everything the batch workers borrow for the parallel phase.
struct BatchShared<'a> {
    inner: &'a Inner,
    k: &'a Kernel,
    exprs: &'a [BatchExpr],
    perms: &'a [Permutation],
    pids: &'a [u32],
    /// Resolved value of each expression (`NIL` until resolved).
    values: &'a [AtomicU32],
    /// Per-expression step counters: each expression mirrors a sequential
    /// top-level operation's fresh `begin_op` counter, so a step limit
    /// trips at the same per-operation granularity as threads = 1.
    steps: &'a [AtomicU64],
    sched: &'a BatchSched,
}

fn eval_expr(w: &mut Worker, sh: &BatchShared, i: usize) -> Result<u32, BddError> {
    let val = |d: usize| {
        let v = sh.values[d].load(Ordering::Acquire);
        debug_assert_ne!(v, NIL, "batch expression scheduled before its operands");
        v
    };
    match sh.exprs[i] {
        BatchExpr::Leaf(id) => Ok(id),
        BatchExpr::Bin(op, a, b) => w.wapply(op, val(a), val(b)),
        BatchExpr::Exists(f, cube) => w.wexists(val(f), cube),
        BatchExpr::AndExists(f, g, cube) => w.wand_exists(val(f), val(g), cube),
        BatchExpr::Replace(f, p) => {
            let fv = val(f);
            let perm = &sh.perms[p];
            if perm.is_identity() || fv <= 1 {
                return Ok(fv);
            }
            w.wvalidate_replace(fv, perm)?;
            w.wreplace(fv, perm, sh.pids[p])
        }
    }
}

fn batch_worker(sh: &BatchShared) -> WorkerStats {
    let mut w = Worker::new(sh.inner, sh.k, &sh.k.gov.steps);
    loop {
        let i = {
            let mut q = sh.sched.queue.lock();
            loop {
                if sh.k.gov.aborted() || sh.sched.remaining.load(Ordering::Relaxed) == 0 {
                    drop(q);
                    let _ = w.flush();
                    return w.stats;
                }
                if let Some(i) = q.pop_front() {
                    break i;
                }
                q = sh.sched.ready_cv.wait(q);
            }
        };
        w.steps_ctr = &sh.steps[i];
        // Flush inside the expression's own counter before moving on, so
        // sub-interval step limits fire per expression like a sequential
        // top-level op's final accounting.
        match eval_expr(&mut w, sh, i).and_then(|r| {
            w.flush()?;
            Ok(r)
        }) {
            Ok(r) => {
                sh.values[i].store(r, Ordering::Release);
                let mut q = sh.sched.queue.lock();
                for &p in &sh.sched.parents[i] {
                    if sh.sched.pending[p as usize].fetch_sub(1, Ordering::Relaxed) == 1 {
                        q.push_back(p as usize);
                    }
                }
                sh.sched.remaining.fetch_sub(1, Ordering::Relaxed);
                sh.sched.ready_cv.notify_all();
            }
            Err(_) => {
                // The governor already recorded the trip (or another
                // worker's); wake everyone so they observe the abort.
                let _q = sh.sched.queue.lock();
                sh.sched.ready_cv.notify_all();
                return w.stats;
            }
        }
    }
}

impl Inner {
    /// `true` when the parallel engine is switched on (resolved thread
    /// count >= 2). The *worker* count additionally clamps to the
    /// hardware parallelism; the engine stays engaged even when the clamp
    /// lands on one worker, so engagement remains a pure function of the
    /// requested configuration.
    pub(crate) fn par_enabled(&self) -> bool {
        // Chain-reduced managers always take the sequential path: the
        // frozen-table worker protocol hashes plain triples and cannot
        // intern chain tails created by cofactoring. Paged managers do
        // too: workers read the frozen master arena lock-free through
        // direct slot references, which a faulting buffer pool cannot
        // hand out.
        self.par_threads() >= 2 && !self.chain_mode() && !self.paged()
    }

    /// Resolves the worker count for one parallel operation against the
    /// task count and the hardware clamp, recording both the effective
    /// count and any clamp event into the stats.
    fn resolve_workers(&mut self, tasks: usize) -> usize {
        let requested = self.par_threads();
        let configured = self.par_workers();
        self.stats.par_threads_effective = configured as u64;
        if requested > configured {
            self.stats.par_thread_clamps += 1;
        }
        configured.min(tasks).max(1)
    }

    /// Merges per-worker counters into the shared [`crate::KernelStats`].
    /// Sums are order-independent, so the merged stats keep their
    /// invariants (`lookups >= hits`) regardless of scheduling. Worker
    /// steps are added to the op-wide governed counter only when
    /// `op_wide` is set — batch expressions keep per-expression counters
    /// and must not inflate the surrounding operation's step count.
    fn merge_worker_stats(&mut self, worker_stats: &[WorkerStats], active: bool, op_wide: bool) {
        let mut steps = 0u64;
        for w in worker_stats {
            steps += w.steps;
            self.stats.cache_lookups += w.lookups;
            self.stats.cache_hits += w.hits;
            for (i, &(l, h)) in w.per_op.iter().enumerate() {
                self.stats.per_op_cache[i].lookups += l;
                self.stats.per_op_cache[i].hits += h;
            }
            self.stats.unique_hits += w.unique_hits;
            self.stats.par_steals += w.steals;
        }
        if active {
            self.stats.governed_steps += steps;
            if op_wide {
                self.add_op_steps(steps);
            }
        }
    }

    /// Commits the kernel's reserved node block into the master arena.
    /// Skipped entirely by the callers on a governor trip: the reserved
    /// triples are discarded with the kernel and the master table is
    /// untouched, so the recovery ladder can retry wholesale.
    fn commit_kernel(&mut self, k: &Kernel) {
        let count = k.alloc.count.load(Ordering::Relaxed);
        let created = self.commit_par_nodes(k.alloc.base, (0..count).map(|i| k.alloc.read(i)));
        self.stats.par_shared_nodes += created;
    }

    /// Runs one top-level operation on the work pool. `a`/`b` are the
    /// (pre-normalised) operands, `limit` the first level splitting must
    /// not cross. Returns `Fallback` when the split yields fewer than two
    /// distinct tasks — a structural property of the operands, so the
    /// decision is identical for every thread count.
    pub(crate) fn par_run(
        &mut self,
        job: Job,
        a: u32,
        b: u32,
        limit: u32,
    ) -> Result<ParAttempt, BddError> {
        // A warm master cache answers repeated top-level operations (the
        // fixpoint engines re-issue many) without spawning anything.
        let (ck, ka, kb, kc) = master_key(&job, a, b);
        if let Some(r) = self.cache_lookup(ck, ka, kb, kc) {
            return Ok(ParAttempt::Done(r));
        }
        let plan = build_plan(self, &job, a, b, limit);
        if plan.tasks.len() < 2 {
            return Ok(ParAttempt::Fallback);
        }
        let workers = self.resolve_workers(plan.tasks.len());
        let k = Kernel::new(self);
        let results: Vec<AtomicU32> =
            (0..plan.tasks.len()).map(|_| AtomicU32::new(NIL)).collect();
        // Deal tasks round-robin; dealing order is deterministic, and
        // stealing only redistributes who computes a task, never what it
        // computes.
        let deques: Vec<Mutex<VecDeque<u32>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (t, dq) in (0..plan.tasks.len() as u32).zip((0..workers).cycle()) {
            deques[dq].lock().push_back(t);
        }
        let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(workers);
        {
            let shared = OpShared {
                inner: &*self,
                k: &k,
                job,
                tasks: &plan.tasks,
                deques: &deques,
                results: &results,
            };
            jedd_sync::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|i| {
                        let sh = &shared;
                        s.spawn(move || worker_main(sh, i))
                    })
                    .collect();
                for h in handles {
                    worker_stats.push(h.join().expect("parallel worker panicked"));
                }
            });
        }
        self.merge_worker_stats(&worker_stats, k.gov.active, true);
        self.stats.par_ops += 1;
        self.stats.par_tasks += plan.tasks.len() as u64;
        if let Some(e) = k.gov.take_error() {
            return Err(e);
        }
        // The join makes every worker's triples visible; committing the
        // reserved block turns the ids the workers handed out into real
        // arena nodes before the plan recombination reads them.
        self.commit_kernel(&k);
        let r = self.emit_plan(&plan, plan.root, &results)?;
        self.cache_store(ck, ka, kb, kc, r);
        Ok(ParAttempt::Done(r))
    }

    fn emit_plan(&mut self, plan: &Plan, idx: u32, results: &[AtomicU32]) -> Result<u32, BddError> {
        match plan.nodes[idx as usize] {
            PlanNode::Done(id) => Ok(id),
            PlanNode::Task(t) => {
                let r = results[t as usize].load(Ordering::Acquire);
                debug_assert_ne!(r, NIL, "parallel task finished without a result");
                Ok(r)
            }
            PlanNode::Mk { level, lo, hi } => {
                let l = self.emit_plan(plan, lo, results)?;
                let h = self.emit_plan(plan, hi, results)?;
                self.mk(level, l, h)
            }
        }
    }

    /// Evaluates a DAG of *independent* top-level expressions (one
    /// fixpoint round's delta rules) concurrently on the shared kernel:
    /// each non-leaf expression is a unit of work, dispatched as its
    /// operands resolve. Returns the master ids of all expressions in
    /// input order. Sequential fallback is the caller's job (this method
    /// always runs the concurrent engine; callers gate on
    /// [`Inner::par_enabled`]).
    pub(crate) fn batch_run(
        &mut self,
        exprs: &[BatchExpr],
        perms: &[Permutation],
    ) -> Result<Vec<u32>, BddError> {
        let pids: Vec<u32> = perms.iter().map(|p| self.intern_permutation(p)).collect();
        let values: Vec<AtomicU32> = (0..exprs.len()).map(|_| AtomicU32::new(NIL)).collect();
        let mut deps: Vec<[Option<usize>; 2]> = Vec::with_capacity(exprs.len());
        for (i, e) in exprs.iter().enumerate() {
            let d = match *e {
                BatchExpr::Leaf(id) => {
                    values[i].store(id, Ordering::Relaxed);
                    [None, None]
                }
                BatchExpr::Bin(_, a, b) | BatchExpr::AndExists(a, b, _) => [Some(a), Some(b)],
                BatchExpr::Exists(f, _) | BatchExpr::Replace(f, _) => [Some(f), None],
            };
            for dep in d.into_iter().flatten() {
                assert!(dep < i, "batch expression depends on a later expression");
            }
            deps.push(d);
        }
        let is_leaf = |j: usize| matches!(exprs[j], BatchExpr::Leaf(_));
        let mut parents: Vec<Vec<u32>> = vec![Vec::new(); exprs.len()];
        let mut pending: Vec<AtomicUsize> = Vec::with_capacity(exprs.len());
        let mut ready: VecDeque<usize> = VecDeque::new();
        let mut todo = 0usize;
        for (i, d) in deps.iter().enumerate() {
            if is_leaf(i) {
                pending.push(AtomicUsize::new(0));
                continue;
            }
            // Leaf operands resolve before any worker starts, so only
            // non-leaf operands gate readiness.
            let mut n = 0;
            for dep in d.iter().flatten() {
                if !is_leaf(*dep) {
                    parents[*dep].push(i as u32);
                    n += 1;
                }
            }
            pending.push(AtomicUsize::new(n));
            if n == 0 {
                ready.push_back(i);
            }
            todo += 1;
        }
        if todo == 0 {
            return Ok(values.iter().map(|v| v.load(Ordering::Relaxed)).collect());
        }
        let workers = self.resolve_workers(todo);
        let k = Kernel::new(self);
        let steps: Vec<AtomicU64> = (0..exprs.len()).map(|_| AtomicU64::new(0)).collect();
        let sched = BatchSched {
            queue: Mutex::new(ready),
            ready_cv: Condvar::new(),
            pending,
            parents,
            remaining: AtomicUsize::new(todo),
        };
        let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(workers);
        {
            let shared = BatchShared {
                inner: &*self,
                k: &k,
                exprs,
                perms,
                pids: &pids,
                values: &values,
                steps: &steps,
                sched: &sched,
            };
            jedd_sync::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let sh = &shared;
                        s.spawn(move || batch_worker(sh))
                    })
                    .collect();
                for h in handles {
                    worker_stats.push(h.join().expect("batch worker panicked"));
                }
            });
        }
        // Batch steps stay per-expression (`op_wide = false`): each
        // expression is its own top-level operation for budget purposes.
        self.merge_worker_stats(&worker_stats, k.gov.active, false);
        self.stats.par_ops += 1;
        self.stats.par_tasks += todo as u64;
        if let Some(e) = k.gov.take_error() {
            return Err(e);
        }
        self.commit_kernel(&k);
        Ok(values
            .iter()
            .map(|v| {
                let r = v.load(Ordering::Acquire);
                debug_assert_ne!(r, NIL, "batch finished with an unresolved expression");
                r
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Insert races on identical `(level, low, high)` triples must never
    /// yield duplicate nodes: 8 threads hammer the same triple pool in
    /// rotated orders and must agree on every id, the allocator must hold
    /// exactly one node per distinct triple, and the committed arena must
    /// resolve each triple to the id the workers handed out.
    #[test]
    fn concurrent_unique_table_dedups_races() {
        let mut inner = Inner::new(16);
        // Some frozen master nodes so the lock-free probe path is hit too.
        let masters: Vec<u32> = (8..16).map(|l| inner.mk(l, 0, 1).unwrap()).collect();
        // A pool of distinct triples over terminals and master children.
        let mut triples: Vec<(u32, u32, u32)> = Vec::new();
        for level in 0..8u32 {
            for (i, &m) in masters.iter().enumerate() {
                triples.push((level, 0, m));
                triples.push((level, m, 1));
                if i + 1 < masters.len() {
                    triples.push((level, m, masters[i + 1]));
                }
            }
        }
        let k = Kernel::new(&inner);
        let nthreads = 8;
        let ids: Vec<Vec<u32>> = jedd_sync::thread::scope(|s| {
            let handles: Vec<_> = (0..nthreads)
                .map(|t| {
                    let k = &k;
                    let inner = &inner;
                    let triples = &triples;
                    s.spawn(move || {
                        let mut w = Worker::new(inner, k, &k.gov.steps);
                        // Rotate the iteration order per thread so the
                        // same triples race from different directions.
                        let n = triples.len();
                        (0..n)
                            .map(|i| {
                                let (l, lo, hi) = triples[(i + t * 7) % n];
                                w.cmk(l, lo, hi).unwrap()
                            })
                            .collect::<Vec<u32>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Undo each thread's rotation and check exact id agreement.
        let n = triples.len();
        let mut canonical = vec![NIL; n];
        for (t, row) in ids.iter().enumerate() {
            for (i, &id) in row.iter().enumerate() {
                let slot = (i + t * 7) % n;
                if canonical[slot] == NIL {
                    canonical[slot] = id;
                } else {
                    assert_eq!(canonical[slot], id, "duplicate node for triple {slot}");
                }
            }
        }
        // One reservation per distinct triple, never more.
        assert_eq!(k.alloc.count.load(Ordering::Relaxed), n);
        // After the commit, the master table resolves every triple to the
        // exact id the workers handed out.
        let base = k.alloc.base;
        let count = k.alloc.count.load(Ordering::Relaxed);
        inner.commit_par_nodes(base, (0..count).map(|i| k.alloc.read(i)));
        for (slot, &(l, lo, hi)) in triples.iter().enumerate() {
            let id = inner.mk(l, lo, hi).unwrap();
            assert_eq!(id, canonical[slot], "commit re-keyed triple {slot}");
        }
    }
}

/// Model-checked variants of the shard protocols: the same invariants as
/// the threaded tests above, but swept across adversarial interleavings
/// by the `jedd-sync` deterministic scheduler instead of trusting the OS
/// to produce interesting ones.
#[cfg(all(test, feature = "model"))]
mod model_tests {
    use super::*;
    use jedd_sync::model::{self, Config};
    use std::sync::Mutex as StdMutex;

    /// Frozen-base snapshot vs. concurrent shard insert, exhaustively at
    /// two threads: workers probe the frozen master table lock-free while
    /// racing inserts of identical triples through the sharded unique
    /// table. On every explored schedule the threads must agree on every
    /// id, the allocator must hold exactly one reservation per distinct
    /// triple, and the commit must re-key nothing.
    #[test]
    fn frozen_base_vs_shard_insert_is_exhaustively_deduped() {
        let schedules_seen: StdMutex<u64> = StdMutex::new(0);
        let report = model::check(Config::dfs(1), || {
            let mut inner = Inner::new(8);
            // Frozen master nodes: the lock-free probe path must stay
            // coherent while the shards fill underneath it.
            let masters: Vec<u32> =
                (4..8).map(|l| inner.mk(l, 0, 1).unwrap()).collect();
            let mut triples: Vec<(u32, u32, u32)> = Vec::new();
            for level in 0..2u32 {
                for &m in &masters {
                    triples.push((level, 0, m));
                    triples.push((level, m, 1));
                }
            }
            let k = Kernel::new(&inner);
            let nthreads = 2;
            let ids: Vec<Vec<u32>> = jedd_sync::thread::scope(|s| {
                let handles: Vec<_> = (0..nthreads)
                    .map(|t| {
                        let k = &k;
                        let inner = &inner;
                        let triples = &triples;
                        s.spawn(move || {
                            let mut w = Worker::new(inner, k, &k.gov.steps);
                            let n = triples.len();
                            (0..n)
                                .map(|i| {
                                    let (l, lo, hi) = triples[(i + t * 3) % n];
                                    w.cmk(l, lo, hi).unwrap()
                                })
                                .collect::<Vec<u32>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let n = triples.len();
            let mut canonical = vec![NIL; n];
            for (t, row) in ids.iter().enumerate() {
                for (i, &id) in row.iter().enumerate() {
                    let slot = (i + t * 3) % n;
                    if canonical[slot] == NIL {
                        canonical[slot] = id;
                    } else {
                        assert_eq!(canonical[slot], id, "duplicate node for triple {slot}");
                    }
                }
            }
            assert_eq!(k.alloc.count.load(Ordering::Relaxed), n);
            let base = k.alloc.base;
            let count = k.alloc.count.load(Ordering::Relaxed);
            inner.commit_par_nodes(base, (0..count).map(|i| k.alloc.read(i)));
            for (slot, &(l, lo, hi)) in triples.iter().enumerate() {
                assert_eq!(inner.mk(l, lo, hi).unwrap(), canonical[slot]);
            }
            *schedules_seen.lock().unwrap() += 1;
        });
        report.assert_clean();
        assert!(report.complete, "DFS must exhaust the insert-race protocol");
        assert!(report.schedules >= 2, "the race must branch, got {}", report.schedules);
        assert_eq!(*schedules_seen.lock().unwrap(), report.schedules);
    }
}
