//! The node arena, unique table, operation cache and garbage collector.

use crate::arena::Arena;
use crate::budget::{BddError, Budget, FailPlan};
use crate::node::{Node, NodeId, Permutation, FREE_LEVEL, NIL, TERMINAL_LEVEL};
use crate::pager::{PageError, PagerFaults};
use std::path::{Path, PathBuf};

/// Operation tags used as part of cache keys.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub(crate) enum CacheOp {
    And = 1,
    Or = 2,
    Diff = 3,
    Xor = 4,
    Ite = 5,
    Exists = 6,
    AndExists = 7,
    Biimp = 8,
    Replace = 9,
    Subset = 10,
    None = 0,
}

impl CacheOp {
    /// Index into [`KernelStats::per_op_cache`] / `CACHE_OP_NAMES`.
    #[inline]
    fn index(self) -> usize {
        debug_assert!(self != CacheOp::None);
        self as usize - 1
    }
}

#[derive(Clone, Copy)]
struct CacheEntry {
    op: CacheOp,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
}

impl CacheEntry {
    const EMPTY: CacheEntry = CacheEntry {
        op: CacheOp::None,
        a: NIL,
        b: NIL,
        c: NIL,
        result: NIL,
    };
}

/// Per-operation slice of the operation-cache counters (see
/// [`KernelStats::per_op_cache`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCacheStats {
    /// Cache lookups issued by this operation.
    pub lookups: u64,
    /// Cache hits for this operation.
    pub hits: u64,
}

impl OpCacheStats {
    /// Hits as a fraction of lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Counters describing kernel activity, exposed through
/// [`crate::BddManager::kernel_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Nodes created since the manager was built (including reclaimed ones).
    pub nodes_created: u64,
    /// Unique-table hits in `mk` (node already existed).
    pub unique_hits: u64,
    /// Operation-cache hits.
    pub cache_hits: u64,
    /// Operation-cache lookups.
    pub cache_lookups: u64,
    /// Completed garbage collections.
    pub gc_runs: u64,
    /// Nodes reclaimed over all garbage collections.
    pub gc_reclaimed: u64,
    /// Recursion steps taken by governed operations.
    pub governed_steps: u64,
    /// Times the recovery ladder ran a GC after a node-limit hit.
    pub ladder_gc_retries: u64,
    /// Times the recovery ladder ran a reorder after GC was not enough.
    pub ladder_reorder_retries: u64,
    /// Governed operations that failed even after the recovery ladder.
    pub budget_failures: u64,
    /// Cache lookup/hit counters split by operation, in the order of
    /// [`KernelStats::CACHE_OP_NAMES`].
    pub per_op_cache: [OpCacheStats; 10],
    /// Cache sweeps run by the garbage collector.
    pub cache_sweeps: u64,
    /// Cache entries dropped by sweeps (an operand or the result died).
    pub cache_entries_swept: u64,
    /// Cache entries that survived a sweep (all referenced nodes live).
    pub cache_entries_kept: u64,
    /// Top-level operations executed by the parallel apply engine
    /// (`JEDD_THREADS` >= 2 and operands past the size cutoff).
    pub par_ops: u64,
    /// Subproblems (tasks) executed by parallel workers.
    pub par_tasks: u64,
    /// Tasks a parallel worker stole from another worker's deque.
    pub par_steals: u64,
    /// Nodes hash-consed directly into the shared concurrent unique table
    /// by parallel workers (they are committed to the master arena at the
    /// join; there is no scratch address space and no import replay).
    pub par_shared_nodes: u64,
    /// Worker threads the most recent parallel operation actually ran
    /// with, after clamping the configured count to the hardware
    /// parallelism reported by `std::thread::available_parallelism()`.
    pub par_threads_effective: u64,
    /// Parallel operations whose configured thread count exceeded the
    /// hardware parallelism and was clamped down (the oversubscription
    /// footgun: more workers than CPUs only adds contention).
    pub par_thread_clamps: u64,
    /// Chain nodes created (`bot > level`); always zero when chain
    /// reduction is off.
    pub chain_nodes_created: u64,
    /// Sum of chain interval lengths (`bot - level`) over all chain nodes
    /// created; `chain_len_sum / chain_nodes_created` is the mean chain
    /// length.
    pub chain_len_sum: u64,
    /// Longest chain interval created.
    pub chain_len_max: u64,
    /// Node allocations bucketed into sixteenths of the level range — the
    /// profile signal the order-search restarts read to find hot level
    /// regions. Bucket 0 is the top of the order.
    pub level_activity: [u64; 16],
    /// Sum of operand level spans (`num_vars - min operand top level`)
    /// recorded at the entry of each top-level apply / quantification /
    /// replace.
    pub op_span_sum: u64,
    /// Largest operand level span recorded.
    pub op_span_max: u64,
    /// Top-level operations contributing to the span counters.
    pub op_span_samples: u64,
    /// Full sifting sweeps run (`reorder_sift` invocations, including the
    /// ones the order search issues internally). A warm run started from a
    /// persisted learned order must keep this at zero.
    pub sift_sweeps: u64,
    /// Block fault-ins served by the pager (paged managers only). Equal to
    /// [`KernelStats::page_reads`] by construction: fresh blocks are born
    /// resident and count as neither.
    pub page_faults: u64,
    /// Blocks read back from the page file.
    pub page_reads: u64,
    /// Block writes attempted by eviction (counted on attempt, so
    /// `page_evictions <= page_writes` always holds).
    pub page_writes: u64,
    /// Frames successfully evicted to the page file.
    pub page_evictions: u64,
    /// High-water mark of simultaneously resident frames.
    pub page_max_resident: u64,
    /// Schedules explored by `jedd-sync` model-check sessions in this
    /// process (zero outside `--features model` runs; merged from the
    /// shim's process-wide counters at observation time).
    pub sched_schedules: u64,
    /// Forced preemptions injected by the deterministic scheduler.
    pub sched_preemptions: u64,
    /// Data races reported by the vector-clock detector.
    pub sched_races: u64,
    /// Distinct lock-order edges (held-lock → acquired-lock, by
    /// acquisition-site pair) observed by the lock-order graph.
    pub sched_lock_edges: u64,
}

impl KernelStats {
    /// Operation names for [`KernelStats::per_op_cache`], in index order.
    pub const CACHE_OP_NAMES: [&'static str; 10] = [
        "and",
        "or",
        "diff",
        "xor",
        "ite",
        "exists",
        "and_exists",
        "biimp",
        "replace",
        "subset",
    ];

    /// The cache counters for the named operation (one of
    /// [`KernelStats::CACHE_OP_NAMES`]), or `None` for an unknown name.
    pub fn op_cache(&self, name: &str) -> Option<OpCacheStats> {
        Self::CACHE_OP_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.per_op_cache[i])
    }
}

/// Mutable kernel state shared by all handles of one manager.
pub(crate) struct Inner {
    pub(crate) nodes: Arena,
    /// Unique-table bucket heads; chained through `Node::next`.
    buckets: Vec<u32>,
    bucket_mask: usize,
    free_head: u32,
    free_count: usize,
    cache: Vec<CacheEntry>,
    cache_mask: usize,
    /// Occupied (non-empty) cache slots; lets sweeps skip an empty cache.
    cache_occupied: usize,
    /// Interned permutations, giving each distinct `Permutation` a stable
    /// u32 id usable as a `CacheOp::Replace` cache key. Never shrinks.
    perms: Vec<Permutation>,
    num_vars: u32,
    /// Variable -> level position in the current order.
    pub(crate) var2level: Vec<u32>,
    /// Level position -> variable.
    pub(crate) level2var: Vec<u32>,
    pub(crate) stats: KernelStats,
    /// Arena occupancy threshold that triggers a GC attempt at the next
    /// top-level operation.
    gc_hint: usize,
    /// When true, a GC may run at the next safe point.
    pub(crate) gc_enabled: bool,
    /// Set during an adjacent-level swap: bucket growth is deferred
    /// because some nodes are temporarily out of the table.
    pub(crate) in_swap: bool,
    /// Resource limits applied to governed (`try_*`) operations.
    budget: Budget,
    /// Deterministic fault-injection schedule, if installed.
    fail_plan: Option<FailPlan>,
    /// Cached "any check could fire" flag so the ungoverned fast paths in
    /// `mk`/`step`/`cache_store` cost a single branch.
    checks_active: bool,
    /// When true the governor and fail plan are ignored — set while the
    /// recovery ladder itself runs GC/reordering (which allocate nodes).
    governor_suspended: bool,
    /// Recursion steps taken by the current top-level governed operation.
    steps: u64,
    /// Node allocations observed by the fail plan (since installation).
    alloc_count: u64,
    /// Cache inserts observed by the fail plan (since installation).
    cache_insert_count: u64,
    /// Requested worker threads for the parallel apply engine; 1 =
    /// sequential (the seed behaviour), 0 = auto (use every hardware
    /// thread). Seeded from `JEDD_THREADS`. The *effective* worker count
    /// is clamped to `cpus` (see [`Inner::par_workers`]).
    par_threads: usize,
    /// Hardware threads reported by `std::thread::available_parallelism`,
    /// probed once at construction.
    cpus: usize,
    /// Minimum combined operand size (distinct nodes) before a top-level
    /// operation takes the parallel path. Seeded from `JEDD_PAR_CUTOFF`.
    par_cutoff: usize,
    /// Chain reduction (CBDD node semantics). Only settable on an arena
    /// holding nothing but terminals; a chain-mode manager routes every
    /// operation through the sequential kernel and treats its variable
    /// order as static (reordering degrades to a collection).
    chain: bool,
    /// Disk-backed paging (see [`crate::pager`]). Like chain mode, only
    /// settable on an arena holding nothing but terminals; a paged manager
    /// routes every operation through the sequential kernel and keeps its
    /// variable order static. Cached outside the arena so the per-step
    /// sticky-error probe costs one branch for resident managers.
    paged: bool,
}

const INITIAL_BUCKETS: usize = 1 << 12;
const INITIAL_CACHE: usize = 1 << 14;
const MAX_CACHE: usize = 1 << 22;
/// Default parallel engagement cutoff: combined operand node count below
/// which thread spawn/import overhead dwarfs any speedup.
pub(crate) const DEFAULT_PAR_CUTOFF: usize = 8192;

/// Parses a positive integer from the environment; absent, empty or
/// malformed values fall back to the caller's default.
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
}

/// Parses a non-negative integer from the environment. Unlike
/// [`env_usize`], `0` is a valid value — `JEDD_THREADS=0` means "auto"
/// (use every hardware thread) rather than being silently ignored.
fn env_usize_or_zero(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

#[inline]
pub(crate) fn triple_hash(level: u32, low: u32, high: u32) -> u64 {
    // Fibonacci-style mixing of the triple; cheap and well distributed.
    let mut h = (level as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= (low as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= (high as u64).wrapping_mul(0x1656_67b1_9e37_79f9);
    h ^= h >> 29;
    h
}

/// Unique-table hash over the full chain quadruple. Plain nodes have
/// `bot == level`, so a chain-off manager hashes exactly as many distinct
/// keys as before (ids are allocation-order and unaffected either way).
#[inline]
pub(crate) fn node_hash(level: u32, bot: u32, low: u32, high: u32) -> u64 {
    let mut h = ((level as u64) | ((bot as u64) << 32)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= (low as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= (high as u64).wrapping_mul(0x1656_67b1_9e37_79f9);
    h ^= h >> 29;
    h
}

impl Inner {
    pub(crate) fn new(num_vars: u32) -> Inner {
        let mut nodes = Arena::with_capacity(1024);
        nodes.push_resident(Node::terminal()); // FALSE
        nodes.push_resident(Node::terminal()); // TRUE
        Inner {
            nodes,
            buckets: vec![NIL; INITIAL_BUCKETS],
            bucket_mask: INITIAL_BUCKETS - 1,
            free_head: NIL,
            free_count: 0,
            cache: vec![CacheEntry::EMPTY; INITIAL_CACHE],
            cache_mask: INITIAL_CACHE - 1,
            cache_occupied: 0,
            perms: Vec::new(),
            num_vars,
            var2level: (0..num_vars).collect(),
            level2var: (0..num_vars).collect(),
            stats: KernelStats::default(),
            gc_hint: 1 << 16,
            gc_enabled: true,
            in_swap: false,
            budget: Budget::default(),
            fail_plan: None,
            checks_active: false,
            governor_suspended: false,
            steps: 0,
            alloc_count: 0,
            cache_insert_count: 0,
            par_threads: env_usize_or_zero("JEDD_THREADS").unwrap_or(1),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            par_cutoff: env_usize("JEDD_PAR_CUTOFF").unwrap_or(DEFAULT_PAR_CUTOFF).max(2),
            chain: false,
            paged: false,
        }
    }

    /// `true` when this manager builds chain-reduced (CBDD) nodes.
    pub(crate) fn chain_mode(&self) -> bool {
        self.chain
    }

    /// Switches chain reduction on or off. Only legal while the arena
    /// holds nothing but the two terminals: plain and chain-reduced
    /// canonical forms differ, so flipping the mode under live nodes
    /// would leave the table non-canonical.
    pub(crate) fn set_chain_mode(&mut self, on: bool) -> Result<(), BddError> {
        if self.live_nodes() != 2 {
            return Err(BddError::InvalidImport {
                index: 0,
                reason: "chain mode requires an arena holding only terminals",
            });
        }
        self.chain = on;
        Ok(())
    }

    /// `true` when this manager pages its arena to disk.
    pub(crate) fn paged(&self) -> bool {
        self.paged
    }

    /// Switches the arena to disk-backed paging with a resident budget of
    /// `frames` (`0` = unbounded). Like [`Inner::set_chain_mode`], only
    /// legal while the arena holds nothing but the two terminals: paging
    /// an already-populated flat arena would need a bulk spill pass this
    /// kernel deliberately does not grow (managers decide their storage
    /// mode at construction).
    pub(crate) fn enable_paging(
        &mut self,
        frames: usize,
        dir: Option<&Path>,
    ) -> Result<(), BddError> {
        if self.live_nodes() != 2 {
            return Err(BddError::InvalidImport {
                index: 0,
                reason: "paging requires an arena holding only terminals",
            });
        }
        self.nodes.enable_paging(frames, dir).map_err(|e| BddError::Page {
            block: e.block(),
            kind: e.kind(),
        })?;
        self.paged = self.nodes.is_paged();
        Ok(())
    }

    /// Faults the blocks holding `ids` in before a recursion descends, so
    /// cold operands surface fault-in failures (torn pages, I/O errors) as
    /// typed errors at the governed entry instead of panics mid-walk. Free
    /// for resident managers.
    #[inline]
    pub(crate) fn prefault(&mut self, ids: &[u32]) -> Result<(), BddError> {
        if !self.paged {
            return Ok(());
        }
        self.nodes.try_fault(ids)
    }

    /// Faults in every block of the sub-DAG under `root`, surfacing read
    /// failures typed. A no-op for resident managers; for paged ones this
    /// is the explicit "warm this relation" hook (and the test hook that
    /// turns a corrupted on-disk block into a typed error on demand).
    pub(crate) fn page_in(&mut self, root: u32) -> Result<(), BddError> {
        if !self.paged {
            return Ok(());
        }
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if id <= 1 || !seen.insert(id) {
                continue;
            }
            let n = self.nodes.try_read(id as usize)?;
            stack.push(n.low);
            stack.push(n.high);
        }
        Ok(())
    }

    /// Takes the full parked pager error, if any (see `BddError::Page`).
    pub(crate) fn take_page_error(&self) -> Option<PageError> {
        self.nodes.take_page_error()
    }

    /// Installs a pager crash-injection plan (no-op for resident managers).
    pub(crate) fn set_pager_faults(&self, faults: PagerFaults) {
        self.nodes.set_pager_faults(faults);
    }

    /// The backing page file of a paged manager.
    pub(crate) fn page_file(&self) -> Option<PathBuf> {
        self.nodes.page_file()
    }

    /// The kernel counters with the pager's counters merged in (they live
    /// behind the pager lock, not in `stats`, so the merge happens at
    /// observation time).
    pub(crate) fn stats_snapshot(&self) -> KernelStats {
        let mut s = self.stats;
        if let Some(p) = self.nodes.page_stats() {
            s.page_faults = p.page_faults;
            s.page_reads = p.page_reads;
            s.page_writes = p.page_writes;
            s.page_evictions = p.evictions;
            s.page_max_resident = p.max_resident;
        }
        let sched = jedd_sync::counters();
        s.sched_schedules = sched.schedules;
        s.sched_preemptions = sched.preemptions;
        s.sched_races = sched.races;
        s.sched_lock_edges = sched.lock_edges;
        s
    }

    /// Resolved worker-thread count of the parallel apply engine: the
    /// requested count, with `0` (auto) resolving to the hardware thread
    /// count. `1` = sequential. This is the number that decides whether
    /// the parallel engine is engaged at all; the number of workers
    /// actually spawned is additionally clamped to the hardware (see
    /// [`Inner::par_workers`]).
    pub(crate) fn par_threads(&self) -> usize {
        if self.par_threads == 0 {
            self.cpus
        } else {
            self.par_threads
        }
    }

    /// Sets the requested worker-thread count; `0` means auto.
    pub(crate) fn set_par_threads(&mut self, n: usize) {
        self.par_threads = n;
    }

    /// Effective worker count for a parallel operation: the resolved
    /// thread count clamped to the hardware parallelism (oversubscribing
    /// a machine only adds contention — the footgun behind the recorded
    /// 0.65x "speedup" of the scratch-table engine).
    pub(crate) fn par_workers(&self) -> usize {
        if jedd_sync::model_active() {
            // A model-check session serializes the workers itself, and
            // its schedules need the requested worker count to actually
            // materialize — even on a 1-CPU host, where the clamp would
            // otherwise reduce every model test to a sequential run.
            return self.par_threads().max(1);
        }
        self.par_threads().min(self.cpus).max(1)
    }

    /// Engagement cutoff of the parallel apply engine (combined operand
    /// node count).
    pub(crate) fn par_cutoff(&self) -> usize {
        self.par_cutoff
    }

    pub(crate) fn set_par_cutoff(&mut self, nodes: usize) {
        self.par_cutoff = nodes.max(2);
    }

    /// `true` while budget / fail-plan checks are live (not suspended).
    pub(crate) fn checks_active(&self) -> bool {
        self.checks_active
    }

    /// Recursion steps taken so far by the current top-level operation.
    pub(crate) fn op_steps(&self) -> u64 {
        self.steps
    }

    /// Adds worker-side recursion steps flushed back by a parallel
    /// operation, so `max_steps` accounting stays per top-level op.
    pub(crate) fn add_op_steps(&mut self, n: u64) {
        self.steps += n;
    }

    /// Returns `true` once the union of the sub-DAGs under `roots` holds at
    /// least `threshold` distinct internal nodes; stops walking early
    /// either way, so the probe costs at most `threshold` node visits.
    /// Deterministic for a given master table, which keeps the parallel
    /// engagement decision independent of thread count.
    pub(crate) fn probe_at_least(&self, roots: &[u32], threshold: usize) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(threshold.min(1 << 16));
        let mut stack: Vec<u32> = roots.iter().copied().filter(|&r| r > 1).collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if seen.len() >= threshold {
                return true;
            }
            let n = self.nodes.get(id as usize);
            if n.low > 1 {
                stack.push(n.low);
            }
            if n.high > 1 {
                stack.push(n.high);
            }
        }
        false
    }

    /// Installs (or clears, with `Budget::unlimited()`) the resource budget.
    pub(crate) fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
        self.refresh_checks();
    }

    /// The currently installed budget.
    pub(crate) fn budget(&self) -> Budget {
        self.budget.clone()
    }

    /// Installs or clears the fault-injection plan; the event counters
    /// restart from zero either way.
    pub(crate) fn set_fail_plan(&mut self, plan: Option<FailPlan>) {
        self.fail_plan = plan;
        self.alloc_count = 0;
        self.cache_insert_count = 0;
        self.refresh_checks();
    }

    /// Suspends or resumes the governor and fail plan. The recovery ladder
    /// suspends them while it runs GC/reordering, which themselves allocate.
    pub(crate) fn suspend_governor(&mut self, suspended: bool) {
        self.governor_suspended = suspended;
        self.refresh_checks();
    }

    pub(crate) fn governor_suspended(&self) -> bool {
        self.governor_suspended
    }

    fn refresh_checks(&mut self) {
        self.checks_active =
            !self.governor_suspended && (self.budget.is_limited() || self.fail_plan.is_some());
    }

    /// Starts a new top-level governed operation: the per-operation step
    /// counter restarts.
    pub(crate) fn begin_op(&mut self) {
        self.steps = 0;
    }

    /// One recursion step of a governed operation. Counts toward the step
    /// limit; probes the deadline and cancellation token every
    /// [`Budget::CHECK_INTERVAL`] steps so `Instant::now` stays off the
    /// per-node fast path.
    #[inline]
    pub(crate) fn step(&mut self) -> Result<(), BddError> {
        if self.paged {
            // A parked pager error (a failed eviction write) poisons the
            // manager: every governed operation reports it until the host
            // takes the full error and rebuilds.
            if let Some((block, kind)) = self.nodes.sticky_brief() {
                return Err(BddError::Page { block, kind });
            }
        }
        if !self.checks_active {
            return Ok(());
        }
        self.steps += 1;
        self.stats.governed_steps += 1;
        if let Some(limit) = self.budget.max_steps {
            if self.steps > limit {
                return Err(BddError::StepLimit {
                    steps: self.steps,
                    limit,
                });
            }
        }
        if self.steps.is_multiple_of(Budget::CHECK_INTERVAL) {
            if let Some(token) = &self.budget.cancel {
                if token.is_cancelled() {
                    return Err(BddError::Cancelled);
                }
            }
            if let Some(deadline) = self.budget.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(BddError::Deadline);
                }
            }
        }
        Ok(())
    }

    /// The level holding `var` in the current order.
    #[inline]
    pub(crate) fn level_of_var(&self, var: u32) -> u32 {
        self.var2level[var as usize]
    }

    /// The variable sitting at `level`.
    #[inline]
    pub(crate) fn var_at_level(&self, level: u32) -> u32 {
        self.level2var[level as usize]
    }

    #[inline]
    pub(crate) fn num_vars(&self) -> u32 {
        self.num_vars
    }

    pub(crate) fn add_vars(&mut self, n: u32) -> std::ops::Range<u32> {
        let start = self.num_vars;
        self.num_vars += n;
        for v in start..self.num_vars {
            self.var2level.push(v);
            self.level2var.push(v);
        }
        start..self.num_vars
    }

    /// Installs a saved variable order wholesale. Only legal while the
    /// arena holds nothing but the two terminals: existing internal nodes
    /// store level indices, so rewriting the order under them would
    /// silently change every function in the table. Snapshot restore calls
    /// this after `add_vars` and before importing any node.
    pub(crate) fn set_order(&mut self, level2var: &[u32]) -> Result<(), BddError> {
        if self.live_nodes() != 2 {
            return Err(BddError::InvalidImport {
                index: 0,
                reason: "set_order requires an arena holding only terminals",
            });
        }
        if level2var.len() != self.num_vars as usize {
            return Err(BddError::InvalidImport {
                index: 0,
                reason: "set_order length does not match the variable count",
            });
        }
        let mut var2level = vec![NIL; level2var.len()];
        for (level, &var) in level2var.iter().enumerate() {
            let Some(slot) = var2level.get_mut(var as usize) else {
                return Err(BddError::InvalidImport {
                    index: level as u32,
                    reason: "set_order variable out of range",
                });
            };
            if *slot != NIL {
                return Err(BddError::InvalidImport {
                    index: level as u32,
                    reason: "set_order order is not a permutation",
                });
            }
            *slot = level as u32;
        }
        self.var2level = var2level;
        self.level2var = level2var.to_vec();
        Ok(())
    }

    #[inline]
    pub(crate) fn level(&self, id: u32) -> u32 {
        self.nodes.get(id as usize).level
    }

    #[inline]
    pub(crate) fn low(&self, id: u32) -> u32 {
        self.nodes.get(id as usize).low
    }

    #[inline]
    pub(crate) fn high(&self, id: u32) -> u32 {
        self.nodes.get(id as usize).high
    }

    /// Number of live (allocated, non-free) nodes including terminals.
    pub(crate) fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free_count
    }

    /// Creates or finds the node `(level, low, high)`, applying the
    /// reduction rule `low == high => low` and, in chain mode, the CBDD
    /// chain rules (the node may come back as a chain node, or an
    /// existing chain may absorb it).
    ///
    /// Fails only under an active budget or fail plan: unique-table hits
    /// are always free, and the checks fire at the allocation point, where
    /// a node would actually be added. A failed `mk` leaves the table
    /// consistent — nothing has been inserted yet when the error returns.
    pub(crate) fn mk(&mut self, level: u32, low: u32, high: u32) -> Result<u32, BddError> {
        self.mk_span(level, level, low, high)
    }

    /// Chain-reduced constructor: the canonical node for
    /// `¬x_t ∧ … ∧ ¬x_{b-1} ∧ (¬x_b·f0 + x_b·f1)`.
    ///
    /// Canonicalisation (Bryant, TACAS 2018, OR-chain / CBDD flavour):
    ///
    /// 1. `⟨t:b, f, f⟩ ≡ ⟨t:b-1, f, 0⟩` (and `⟨t:t, f, f⟩ ≡ f`) — a
    ///    don't-care bottom level folds into the chain;
    /// 2. `⟨t:b, ⟨b+1:b2, g0, g1⟩, 0⟩ ≡ ⟨t:b2, g0, g1⟩` — a chain whose
    ///    low edge continues the chain absorbs it.
    ///
    /// The canonical invariant is therefore `f0 != f1` and *not*
    /// (`f1 == 0` and `f0`'s top level is `b + 1`). With chain mode off
    /// this degenerates to the plain reduction rule (`t == b` always).
    pub(crate) fn mk_span(
        &mut self,
        t: u32,
        mut b: u32,
        f0: u32,
        mut f1: u32,
    ) -> Result<u32, BddError> {
        debug_assert!(self.chain || t == b, "chain span in a plain manager");
        while f0 == f1 {
            if t == b {
                return Ok(f0);
            }
            b -= 1;
            f1 = 0;
        }
        if self.chain && f1 == 0 && f0 > 1 {
            let c = self.nodes.try_read(f0 as usize)?;
            if c.level == b + 1 {
                return self.mk_raw(t, c.bot, c.low, c.high);
            }
        }
        self.mk_raw(t, b, f0, f1)
    }

    /// Hash-conses the (already canonical) quadruple `(level, bot, low,
    /// high)`, allocating on a miss.
    fn mk_raw(&mut self, level: u32, bot: u32, low: u32, high: u32) -> Result<u32, BddError> {
        debug_assert!(low != high, "mk_raw: unreduced node");
        debug_assert!(
            level <= bot && bot < self.num_vars,
            "mk_raw: span {level}:{bot} out of range"
        );
        debug_assert!(
            self.nodes.get(low as usize).level > bot && self.nodes.get(high as usize).level > bot,
            "mk_raw: ordering violation at span {level}:{bot}"
        );
        let h = node_hash(level, bot, low, high) as usize & self.bucket_mask;
        let mut cur = self.buckets[h];
        while cur != NIL {
            let n = self.nodes.try_read(cur as usize)?;
            if n.level == level && n.bot == bot && n.low == low && n.high == high {
                self.stats.unique_hits += 1;
                return Ok(cur);
            }
            cur = n.next;
        }
        if self.checks_active {
            if let Some(plan) = &self.fail_plan {
                if let Some(n) = plan.fail_alloc_at {
                    self.alloc_count += 1;
                    if self.alloc_count == n {
                        return Err(BddError::FaultInjected {
                            kind: "alloc",
                            at: n,
                        });
                    }
                }
            }
            if let Some(limit) = self.budget.max_live_nodes {
                if self.live_nodes() >= limit {
                    return Err(BddError::NodeLimit {
                        live: self.live_nodes(),
                        limit,
                    });
                }
            }
        }
        // Allocate.
        let id = if self.free_head != NIL {
            let id = self.free_head;
            self.free_head = self.nodes.try_read(id as usize)?.low;
            self.free_count -= 1;
            id
        } else {
            self.nodes.try_append(Node::terminal())?
        };
        self.stats.nodes_created += 1;
        if bot > level {
            self.stats.chain_nodes_created += 1;
            let len = (bot - level) as u64;
            self.stats.chain_len_sum += len;
            self.stats.chain_len_max = self.stats.chain_len_max.max(len);
        }
        if self.num_vars > 0 {
            let bucket = (level as usize * 16 / self.num_vars as usize).min(15);
            self.stats.level_activity[bucket] += 1;
        }
        let next = self.buckets[h];
        self.nodes.try_update(id as usize, |n| {
            *n = Node {
                level,
                bot,
                low,
                high,
                next,
                ext_refs: 0,
                mark: false,
            };
        })?;
        self.buckets[h] = id;
        if !self.in_swap {
            self.maybe_grow_buckets();
        }
        Ok(id)
    }

    /// The chain interval's bottom level of `id` (equals the top level for
    /// plain nodes).
    #[inline]
    pub(crate) fn bot(&self, id: u32) -> u32 {
        self.nodes.get(id as usize).bot
    }

    /// The two cofactors of `f` with respect to the variable at level `m`
    /// (which must not be below `f`'s top level). For plain nodes this is
    /// the direct `(low, high)` split; for a chain node at its top level
    /// the 1-cofactor is `FALSE` and the 0-cofactor is the materialised
    /// chain tail `⟨m+1:bot, low, high⟩` (hash-consed, so repeated
    /// decompositions of one chain share tails; tails unreachable after
    /// the operation are ordinary garbage).
    pub(crate) fn cofactor_pair(&mut self, f: u32, m: u32) -> Result<(u32, u32), BddError> {
        if f <= 1 {
            return Ok((f, f));
        }
        let n = self.nodes.try_read(f as usize)?;
        if n.level > m {
            return Ok((f, f));
        }
        debug_assert_eq!(n.level, m, "cofactor_pair: level below the split");
        if n.bot == n.level {
            return Ok((n.low, n.high));
        }
        let tail = self.mk_span(m + 1, n.bot, n.low, n.high)?;
        Ok((tail, 0))
    }

    /// Records operand shape for a top-level operation: the level span
    /// from the highest operand root to the bottom of the order (the
    /// region the recursion can touch). Feeds the profiler's node-shapes
    /// row and the order-search hot-range heuristic.
    pub(crate) fn record_op_shape(&mut self, operands: &[u32]) {
        let mut top = u32::MAX;
        for &f in operands {
            if f > 1 {
                // Profiling must not escalate a pager fault into a panic:
                // skip the sample and let the operation itself surface the
                // parked error as a typed result at its first `step`.
                match self.nodes.try_read(f as usize) {
                    Ok(n) => top = top.min(n.level),
                    Err(_) => return,
                }
            }
        }
        if top == u32::MAX {
            return;
        }
        let span = (self.num_vars - top) as u64;
        self.stats.op_span_sum += span;
        self.stats.op_span_max = self.stats.op_span_max.max(span);
        self.stats.op_span_samples += 1;
    }

    /// Lock-free probe of the unique table for `(level, low, high)`,
    /// used by parallel workers against the *frozen* master arena (no
    /// mutation happens while workers run, so the immutable chain walk is
    /// safe to share). Touches no counters — workers keep their own hit
    /// statistics and merge them after the join.
    pub(crate) fn lookup_frozen(&self, level: u32, low: u32, high: u32) -> Option<u32> {
        // The parallel engine never runs on a chain-mode manager, so the
        // probe is always for a plain `bot == level` node.
        let h = node_hash(level, level, low, high) as usize & self.bucket_mask;
        let mut cur = self.buckets[h];
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if n.level == level && n.low == low && n.high == high {
                return Some(cur);
            }
            cur = n.next;
        }
        None
    }

    /// Commits the node block minted by a parallel operation: appends the
    /// triples to the arena in id order and chains each into its unique
    /// table bucket. The ids the workers handed out were `base + i` in
    /// reservation order, so the arena length must equal `base` on entry
    /// — the commit is what makes those ids real. No duplicate search is
    /// needed: workers dedup against both the frozen master table and
    /// each other before reserving an id, so every committed triple is
    /// distinct from everything already in the table.
    pub(crate) fn commit_par_nodes(
        &mut self,
        base: u32,
        triples: impl Iterator<Item = (u32, u32, u32)>,
    ) -> u64 {
        debug_assert_eq!(
            self.nodes.len() as u32,
            base,
            "parallel commit: arena moved under a running operation"
        );
        let mut count = 0u64;
        for (level, low, high) in triples {
            let h = node_hash(level, level, low, high) as usize & self.bucket_mask;
            let next = self.buckets[h];
            let id = self.nodes.push_resident(Node {
                level,
                bot: level,
                low,
                high,
                next,
                ext_refs: 0,
                mark: false,
            });
            self.buckets[h] = id;
            count += 1;
        }
        self.stats.nodes_created += count;
        if !self.in_swap {
            self.maybe_grow_buckets();
        }
        count
    }

    /// Grows the unique table if the load factor exceeds 1.5 nodes per
    /// bucket. Called by `mk` outside swaps, and again at the end of each
    /// adjacent-level swap to run the growth that `in_swap` deferred.
    pub(crate) fn maybe_grow_buckets(&mut self) {
        if self.live_nodes() * 2 > self.buckets.len() * 3 {
            self.grow_buckets();
        }
    }

    /// Number of unique-table buckets.
    pub(crate) fn buckets_len(&self) -> usize {
        self.buckets.len()
    }

    /// Clears the buckets to the given size (a power of two).
    pub(crate) fn reset_buckets(&mut self, len: usize) {
        debug_assert!(len.is_power_of_two());
        self.buckets.clear();
        self.buckets.resize(len, NIL);
        self.bucket_mask = len - 1;
    }

    /// Inserts node `id` into its unique-table bucket (no duplicate-id
    /// check for distinct ids; re-inserting the same id is a no-op).
    pub(crate) fn insert_unique(&mut self, id: u32) {
        let n = self.nodes.read(id as usize);
        let h = node_hash(n.level, n.bot, n.low, n.high) as usize & self.bucket_mask;
        // Idempotence: skip if this id is already chained here.
        let mut cur = self.buckets[h];
        while cur != NIL {
            if cur == id {
                return;
            }
            cur = self.nodes.read(cur as usize).next;
        }
        let head = self.buckets[h];
        self.nodes.update(id as usize, |n| n.next = head);
        self.buckets[h] = id;
    }

    fn grow_buckets(&mut self) {
        let new_len = self.buckets.len() * 2;
        self.buckets = vec![NIL; new_len];
        self.bucket_mask = new_len - 1;
        let mask = self.bucket_mask;
        let buckets = &mut self.buckets;
        self.nodes.scan_mut(0, &mut |i, n| {
            if n.level == TERMINAL_LEVEL || n.level == FREE_LEVEL {
                return;
            }
            let h = node_hash(n.level, n.bot, n.low, n.high) as usize & mask;
            n.next = buckets[h];
            buckets[h] = i as u32;
        });
        // Grow the cache alongside the table, up to a limit, rehashing the
        // surviving entries into the doubled table instead of discarding
        // a warm cache. Doubling adds one hash bit, so old entries land in
        // distinct new slots and none are lost to collisions.
        if self.cache.len() < MAX_CACHE && self.cache.len() < new_len {
            let target = (self.cache.len() * 2).min(MAX_CACHE);
            let old = std::mem::replace(&mut self.cache, vec![CacheEntry::EMPTY; target]);
            self.cache_mask = target - 1;
            for e in old {
                if e.op != CacheOp::None {
                    let h = triple_hash(e.a ^ ((e.op as u32) << 24), e.b, e.c) as usize
                        & self.cache_mask;
                    self.cache[h] = e;
                }
            }
        }
    }

    /// Interns `perm`, returning a stable id for `CacheOp::Replace` keys.
    /// Identical permutations (by value) share one id, so repeated
    /// replaces with equal permutations hit the shared cache.
    pub(crate) fn intern_permutation(&mut self, perm: &Permutation) -> u32 {
        if let Some(i) = self.perms.iter().position(|p| p == perm) {
            return i as u32;
        }
        self.perms.push(perm.clone());
        (self.perms.len() - 1) as u32
    }

    #[inline]
    pub(crate) fn cache_lookup(&mut self, op: CacheOp, a: u32, b: u32, c: u32) -> Option<u32> {
        self.stats.cache_lookups += 1;
        self.stats.per_op_cache[op.index()].lookups += 1;
        let h = triple_hash(a ^ ((op as u32) << 24), b, c) as usize & self.cache_mask;
        let e = &self.cache[h];
        if e.op == op && e.a == a && e.b == b && e.c == c {
            self.stats.cache_hits += 1;
            self.stats.per_op_cache[op.index()].hits += 1;
            Some(e.result)
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn cache_store(&mut self, op: CacheOp, a: u32, b: u32, c: u32, result: u32) {
        if self.checks_active {
            if let Some(k) = self.fail_plan.as_ref().and_then(|p| p.skip_cache_insert_every) {
                self.cache_insert_count += 1;
                if self.cache_insert_count.is_multiple_of(k) {
                    // Cache inserts are semantically optional; dropping one
                    // only forces the recursion to recompute later.
                    return;
                }
            }
        }
        let h = triple_hash(a ^ ((op as u32) << 24), b, c) as usize & self.cache_mask;
        if self.cache[h].op == CacheOp::None {
            self.cache_occupied += 1;
        }
        self.cache[h] = CacheEntry {
            op,
            a,
            b,
            c,
            result,
        };
    }

    pub(crate) fn clear_cache(&mut self) {
        self.cache.fill(CacheEntry::EMPTY);
        self.cache_occupied = 0;
    }

    /// `true` if node `id` survives the collection in progress: terminals
    /// always do, internal nodes only when the mark phase reached them.
    /// Only meaningful between the GC mark and sweep phases.
    #[inline]
    fn node_survives(&self, id: u32) -> bool {
        id <= 1 || self.nodes.get(id as usize).mark
    }

    /// Sweep-style cache invalidation: drops exactly the entries that
    /// reference a node the collection in progress is about to free, and
    /// keeps everything else, so the cache stays warm across GCs. Must run
    /// between the GC mark and sweep phases, while the mark bits identify
    /// the survivors — once a dead id is on the free list it can be
    /// reused for a different function, and a stale entry would then
    /// resurrect the old result under the new node's key.
    fn sweep_cache_marked(&mut self) {
        self.stats.cache_sweeps += 1;
        if self.cache_occupied == 0 {
            return;
        }
        for i in 0..self.cache.len() {
            let e = self.cache[i];
            if e.op == CacheOp::None {
                continue;
            }
            // The `b` field of a Replace entry is an interned permutation
            // id, not a node id; permutations are interned forever, so
            // only the node fields decide survival.
            let survives = self.node_survives(e.a)
                && (e.op == CacheOp::Replace || self.node_survives(e.b))
                && self.node_survives(e.c)
                && self.node_survives(e.result);
            if survives {
                self.stats.cache_entries_kept += 1;
            } else {
                self.cache[i] = CacheEntry::EMPTY;
                self.cache_occupied -= 1;
                self.stats.cache_entries_swept += 1;
            }
        }
    }

    #[inline]
    pub(crate) fn inc_ref(&mut self, id: u32) {
        self.nodes.update(id as usize, |n| n.ext_refs += 1);
    }

    #[inline]
    pub(crate) fn dec_ref(&mut self, id: u32) {
        // `dec_ref` runs from `Drop`, so a pager fault here must not
        // panic (a panic in a destructor aborts). Failing to decrement
        // only leaks the node — it stays conservatively live — and the
        // underlying error is parked for `take_page_error`.
        let _ = self.nodes.try_update(id as usize, |n| {
            debug_assert!(n.ext_refs > 0, "dec_ref on node with zero refcount");
            n.ext_refs -= 1;
        });
    }

    /// Runs a GC if the arena has grown past the current hint. Must only be
    /// called at a safe point (no in-flight recursion results).
    pub(crate) fn maybe_gc(&mut self) {
        if self.gc_enabled && self.live_nodes() > self.gc_hint {
            let reclaimed = self.gc();
            // If less than a quarter was reclaimed, raise the bar so we do
            // not thrash.
            if reclaimed * 4 < self.gc_hint {
                self.gc_hint *= 2;
            }
        }
    }

    /// Mark-and-sweep collection from externally referenced roots.
    /// Returns the number of reclaimed nodes.
    pub(crate) fn gc(&mut self) -> usize {
        // Mark phase: roots are nodes with ext_refs > 0. A paged manager
        // streams blocks through the buffer pool here; marks written into
        // evicted frames persist on disk through the block format.
        let mut stack: Vec<u32> = Vec::new();
        self.nodes.scan_mut(2, &mut |i, n| {
            if n.level != FREE_LEVEL && n.ext_refs > 0 && !n.mark {
                stack.push(i as u32);
            }
        });
        while let Some(id) = stack.pop() {
            let children = self.nodes.update(id as usize, |n| {
                if n.mark || n.level == TERMINAL_LEVEL {
                    None
                } else {
                    n.mark = true;
                    Some((n.low, n.high))
                }
            });
            let Some((lo, hi)) = children else { continue };
            if lo > 1 {
                stack.push(lo);
            }
            if hi > 1 {
                stack.push(hi);
            }
        }
        // Cache sweep: while the marks still identify the survivors, drop
        // only the entries whose nodes are about to die (wholesale clears
        // remain only in reordering, where the level geometry changes).
        self.sweep_cache_marked();
        // Sweep phase: rebuild unique table with only marked nodes.
        self.buckets.fill(NIL);
        let mut reclaimed = 0usize;
        let mask = self.bucket_mask;
        let buckets = &mut self.buckets;
        let free_head = &mut self.free_head;
        let free_count = &mut self.free_count;
        self.nodes.scan_mut(2, &mut |i, node| {
            if node.level == FREE_LEVEL {
                return;
            }
            if node.mark {
                let h = node_hash(node.level, node.bot, node.low, node.high) as usize & mask;
                node.mark = false;
                node.next = buckets[h];
                buckets[h] = i as u32;
            } else {
                node.level = FREE_LEVEL;
                node.bot = FREE_LEVEL;
                node.low = *free_head;
                node.next = NIL;
                *free_head = i as u32;
                *free_count += 1;
                reclaimed += 1;
            }
        });
        self.stats.gc_runs += 1;
        self.stats.gc_reclaimed += reclaimed as u64;
        reclaimed
    }

    /// Returns the BDD of a single positive variable.
    pub(crate) fn mk_var(&mut self, var: u32) -> Result<u32, BddError> {
        assert!(var < self.num_vars, "variable {var} out of range");
        let level = self.level_of_var(var);
        self.mk(level, NodeId::FALSE.0, NodeId::TRUE.0)
    }

    /// Returns the negated variable BDD.
    pub(crate) fn mk_nvar(&mut self, var: u32) -> Result<u32, BddError> {
        assert!(var < self.num_vars, "variable {var} out of range");
        let level = self.level_of_var(var);
        self.mk(level, NodeId::TRUE.0, NodeId::FALSE.0)
    }

    /// Builds a positive cube (conjunction) over distinct variables.
    pub(crate) fn mk_cube(&mut self, vars: &[u32]) -> Result<u32, BddError> {
        let mut levels: Vec<u32> = vars.iter().map(|&v| self.level_of_var(v)).collect();
        levels.sort_unstable();
        levels.dedup();
        let mut acc = NodeId::TRUE.0;
        for &lvl in levels.iter().rev() {
            acc = self.mk(lvl, NodeId::FALSE.0, acc)?;
        }
        Ok(acc)
    }

    /// Node count of the sub-DAG rooted at `root` (excluding terminals).
    pub(crate) fn node_count(&self, root: u32) -> usize {
        if root <= 1 {
            return 0;
        }
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if id <= 1 || !seen.insert(id) {
                continue;
            }
            let n = self.nodes.get(id as usize);
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len()
    }

    /// Nodes per level for the sub-DAG rooted at `root`.
    pub(crate) fn shape(&self, root: u32) -> Vec<usize> {
        let mut out = vec![0usize; self.num_vars as usize];
        if root <= 1 {
            return out;
        }
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if id <= 1 || !seen.insert(id) {
                continue;
            }
            let n = self.nodes.get(id as usize);
            out[n.level as usize] += 1;
            stack.push(n.low);
            stack.push(n.high);
        }
        out
    }

    /// The set of variables appearing in the sub-DAG rooted at `root`,
    /// sorted by variable index.
    pub(crate) fn support(&self, root: u32) -> Vec<u32> {
        let mut vars = std::collections::BTreeSet::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if id <= 1 || !seen.insert(id) {
                continue;
            }
            let n = self.nodes.get(id as usize);
            // A chain node depends on every variable in its interval.
            for l in n.level..=n.bot {
                vars.insert(self.var_at_level(l));
            }
            stack.push(n.low);
            stack.push(n.high);
        }
        vars.into_iter().collect()
    }
}
