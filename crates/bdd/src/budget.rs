//! Resource budgets, cooperative cancellation and fault injection for the
//! BDD kernel.
//!
//! BDD operations can blow up superlinearly in node count; an unbounded
//! `apply` either exhausts memory or spins for hours. The [`Budget`] type
//! bounds a kernel operation's resource use (live nodes, apply steps,
//! wall-clock deadline, cooperative cancellation); the `try_*` operation
//! variants on [`crate::Bdd`] report exhaustion as a [`BddError`] instead
//! of panicking, and the manager's recovery ladder (GC, then reordering)
//! tries to shrink the table before giving up. [`FailPlan`] deterministically
//! injects failures so tests can exercise every error path.

use std::fmt;
use jedd_sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An error from a budgeted (`try_*`) kernel operation.
///
/// Failure mid-operation is safe: nodes created by the failed operation
/// carry no external references and are reclaimed by the next garbage
/// collection; the unique table, reference counts and operation cache stay
/// consistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BddError {
    /// The arena exceeded [`Budget::max_live_nodes`] and the recovery
    /// ladder (GC, then reordering) could not shrink it below the limit.
    NodeLimit {
        /// Live nodes at the point of failure.
        live: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The operation exceeded [`Budget::max_steps`] recursion steps.
    StepLimit {
        /// Steps taken by the failing top-level operation.
        steps: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The wall-clock deadline passed mid-operation.
    Deadline,
    /// The operation's [`CancelToken`] was triggered.
    Cancelled,
    /// A [`FailPlan`] injected this failure (tests only).
    FaultInjected {
        /// Which hook fired (e.g. `"alloc"`).
        kind: &'static str,
        /// The hook's event count at the point of injection.
        at: u64,
    },
    /// The permutation handed to a `replace` is not valid for the operand:
    /// it is non-injective on the support, or maps outside the variable
    /// range. Returned by [`crate::Bdd::try_replace`] and
    /// [`crate::Permutation::try_from_pairs`]; unlike the resource errors
    /// this one is a caller mistake, so the recovery ladder never retries
    /// it and it does not count as a budget failure.
    InvalidPermutation {
        /// The variable the validation tripped over (a duplicated source,
        /// a collided target, or an out-of-range target, per `kind`).
        var: u32,
        /// What exactly is wrong with the permutation.
        kind: PermutationFlaw,
    },
    /// A node list handed to [`crate::BddManager::import_nodes`] (or the
    /// ZDD equivalent) is not a well-formed, children-first, reduced node
    /// table, or a [`crate::BddManager::set_order`] precondition failed. Like `InvalidPermutation` this is a caller (or corrupt-input)
    /// mistake, not resource exhaustion: the recovery ladder never retries
    /// it. Validation happens before any node is created, so a rejected
    /// import leaves the arena untouched.
    InvalidImport {
        /// Index of the offending entry in the imported node list.
        index: u32,
        /// What is wrong with the entry (e.g. `"variable out of range"`).
        reason: &'static str,
    },
    /// The disk-backed pager failed: an eviction write or block fault-in
    /// hit an I/O error, a torn (corrupt) block, or an injected kill. This
    /// is the compact `Copy` form; the full error (paths, the underlying
    /// I/O error) stays parked in the manager and is retrievable once via
    /// [`crate::BddManager::take_page_error`]. The recovery ladder never
    /// retries it — losing the page file is not recoverable by GC.
    Page {
        /// The page-file block involved.
        block: u32,
        /// Failure class: `"io"`, `"killed"`, or a block decode tag
        /// (`"checksum"`, `"truncated"`, `"bad-magic"`, …).
        kind: &'static str,
    },
}

/// Why a permutation was rejected (see [`BddError::InvalidPermutation`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PermutationFlaw {
    /// The same source variable is mapped twice.
    DuplicateSource,
    /// Two distinct variables map to the same target. At replace time this
    /// covers both two moved support variables colliding and a moved
    /// variable landing on an unmoved support variable.
    DuplicateTarget,
    /// A target variable is outside the manager's variable range.
    OutOfRange,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BddError::NodeLimit { live, limit } => {
                write!(f, "node limit exceeded: {live} live nodes > limit {limit}")
            }
            BddError::StepLimit { steps, limit } => {
                write!(f, "step limit exceeded: {steps} steps > limit {limit}")
            }
            BddError::Deadline => write!(f, "wall-clock deadline exceeded"),
            BddError::Cancelled => write!(f, "operation cancelled"),
            BddError::FaultInjected { kind, at } => {
                write!(f, "injected fault: {kind} #{at}")
            }
            BddError::InvalidPermutation { var, kind } => match kind {
                PermutationFlaw::DuplicateSource => {
                    write!(f, "invalid permutation: maps variable {var} twice")
                }
                PermutationFlaw::DuplicateTarget => write!(
                    f,
                    "invalid permutation: two variables map to the same target {var}"
                ),
                PermutationFlaw::OutOfRange => {
                    write!(f, "invalid permutation: target variable {var} out of range")
                }
            },
            BddError::InvalidImport { index, reason } => {
                write!(f, "invalid node import at entry {index}: {reason}")
            }
            BddError::Page { block, kind } => {
                write!(f, "pager failure ({kind}) at block {block}")
            }
        }
    }
}

impl std::error::Error for BddError {}

/// A cooperative cancellation token, checked periodically inside kernel
/// recursions.
///
/// Cloning shares the flag, and the flag is atomic, so a token handed to
/// another thread (e.g. a watchdog) can cancel an operation running here.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; in-flight budgeted operations observe it at
    /// their next check point and return [`BddError::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Clears the flag so the token can be reused.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Resource limits applied to budgeted kernel operations.
///
/// The default budget is unlimited; limits compose freely. `max_steps`,
/// the deadline and the cancel token are scoped per top-level operation;
/// `max_live_nodes` bounds the shared arena. Deadline and cancellation are
/// only probed every [`Budget::CHECK_INTERVAL`] recursion steps, keeping
/// the governed fast path to one branch and one increment.
///
/// # Examples
///
/// ```
/// use jedd_bdd::{BddManager, Budget};
/// let mgr = BddManager::new(8);
/// mgr.set_budget(Budget::unlimited().with_max_steps(1_000_000));
/// let f = mgr.var(0).try_and(&mgr.var(1)).unwrap();
/// assert_eq!(f.satcount(), 64.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum live nodes in the arena (checked at node allocation).
    pub max_live_nodes: Option<usize>,
    /// Maximum recursion steps per top-level operation.
    pub max_steps: Option<u64>,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation token.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// Deadline and cancellation are probed every this many recursion
    /// steps, so `Instant::now` stays off the per-node fast path.
    pub const CHECK_INTERVAL: u64 = 1024;

    /// A budget with no limits (the manager default).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Bounds the total number of live nodes in the arena.
    pub fn with_max_live_nodes(mut self, n: usize) -> Budget {
        self.max_live_nodes = Some(n);
        self
    }

    /// Bounds the recursion steps of each top-level operation.
    pub fn with_max_steps(mut self, n: u64) -> Budget {
        self.max_steps = Some(n);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, at: Instant) -> Budget {
        self.deadline = Some(at);
        self
    }

    /// Sets a deadline `d` from now.
    pub fn with_timeout(mut self, d: Duration) -> Budget {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// `true` if any limit is configured.
    pub fn is_limited(&self) -> bool {
        self.max_live_nodes.is_some()
            || self.max_steps.is_some()
            || self.deadline.is_some()
            || self.cancel.is_some()
    }
}

/// Deterministic fault injection for tests.
///
/// A fail plan makes the kernel misbehave on a precise schedule so error
/// paths can be exercised without constructing pathological inputs:
///
/// * `fail_alloc_at`: the Nth node allocation (1-based, counted from when
///   the plan is installed) returns [`BddError::FaultInjected`];
/// * `skip_cache_insert_every`: every k-th operation-cache insert is
///   silently dropped. Cache inserts are semantically optional, so this
///   must not change any result — tests use it to stress the uncached
///   recursion paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailPlan {
    /// Fail the Nth node allocation (1-based); `None` disables the hook.
    pub fail_alloc_at: Option<u64>,
    /// Drop every k-th cache insert; `None` disables the hook.
    pub skip_cache_insert_every: Option<u64>,
}

impl FailPlan {
    /// A plan that fails the `n`-th node allocation (1-based).
    pub fn fail_alloc_at(n: u64) -> FailPlan {
        FailPlan {
            fail_alloc_at: Some(n),
            ..FailPlan::default()
        }
    }

    /// A plan that drops every `k`-th operation-cache insert.
    pub fn skip_cache_insert_every(k: u64) -> FailPlan {
        FailPlan {
            skip_cache_insert_every: Some(k),
            ..FailPlan::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_builder_composes() {
        let b = Budget::unlimited()
            .with_max_live_nodes(10)
            .with_max_steps(20)
            .with_timeout(Duration::from_secs(3600));
        assert_eq!(b.max_live_nodes, Some(10));
        assert_eq!(b.max_steps, Some(20));
        assert!(b.deadline.is_some());
        assert!(b.is_limited());
        assert!(!Budget::unlimited().is_limited());
    }

    #[test]
    fn cancel_token_round_trip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let shared = t.clone();
        shared.cancel();
        assert!(t.is_cancelled());
        t.reset();
        assert!(!shared.is_cancelled());
        assert!(Budget::unlimited().with_cancel(t).is_limited());
    }

    #[test]
    fn errors_display() {
        for e in [
            BddError::NodeLimit { live: 5, limit: 4 },
            BddError::StepLimit { steps: 9, limit: 8 },
            BddError::Deadline,
            BddError::Cancelled,
            BddError::FaultInjected { kind: "alloc", at: 3 },
            BddError::InvalidPermutation {
                var: 2,
                kind: PermutationFlaw::DuplicateSource,
            },
            BddError::InvalidPermutation {
                var: 2,
                kind: PermutationFlaw::DuplicateTarget,
            },
            BddError::InvalidPermutation {
                var: 99,
                kind: PermutationFlaw::OutOfRange,
            },
            BddError::InvalidImport {
                index: 7,
                reason: "variable out of range",
            },
            BddError::Page {
                block: 3,
                kind: "checksum",
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
