//! Kernel extras: witness extraction, exact model counting and Graphviz
//! export (the visualization facility the related-work tools expose and
//! the Jedd profiler builds on).

use crate::manager::Bdd;
use crate::table::Inner;
use std::collections::HashMap;
use std::fmt::Write as _;

impl Inner {
    /// Returns one satisfying assignment as `(level, value)` pairs for the
    /// variables on the chosen path (other variables are free), or `None`
    /// if unsatisfiable.
    pub(crate) fn one_sat(&self, f: u32) -> Option<Vec<(u32, bool)>> {
        if f == 0 {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = f;
        while cur > 1 {
            let n = self.nodes.get(cur as usize);
            // Chain levels (level..bot) are forced false on every path
            // through the node; plain nodes have an empty interval here.
            for l in n.level..n.bot {
                out.push((self.var_at_level(l), false));
            }
            let var = self.var_at_level(n.bot);
            // Prefer the low edge unless it is FALSE.
            if n.low != 0 {
                out.push((var, false));
                cur = n.low;
            } else {
                out.push((var, true));
                cur = n.high;
            }
        }
        out.sort_unstable_by_key(|&(v, _)| v);
        Some(out)
    }

    /// Exact satisfying-assignment count as `u128`; `None` when the count
    /// would not fit (more than 127 free variables of headroom).
    pub(crate) fn satcount_exact(&self, f: u32) -> Option<u128> {
        let nvars = self.num_vars();
        if nvars > 127 {
            return None;
        }
        fn rec(inner: &Inner, f: u32, memo: &mut HashMap<u32, u128>) -> u128 {
            if f == 0 {
                return 0;
            }
            if f == 1 {
                return 1;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            // Gaps are measured from the chain bottom; forced chain levels
            // contribute factor 1 (see `Inner::satcount`).
            let bot = inner.bot(f);
            let level_of = |id: u32| -> u32 {
                if id <= 1 {
                    inner.num_vars()
                } else {
                    inner.level(id)
                }
            };
            let (lo, hi) = (inner.low(f), inner.high(f));
            let cl = rec(inner, lo, memo) << (level_of(lo) - bot - 1);
            let ch = rec(inner, hi, memo) << (level_of(hi) - bot - 1);
            let c = cl + ch;
            memo.insert(f, c);
            c
        }
        if f == 0 {
            return Some(0);
        }
        if f == 1 {
            return Some(1u128 << nvars);
        }
        let mut memo = HashMap::new();
        let below = rec(self, f, &mut memo);
        Some(below << self.level(f))
    }

    /// Cofactor: substitutes constants for the given variables.
    pub(crate) fn cofactor(
        &mut self,
        f: u32,
        assignment: &[(u32, bool)],
    ) -> Result<u32, crate::BddError> {
        if f <= 1 || assignment.is_empty() {
            return Ok(f);
        }
        // Translate variables to levels; the recursion matches on levels.
        let mut sorted: Vec<(u32, bool)> = assignment
            .iter()
            .map(|&(v, b)| (self.level_of_var(v), b))
            .collect();
        sorted.sort_unstable_by_key(|&(l, _)| l);
        for w in sorted.windows(2) {
            assert!(w[0].0 != w[1].0, "variable {} assigned twice", w[0].0);
        }
        let mut memo = HashMap::new();
        self.cofactor_rec(f, &sorted, &mut memo)
    }

    fn cofactor_rec(
        &mut self,
        f: u32,
        assignment: &[(u32, bool)],
        memo: &mut HashMap<u32, u32>,
    ) -> Result<u32, crate::BddError> {
        if f <= 1 {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        self.step()?;
        self.prefault(&[f])?;
        // Cofactoring at the top level keeps chain nodes correct: the tail
        // produced by `cofactor_pair` re-exposes the remaining chain levels.
        let level = self.level(f);
        let (lo, hi) = self.cofactor_pair(f, level)?;
        let r = match assignment.binary_search_by_key(&level, |&(v, _)| v) {
            Ok(i) => {
                let branch = if assignment[i].1 { hi } else { lo };
                self.cofactor_rec(branch, assignment, memo)?
            }
            Err(_) => {
                let l2 = self.cofactor_rec(lo, assignment, memo)?;
                let h2 = self.cofactor_rec(hi, assignment, memo)?;
                self.mk(level, l2, h2)?
            }
        };
        memo.insert(f, r);
        Ok(r)
    }

    /// Renders the sub-DAG rooted at `f` in Graphviz dot format.
    pub(crate) fn to_dot(&self, f: u32, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  f [shape=none, label=\"{name}\"];");
        let _ = writeln!(out, "  n0 [shape=box, label=\"0\"];");
        let _ = writeln!(out, "  n1 [shape=box, label=\"1\"];");
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let _ = writeln!(out, "  f -> n{f};");
        while let Some(id) = stack.pop() {
            if id <= 1 || !seen.insert(id) {
                continue;
            }
            let n = self.nodes.get(id as usize);
            let label = if n.bot > n.level {
                // Chain node: show the whole forced interval.
                format!(
                    "v{}..v{}",
                    self.var_at_level(n.level),
                    self.var_at_level(n.bot)
                )
            } else {
                format!("v{}", self.var_at_level(n.level))
            };
            let _ = writeln!(out, "  n{id} [shape=circle, label=\"{label}\"];");
            let _ = writeln!(out, "  n{id} -> n{} [style=dashed];", n.low);
            let _ = writeln!(out, "  n{id} -> n{} [style=solid];", n.high);
            stack.push(n.low);
            stack.push(n.high);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

impl Bdd {
    /// Returns one satisfying assignment as `(variable, value)` pairs for
    /// the variables along a path to `true`; variables not listed are
    /// unconstrained. Returns `None` for the false BDD.
    pub fn one_sat(&self) -> Option<Vec<(u32, bool)>> {
        self.mgr.borrow().one_sat(self.id)
    }

    /// Exact satisfying-assignment count over all manager variables, or
    /// `None` when the manager has more than 127 variables.
    pub fn satcount_exact(&self) -> Option<u128> {
        self.mgr.borrow().satcount_exact(self.id)
    }

    /// Renders this BDD in Graphviz dot format (dashed = low/0 edge,
    /// solid = high/1 edge), for visual inspection of shapes.
    pub fn to_dot(&self, name: &str) -> String {
        self.mgr.borrow().to_dot(self.id, name)
    }

    /// Cofactor (BuDDy `bdd_restrict`): substitutes the given constant
    /// values for variables and simplifies.
    ///
    /// # Panics
    ///
    /// Panics if a variable is assigned twice, or if the operation exceeds
    /// an installed budget (use [`Bdd::try_cofactor`] then).
    pub fn cofactor(&self, assignment: &[(u32, bool)]) -> Bdd {
        crate::manager::expect_within_budget("cofactor", self.try_cofactor(assignment))
    }

    /// Budget-aware cofactor; see [`Bdd::cofactor`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::BddError`] when an installed budget, deadline,
    /// cancellation token or fail plan interrupts the operation.
    pub fn try_cofactor(&self, assignment: &[(u32, bool)]) -> Result<Bdd, crate::BddError> {
        let id = crate::manager::run_governed(&self.mgr, |inner| {
            inner.cofactor(self.id, assignment)
        })?;
        Ok(self.wrap(id))
    }
}

#[cfg(test)]
mod tests {
    use crate::BddManager;

    #[test]
    fn one_sat_satisfies() {
        let m = BddManager::new(6);
        let f = m.var(0).and(&m.nvar(3)).and(&m.var(5));
        let sat = f.one_sat().expect("satisfiable");
        // The witness must force the function true: check by building the
        // cube and intersecting.
        let mut cube = m.constant_true();
        for (v, val) in &sat {
            cube = cube.and(&if *val { m.var(*v) } else { m.nvar(*v) });
        }
        assert_eq!(cube.and(&f), cube);
        assert!(m.constant_false().one_sat().is_none());
        assert_eq!(m.constant_true().one_sat(), Some(vec![]));
    }

    #[test]
    fn satcount_exact_matches_float() {
        let m = BddManager::new(20);
        let f = m.var(0).or(&m.var(10)).and(&m.nvar(19));
        assert_eq!(f.satcount_exact().unwrap() as f64, f.satcount());
        assert_eq!(m.constant_true().satcount_exact(), Some(1u128 << 20));
        assert_eq!(m.constant_false().satcount_exact(), Some(0));
    }

    #[test]
    fn satcount_exact_large_counts() {
        // 80 variables: the f64 count is approximate at this scale, the
        // exact count is not.
        let m = BddManager::new(80);
        let f = m.var(0);
        assert_eq!(f.satcount_exact(), Some(1u128 << 79));
    }

    #[test]
    fn dot_output_well_formed() {
        let m = BddManager::new(3);
        let f = m.var(0).xor(&m.var(2));
        let dot = f.to_dot("xor");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("v0"));
        assert!(dot.contains("v2"));
        assert!(dot.trim_end().ends_with('}'));
        // Every node line has both edges.
        let dashed = dot.matches("style=dashed").count();
        let solid = dot.matches("style=solid").count();
        assert_eq!(dashed, solid);
        assert_eq!(dashed, f.node_count());
    }
}

#[cfg(test)]
mod cofactor_tests {
    use crate::BddManager;

    #[test]
    fn cofactor_substitutes_constants() {
        let m = BddManager::new(4);
        let f = m.var(0).and(&m.var(1)).or(&m.var(2));
        assert_eq!(f.cofactor(&[(0, true)]), m.var(1).or(&m.var(2)));
        assert_eq!(f.cofactor(&[(0, false)]), m.var(2));
        assert_eq!(f.cofactor(&[(0, true), (1, true)]), m.constant_true());
        assert_eq!(
            f.cofactor(&[(0, false), (2, false)]),
            m.constant_false()
        );
        // Restricting a non-support variable is a no-op.
        assert_eq!(f.cofactor(&[(3, true)]), f);
    }

    #[test]
    fn cofactor_agrees_with_shannon_expansion() {
        let m = BddManager::new(5);
        let f = m.var(0).xor(&m.var(2)).and(&m.var(4).or(&m.var(1)));
        for v in 0..5u32 {
            let lo = f.cofactor(&[(v, false)]);
            let hi = f.cofactor(&[(v, true)]);
            let rebuilt = m.var(v).ite(&hi, &lo);
            assert_eq!(rebuilt, f, "Shannon expansion on v{v}");
        }
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn cofactor_rejects_duplicates() {
        let m = BddManager::new(2);
        let _ = m.var(0).cofactor(&[(0, true), (0, false)]);
    }
}
