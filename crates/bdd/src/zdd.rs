//! A zero-suppressed decision diagram (ZDD) kernel.
//!
//! The Jedd paper (§4.1) reports work in progress on a ZDD backend, since
//! ZDDs represent sparse tuple sets (like points-to relations) compactly.
//! This module provides that backend: a hash-consed ZDD store with the set
//! operations the relational layer needs, plus tuple construction and
//! enumeration. The `zdd_backend` bench compares it against the BDD kernel.

use crate::budget::BddError;
use crate::manager::ExportedNode;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Index of a ZDD node. `0` is the empty family, `1` is the family
/// containing only the empty set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ZddId(u32);

impl ZddId {
    /// The empty family of sets.
    pub const EMPTY: ZddId = ZddId(0);
    /// The family containing exactly the empty set.
    pub const UNIT: ZddId = ZddId(1);
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ZNode {
    var: u32,
    low: u32,
    high: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ZOp {
    Union,
    Intersect,
    Diff,
    Change,
    Subset0,
    Subset1,
}

struct ZInner {
    nodes: Vec<ZNode>,
    unique: HashMap<ZNode, u32>,
    cache: HashMap<(ZOp, u32, u32), u32>,
    num_vars: u32,
}

impl ZInner {
    fn mk(&mut self, var: u32, low: u32, high: u32) -> u32 {
        // Zero-suppression rule: a node whose high edge is the empty family
        // is redundant.
        if high == 0 {
            return low;
        }
        let key = ZNode { var, low, high };
        if let Some(&id) = self.unique.get(&key) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(key);
        self.unique.insert(key, id);
        id
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        if a == b || b == 0 {
            return a;
        }
        if a == 0 {
            return b;
        }
        let (a, b) = if a > b { (b, a) } else { (a, b) };
        if let Some(&r) = self.cache.get(&(ZOp::Union, a, b)) {
            return r;
        }
        let r = if a == 1 {
            // Insert the empty set into b.
            let nb = self.nodes[b as usize];
            let lo = self.union(1, nb.low);
            self.mk(nb.var, lo, nb.high)
        } else {
            let na = self.nodes[a as usize];
            let nb = self.nodes[b as usize];
            if na.var == nb.var {
                let lo = self.union(na.low, nb.low);
                let hi = self.union(na.high, nb.high);
                self.mk(na.var, lo, hi)
            } else if na.var < nb.var {
                let lo = self.union(na.low, b);
                self.mk(na.var, lo, na.high)
            } else {
                let lo = self.union(a, nb.low);
                self.mk(nb.var, lo, nb.high)
            }
        };
        self.cache.insert((ZOp::Union, a, b), r);
        r
    }

    fn intersect(&mut self, a: u32, b: u32) -> u32 {
        if a == b {
            return a;
        }
        if a == 0 || b == 0 {
            return 0;
        }
        if a == 1 {
            return if self.contains_empty(b) { 1 } else { 0 };
        }
        if b == 1 {
            return if self.contains_empty(a) { 1 } else { 0 };
        }
        let (a, b) = if a > b { (b, a) } else { (a, b) };
        if let Some(&r) = self.cache.get(&(ZOp::Intersect, a, b)) {
            return r;
        }
        let na = self.nodes[a as usize];
        let nb = self.nodes[b as usize];
        let r = if na.var == nb.var {
            let lo = self.intersect(na.low, nb.low);
            let hi = self.intersect(na.high, nb.high);
            self.mk(na.var, lo, hi)
        } else if na.var < nb.var {
            self.intersect(na.low, b)
        } else {
            self.intersect(a, nb.low)
        };
        self.cache.insert((ZOp::Intersect, a, b), r);
        r
    }

    fn diff(&mut self, a: u32, b: u32) -> u32 {
        if a == 0 || a == b {
            return 0;
        }
        if b == 0 {
            return a;
        }
        if let Some(&r) = self.cache.get(&(ZOp::Diff, a, b)) {
            return r;
        }
        let r = if a == 1 {
            if self.contains_empty(b) {
                0
            } else {
                1
            }
        } else if b == 1 {
            let na = self.nodes[a as usize];
            let lo = self.diff(na.low, 1);
            self.mk(na.var, lo, na.high)
        } else {
            let na = self.nodes[a as usize];
            let nb = self.nodes[b as usize];
            if na.var == nb.var {
                let lo = self.diff(na.low, nb.low);
                let hi = self.diff(na.high, nb.high);
                self.mk(na.var, lo, hi)
            } else if na.var < nb.var {
                let lo = self.diff(na.low, b);
                self.mk(na.var, lo, na.high)
            } else {
                self.diff(a, nb.low)
            }
        };
        self.cache.insert((ZOp::Diff, a, b), r);
        r
    }

    fn contains_empty(&self, mut a: u32) -> bool {
        while a > 1 {
            a = self.nodes[a as usize].low;
        }
        a == 1
    }

    /// Family of sets in `a` not containing `var`.
    fn subset0(&mut self, a: u32, var: u32) -> u32 {
        if a <= 1 {
            return a;
        }
        let na = self.nodes[a as usize];
        if na.var > var {
            return a;
        }
        if na.var == var {
            return na.low;
        }
        let key = (ZOp::Subset0, a, var);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let lo = self.subset0(na.low, var);
        let hi = self.subset0(na.high, var);
        let r = self.mk(na.var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Family of sets in `a` containing `var`, with `var` removed.
    fn subset1(&mut self, a: u32, var: u32) -> u32 {
        if a <= 1 {
            return 0;
        }
        let na = self.nodes[a as usize];
        if na.var > var {
            return 0;
        }
        if na.var == var {
            return na.high;
        }
        let key = (ZOp::Subset1, a, var);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let lo = self.subset1(na.low, var);
        let hi = self.subset1(na.high, var);
        let r = self.mk(na.var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Toggles membership of `var` in every set of the family.
    fn change(&mut self, a: u32, var: u32) -> u32 {
        if a == 0 {
            return 0;
        }
        let key = (ZOp::Change, a, var);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let r = if a == 1 {
            self.mk(var, 0, 1)
        } else {
            let na = self.nodes[a as usize];
            if na.var > var {
                self.mk(var, 0, a)
            } else if na.var == var {
                self.mk(var, na.high, na.low)
            } else {
                let lo = self.change(na.low, var);
                let hi = self.change(na.high, var);
                self.mk(na.var, lo, hi)
            }
        };
        self.cache.insert(key, r);
        r
    }

    fn count(&self, a: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        if a == 0 {
            return 0.0;
        }
        if a == 1 {
            return 1.0;
        }
        if let Some(&c) = memo.get(&a) {
            return c;
        }
        let n = self.nodes[a as usize];
        let c = self.count(n.low, memo) + self.count(n.high, memo);
        memo.insert(a, c);
        c
    }

    fn node_count(&self, a: u32) -> usize {
        if a <= 1 {
            return 0;
        }
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![a];
        while let Some(id) = stack.pop() {
            if id <= 1 || !seen.insert(id) {
                continue;
            }
            let n = self.nodes[id as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len()
    }
}

/// A shared ZDD kernel. Families of sets of variables; hash-consed with
/// memoised operations.
///
/// # Examples
///
/// ```
/// use jedd_bdd::ZddManager;
/// let z = ZddManager::new(8);
/// let a = z.family(&[vec![0, 2], vec![1]]);
/// let b = z.family(&[vec![1], vec![3]]);
/// assert_eq!(z.count(z.union(a, b)), 3.0);
/// assert_eq!(z.count(z.intersect(a, b)), 1.0);
/// ```
#[derive(Clone)]
pub struct ZddManager {
    inner: Rc<RefCell<ZInner>>,
}

impl fmt::Debug for ZddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ZddManager")
            .field("num_vars", &inner.num_vars)
            .field("nodes", &inner.nodes.len())
            .finish()
    }
}

impl ZddManager {
    /// Creates a ZDD manager over `num_vars` variables.
    pub fn new(num_vars: usize) -> ZddManager {
        ZddManager {
            inner: Rc::new(RefCell::new(ZInner {
                nodes: vec![
                    ZNode {
                        var: u32::MAX,
                        low: 0,
                        high: 0,
                    },
                    ZNode {
                        var: u32::MAX,
                        low: 1,
                        high: 1,
                    },
                ],
                unique: HashMap::new(),
                cache: HashMap::new(),
                num_vars: num_vars as u32,
            })),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.inner.borrow().num_vars as usize
    }

    /// The family containing the single set with exactly the given
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if a variable is out of range.
    pub fn singleton(&self, vars: &[u32]) -> ZddId {
        let mut inner = self.inner.borrow_mut();
        let mut sorted = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut acc = 1u32;
        for &v in sorted.iter().rev() {
            assert!(v < inner.num_vars, "zdd variable {v} out of range");
            acc = inner.mk(v, 0, acc);
        }
        ZddId(acc)
    }

    /// The family containing all the given sets.
    pub fn family(&self, sets: &[Vec<u32>]) -> ZddId {
        let mut acc = ZddId::EMPTY;
        for s in sets {
            let one = self.singleton(s);
            acc = self.union(acc, one);
        }
        acc
    }

    /// Set-family union.
    pub fn union(&self, a: ZddId, b: ZddId) -> ZddId {
        ZddId(self.inner.borrow_mut().union(a.0, b.0))
    }

    /// Set-family intersection.
    pub fn intersect(&self, a: ZddId, b: ZddId) -> ZddId {
        ZddId(self.inner.borrow_mut().intersect(a.0, b.0))
    }

    /// Set-family difference.
    pub fn diff(&self, a: ZddId, b: ZddId) -> ZddId {
        ZddId(self.inner.borrow_mut().diff(a.0, b.0))
    }

    /// The sets of `a` not containing `var`.
    pub fn subset0(&self, a: ZddId, var: u32) -> ZddId {
        ZddId(self.inner.borrow_mut().subset0(a.0, var))
    }

    /// The sets of `a` containing `var`, with `var` removed.
    pub fn subset1(&self, a: ZddId, var: u32) -> ZddId {
        ZddId(self.inner.borrow_mut().subset1(a.0, var))
    }

    /// Toggles `var` in every set of the family.
    pub fn change(&self, a: ZddId, var: u32) -> ZddId {
        ZddId(self.inner.borrow_mut().change(a.0, var))
    }

    /// "Existential quantification" of `var`: sets with and without `var`
    /// merged, `var` removed.
    pub fn abstract_var(&self, a: ZddId, var: u32) -> ZddId {
        let s0 = self.subset0(a, var);
        let s1 = self.subset1(a, var);
        self.union(s0, s1)
    }

    /// Number of sets in the family.
    pub fn count(&self, a: ZddId) -> f64 {
        let inner = self.inner.borrow();
        let mut memo = HashMap::new();
        inner.count(a.0, &mut memo)
    }

    /// Number of internal nodes of `a`.
    pub fn node_count(&self, a: ZddId) -> usize {
        self.inner.borrow().node_count(a.0)
    }

    /// Total nodes allocated by the manager.
    pub fn total_nodes(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Collects every set in the family (sorted variable lists). Intended
    /// for tests and small families.
    pub fn sets(&self, a: ZddId) -> Vec<Vec<u32>> {
        let inner = self.inner.borrow();
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        fn rec(inner: &ZInner, id: u32, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if id == 0 {
                return;
            }
            if id == 1 {
                out.push(prefix.clone());
                return;
            }
            let n = inner.nodes[id as usize];
            rec(inner, n.low, prefix, out);
            prefix.push(n.var);
            rec(inner, n.high, prefix, out);
            prefix.pop();
        }
        rec(&inner, a.0, &mut prefix, &mut out);
        out.sort();
        out
    }

    /// Serializes the sub-DAGs under `roots` as a children-first node
    /// table plus the slot of each root — the ZDD analogue of
    /// [`crate::BddManager::export_nodes`], using the same
    /// [`ExportedNode`]/slot encoding (slot 0 = [`ZddId::EMPTY`], slot 1 =
    /// [`ZddId::UNIT`], entry `i` = slot `i + 2`).
    pub fn export_nodes(&self, roots: &[ZddId]) -> (Vec<ExportedNode>, Vec<u32>) {
        let inner = self.inner.borrow();
        let mut slot: HashMap<u32, u32> = HashMap::new();
        slot.insert(0, 0);
        slot.insert(1, 1);
        let mut out: Vec<ExportedNode> = Vec::new();
        let mut stack: Vec<(u32, bool)> = Vec::new();
        for r in roots {
            stack.push((r.0, false));
            while let Some((id, expanded)) = stack.pop() {
                if slot.contains_key(&id) {
                    continue;
                }
                let n = inner.nodes[id as usize];
                if expanded {
                    out.push(ExportedNode {
                        var: n.var,
                        low: slot[&n.low],
                        high: slot[&n.high],
                    });
                    slot.insert(id, out.len() as u32 + 1);
                } else {
                    stack.push((id, true));
                    stack.push((n.high, false));
                    stack.push((n.low, false));
                }
            }
        }
        let root_slots = roots.iter().map(|r| slot[&r.0]).collect();
        (out, root_slots)
    }

    /// Rebuilds the ZDDs described by a node table from
    /// [`ZddManager::export_nodes`], returning an id per root slot. Entries
    /// are re-interned through the unique table, so importing into a fresh
    /// manager assigns the same node ids on every run (this kernel never
    /// garbage-collects, so ids are allocation-ordered).
    ///
    /// The whole table is validated before the first node is created.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::InvalidImport`] when the table is malformed:
    /// variable out of range, forward or self reference, the parent's
    /// variable not above a child's, or a zero-suppressible entry (high
    /// edge = empty family) that `mk` would have removed.
    pub fn import_nodes(
        &self,
        nodes: &[ExportedNode],
        roots: &[u32],
    ) -> Result<Vec<ZddId>, BddError> {
        const TERMINAL: u32 = u32::MAX;
        let mut inner = self.inner.borrow_mut();
        let mut vars: Vec<u32> = Vec::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            let index = i as u32;
            if n.var >= inner.num_vars {
                return Err(BddError::InvalidImport {
                    index,
                    reason: "variable out of range",
                });
            }
            for child in [n.low, n.high] {
                if child as usize >= i + 2 {
                    return Err(BddError::InvalidImport {
                        index,
                        reason: "child slot is not an earlier entry",
                    });
                }
                let child_var = if child < 2 { TERMINAL } else { vars[child as usize - 2] };
                if n.var >= child_var {
                    return Err(BddError::InvalidImport {
                        index,
                        reason: "child does not sit below its parent in the order",
                    });
                }
            }
            if n.high == 0 {
                return Err(BddError::InvalidImport {
                    index,
                    reason: "zero-suppressible entry (empty high edge)",
                });
            }
            vars.push(n.var);
        }
        for (i, &r) in roots.iter().enumerate() {
            if r as usize >= nodes.len() + 2 {
                return Err(BddError::InvalidImport {
                    index: i as u32,
                    reason: "root slot out of range",
                });
            }
        }
        let mut ids: Vec<u32> = Vec::with_capacity(nodes.len() + 2);
        ids.push(0);
        ids.push(1);
        for n in nodes {
            let low = ids[n.low as usize];
            let high = ids[n.high as usize];
            let id = inner.mk(n.var, low, high);
            ids.push(id);
        }
        Ok(roots.iter().map(|&r| ZddId(ids[r as usize])).collect())
    }

    /// Encodes a tuple of `(bits, value)` fields as a set: variable `b` is
    /// in the set iff the corresponding bit of `value` is 1 (MSB first).
    /// This is the ZDD analogue of `BddManager::encode_value`.
    pub fn encode_tuple(&self, fields: &[(&[u32], u64)]) -> ZddId {
        let mut vars = Vec::new();
        for &(bits, value) in fields {
            for (i, &b) in bits.iter().enumerate() {
                if (value >> (bits.len() - 1 - i)) & 1 == 1 {
                    vars.push(b);
                }
            }
        }
        self.singleton(&vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_unit() {
        let z = ZddManager::new(4);
        assert_eq!(z.count(ZddId::EMPTY), 0.0);
        assert_eq!(z.count(ZddId::UNIT), 1.0);
        assert_eq!(z.sets(ZddId::UNIT), vec![Vec::<u32>::new()]);
    }

    #[test]
    fn union_intersect_diff() {
        let z = ZddManager::new(8);
        let a = z.family(&[vec![0], vec![1, 2], vec![3]]);
        let b = z.family(&[vec![1, 2], vec![4]]);
        assert_eq!(z.count(z.union(a, b)), 4.0);
        assert_eq!(z.count(z.intersect(a, b)), 1.0);
        assert_eq!(z.sets(z.intersect(a, b)), vec![vec![1, 2]]);
        assert_eq!(z.count(z.diff(a, b)), 2.0);
        assert_eq!(z.diff(a, a), ZddId::EMPTY);
    }

    #[test]
    fn union_idempotent_and_commutative() {
        let z = ZddManager::new(6);
        let a = z.family(&[vec![0, 1], vec![2]]);
        let b = z.family(&[vec![2], vec![5]]);
        assert_eq!(z.union(a, a), a);
        assert_eq!(z.union(a, b), z.union(b, a));
    }

    #[test]
    fn subset_and_change() {
        let z = ZddManager::new(4);
        let a = z.family(&[vec![0, 1], vec![1], vec![2]]);
        assert_eq!(z.sets(z.subset1(a, 1)), vec![vec![], vec![0]]);
        assert_eq!(z.sets(z.subset0(a, 1)), vec![vec![2]]);
        let c = z.change(a, 3);
        assert_eq!(z.sets(c), vec![vec![0, 1, 3], vec![1, 3], vec![2, 3]]);
    }

    #[test]
    fn abstract_var_merges() {
        let z = ZddManager::new(4);
        let a = z.family(&[vec![0, 1], vec![1], vec![0]]);
        let r = z.abstract_var(a, 0);
        // {1} appears from both {0,1} and {1}; {} from {0}.
        assert_eq!(z.sets(r), vec![vec![], vec![1]]);
    }

    #[test]
    fn encode_tuple_sets_msb_first() {
        let z = ZddManager::new(8);
        let bits = [0u32, 1, 2, 3];
        let t = z.encode_tuple(&[(&bits, 0b1010)]);
        assert_eq!(z.sets(t), vec![vec![0, 2]]);
    }

    #[test]
    fn empty_family_identities() {
        let z = ZddManager::new(4);
        let a = z.family(&[vec![0], vec![1]]);
        assert_eq!(z.union(a, ZddId::EMPTY), a);
        assert_eq!(z.intersect(a, ZddId::EMPTY), ZddId::EMPTY);
        assert_eq!(z.diff(ZddId::EMPTY, a), ZddId::EMPTY);
    }

    #[test]
    fn hash_consing_dedups() {
        let z = ZddManager::new(4);
        let a = z.singleton(&[1, 3]);
        let b = z.singleton(&[3, 1]);
        assert_eq!(a, b);
    }
}
